#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite and every figure/table
# harness, and records the outputs the repo's EXPERIMENTS.md is based on.
#
# Usage: scripts/reproduce.sh [users]   (default 200; the paper used 10k)
set -u
cd "$(dirname "$0")/.."
USERS="${1:-200}"

cmake -B build -G Ninja || exit 1
cmake --build build || exit 1

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "===== $name =====" | tee -a bench_output.txt
  if [ "$name" = "micro_algorithms" ]; then
    # google-benchmark binary: takes --benchmark_* flags, not key=value.
    "$b" --benchmark_min_time=0.05 2>/dev/null | tee -a bench_output.txt
  else
    "$b" users="$USERS" 2>/dev/null | tee -a bench_output.txt
  fi
  echo | tee -a bench_output.txt
done
echo "done: test_output.txt, bench_output.txt"

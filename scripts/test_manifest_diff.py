#!/usr/bin/env python3
"""Tests for scripts/manifest_diff.py's exit-code contract.

Pytest-style test functions over synthesized manifests, pinned to the
documented exit codes: 0 fully identical, 3 timing-jitter-only, 1
identity diff, 2 usage/parse errors. Runs under pytest, but also as a
plain script (`python3 scripts/test_manifest_diff.py`) so the check.sh
gate has no dependency beyond the stdlib.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)), "manifest_diff.py")


def manifest(seed=7, wall=1.25):
    return {
        "schema": "richnote-manifest-v1",
        "tool": "richnote simulate",
        "seed": seed,
        "build": {"compiler": "gcc-12", "flags": "-O2"},
        "config": {"users": "50", "budget_mb": "5"},
        "timings": {"wall_sec": wall, "setup_sec": 0.25},
    }


def run_diff(a, b, as_paths=False):
    """Write the two docs to temp files and return (exit_code, output)."""
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for name, doc in (("a.json", a), ("b.json", b)):
            path = os.path.join(tmp, name)
            if as_paths:
                path = doc  # caller passed a literal path, e.g. a missing file
            else:
                with open(path, "w") as out:
                    json.dump(doc, out)
            paths.append(path)
        proc = subprocess.run(
            [sys.executable, DIFF, *paths], capture_output=True, text=True
        )
        return proc.returncode, proc.stdout + proc.stderr


def test_identical_manifests_exit_0():
    code, out = run_diff(manifest(), manifest())
    assert code == 0, out
    assert "manifests match" in out
    assert "timing deltas" not in out


def test_timing_jitter_only_exits_3():
    code, out = run_diff(manifest(wall=1.25), manifest(wall=1.31))
    assert code == 3, out
    assert "manifests match" in out
    assert "timing deltas" in out
    assert "wall_sec" in out


def test_identity_diff_exits_1():
    code, out = run_diff(manifest(seed=7), manifest(seed=8))
    assert code == 1, out
    assert "manifests DIFFER" in out

    changed = manifest()
    changed["config"]["budget_mb"] = "20"
    code, out = run_diff(manifest(), changed)
    assert code == 1, out
    assert "config.budget_mb" in out


def test_identity_diff_wins_over_timing_jitter():
    changed = manifest(seed=8, wall=9.0)
    code, out = run_diff(manifest(), changed)
    assert code == 1, out


def test_missing_file_and_bad_schema_exit_2():
    code, _ = run_diff("/nonexistent/a.json", "/nonexistent/b.json", as_paths=True)
    assert code == 2

    bogus = manifest()
    bogus["schema"] = "something-else"
    code, out = run_diff(bogus, manifest())
    assert code == 2, out


def test_usage_error_exits_2_and_help_exits_0():
    proc = subprocess.run(
        [sys.executable, DIFF], capture_output=True, text=True
    )
    assert proc.returncode == 2
    proc = subprocess.run(
        [sys.executable, DIFF, "--help"], capture_output=True, text=True
    )
    assert proc.returncode == 0
    assert "Exit status" in proc.stdout
    assert "timing jitter only" in proc.stdout


def main():
    tests = [
        (name, fn)
        for name, fn in sorted(globals().items())
        if name.startswith("test_") and callable(fn)
    ]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"[manifest-diff-test] PASS {name}")
        except AssertionError as err:
            failed += 1
            print(f"[manifest-diff-test] FAIL {name}: {err}", file=sys.stderr)
    if failed:
        sys.exit(f"[manifest-diff-test] {failed}/{len(tests)} tests failed")
    print(f"[manifest-diff-test] all {len(tests)} tests passed")


if __name__ == "__main__":
    main()

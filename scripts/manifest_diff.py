#!/usr/bin/env python3
"""Diff two richnote run manifests (richnote-manifest-v1).

Answers the question "why do these two runs differ?" by comparing the
recorded configuration, seed and build identity, and reporting timing
deltas separately (timings are expected to vary run-to-run; config is
not).

Usage: scripts/manifest_diff.py A.json B.json
Exit status: 0 when config/seed/build/tool all match (timings may still
differ), 1 when any identity field differs, 2 on usage/parse errors.
"""

import json
import sys


def load(path):
    try:
        with open(path) as stream:
            doc = json.load(stream)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("schema") != "richnote-manifest-v1":
        sys.exit(f"error: {path} is not a richnote-manifest-v1 document")
    return doc


def diff_section(name, left, right, lines):
    differs = False
    for key in sorted(set(left) | set(right)):
        a = left.get(key, "<absent>")
        b = right.get(key, "<absent>")
        if a != b:
            lines.append(f"  {name}.{key}: {a!r} -> {b!r}")
            differs = True
    return differs


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    a, b = load(a_path), load(b_path)

    lines = []
    differs = False
    for field in ("tool", "seed"):
        if a.get(field) != b.get(field):
            lines.append(f"  {field}: {a.get(field)!r} -> {b.get(field)!r}")
            differs = True
    differs |= diff_section("build", a.get("build", {}), b.get("build", {}), lines)
    differs |= diff_section(
        "config", dict(a.get("config", {})), dict(b.get("config", {})), lines
    )

    timing_lines = []
    a_timings = a.get("timings", {})
    b_timings = b.get("timings", {})
    for key in sorted(set(a_timings) | set(b_timings)):
        ta = a_timings.get(key)
        tb = b_timings.get(key)
        if ta is None or tb is None:
            timing_lines.append(f"  timings.{key}: {ta} -> {tb}")
        elif ta != tb:
            rel = (tb - ta) / ta * 100.0 if ta else float("inf")
            timing_lines.append(f"  timings.{key}: {ta:g} -> {tb:g} ({rel:+.1f}%)")

    if differs:
        print(f"manifests DIFFER ({a_path} -> {b_path}):")
        print("\n".join(lines))
    else:
        print(f"manifests match: same tool, seed, build and config")
    if timing_lines:
        print("timing deltas (informational):")
        print("\n".join(timing_lines))
    return 1 if differs else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Diff two richnote run manifests (richnote-manifest-v1).

Answers the question "why do these two runs differ?" by comparing the
recorded configuration, seed and build identity, and reporting timing
deltas separately (timings are expected to vary run-to-run; config is
not).

Usage: scripts/manifest_diff.py [-h|--help] A.json B.json

Exit status (scriptable: each outcome is distinct):
  0  fully identical — identity (tool/seed/build/config) AND timings match
  3  timing jitter only — identity matches, wall-clock timings differ;
     this is the expected outcome for two honest same-seed runs
  1  identity diff — tool, seed, build or config differs; the runs are
     not comparable
  2  usage or parse errors (missing file, bad JSON, wrong schema tag)

A reproducibility gate should therefore accept 0 or 3 and reject the
rest; `scripts/check.sh --trace` does exactly that.
"""

import json
import sys


def load(path):
    try:
        with open(path) as stream:
            doc = json.load(stream)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "richnote-manifest-v1":
        print(f"error: {path} is not a richnote-manifest-v1 document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def diff_section(name, left, right, lines):
    differs = False
    for key in sorted(set(left) | set(right)):
        a = left.get(key, "<absent>")
        b = right.get(key, "<absent>")
        if a != b:
            lines.append(f"  {name}.{key}: {a!r} -> {b!r}")
            differs = True
    return differs


def main(argv):
    if any(arg in ("-h", "--help") for arg in argv[1:]):
        print(__doc__.strip())
        return 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    a, b = load(a_path), load(b_path)

    lines = []
    differs = False
    for field in ("tool", "seed"):
        if a.get(field) != b.get(field):
            lines.append(f"  {field}: {a.get(field)!r} -> {b.get(field)!r}")
            differs = True
    differs |= diff_section("build", a.get("build", {}), b.get("build", {}), lines)
    differs |= diff_section(
        "config", dict(a.get("config", {})), dict(b.get("config", {})), lines
    )

    timing_lines = []
    a_timings = a.get("timings", {})
    b_timings = b.get("timings", {})
    for key in sorted(set(a_timings) | set(b_timings)):
        ta = a_timings.get(key)
        tb = b_timings.get(key)
        if ta is None or tb is None:
            timing_lines.append(f"  timings.{key}: {ta} -> {tb}")
        elif ta != tb:
            rel = (tb - ta) / ta * 100.0 if ta else float("inf")
            timing_lines.append(f"  timings.{key}: {ta:g} -> {tb:g} ({rel:+.1f}%)")

    if differs:
        print(f"manifests DIFFER ({a_path} -> {b_path}):")
        print("\n".join(lines))
    else:
        print(f"manifests match: same tool, seed, build and config")
    if timing_lines:
        print("timing deltas (informational):")
        print("\n".join(timing_lines))
    if differs:
        return 1
    return 3 if timing_lines else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# Perf gate: builds the perf harnesses in Release (-O3 -DNDEBUG, LTO) and
# records the tracked trajectory BENCH_perf.json at the repo root.
#
# Usage: scripts/bench.sh [--quick | --gate [REF]]
#   --quick    small fixed sizes (CI smoke via scripts/check.sh --bench);
#              writes to $BENCH_OUT (default BENCH_perf.json) like a full run.
#   --gate     regression gate against a tracked reference (default
#              BENCH_perf.json). Re-runs perf_round_loop at the reference's
#              own users/rounds so the comparison is apples-to-apples, then
#              exits non-zero if the best fresh run is >10% slower in
#              rounds/sec or allocates more per round than the reference.
#              When the reference carries round_loop_mt4 / service sections
#              (worker_threads=4 round loop; the 1M-user service round loop
#              + wire ingest), those throughputs are re-measured and gated
#              by the same floor; older references skip them.
#              Also re-runs perf_inference at the reference's row count and
#              applies the same floor to flat_batch_items_per_sec — but only
#              when the reference records a matching uarch (ISA + kernel):
#              a trajectory measured on an AVX2 host says nothing about a
#              scalar-dispatch run, so cross-uarch comparisons are reported
#              and skipped rather than failed. References that predate the
#              uarch field gate the round loop only.
#              Does not write BENCH_perf.json.
#
#              References that carry an eval section additionally gate the
#              Monte-Carlo evaluator's replicas/sec (perf_eval) with the
#              same floor; older references skip it.
#
#              References that carry a lifecycle section additionally gate
#              lifecycle tracing (perf_lifecycle): the enabled-tracing round
#              throughput gets the same floor, and the measured overhead_pct
#              must stay under LIFECYCLE_MAX_OVERHEAD_PCT (default 2, the
#              DESIGN.md §13 ceiling). Older references skip both.
#
# Environment overrides: USERS, ROUNDS, REPEAT, BASELINE (the pre-optimization
# rounds/sec this machine measured), SERVICE_USERS, SERVICE_ROUNDS,
# INGEST_MSGS, EVAL_USERS, EVAL_SEEDS, EVAL_THREADS, LIFECYCLE_USERS,
# LIFECYCLE_ROUNDS, LIFECYCLE_MAX_OVERHEAD_PCT, BENCH_OUT,
# GATE_MAX_REGRESSION_PCT.
#
# The round-loop harness is run REPEAT times and the best run is recorded:
# rounds/sec on a contended machine is noise-floored, and the fastest run is
# the one that reflects the code rather than the scheduler.
set -eu
cd "$(dirname "$0")/.."

USERS=${USERS:-2000}
ROUNDS=${ROUNDS:-500}
REPEAT=${REPEAT:-5}
INFER_ROWS=${INFER_ROWS:-50000}
# Service-mode sizes: the tracked claim is ~1M simulated users per host.
SERVICE_USERS=${SERVICE_USERS:-1000000}
SERVICE_ROUNDS=${SERVICE_ROUNDS:-10}
INGEST_MSGS=${INGEST_MSGS:-200000}
# Monte-Carlo evaluator sizes (perf_eval -> "eval" section).
EVAL_USERS=${EVAL_USERS:-200}
EVAL_SEEDS=${EVAL_SEEDS:-16}
EVAL_THREADS=${EVAL_THREADS:-4}
# Lifecycle-tracing overhead sizes (perf_lifecycle -> "lifecycle" section).
LIFECYCLE_USERS=${LIFECYCLE_USERS:-20000}
LIFECYCLE_ROUNDS=${LIFECYCLE_ROUNDS:-80}
LIFECYCLE_MAX_OVERHEAD_PCT=${LIFECYCLE_MAX_OVERHEAD_PCT:-2}
# Pre-PR baseline measured on this machine at users=2000 rounds=500 (commit
# a695b19, same Release+LTO build recipe).
BASELINE=${BASELINE:-436.38}
OUT=${BENCH_OUT:-BENCH_perf.json}

if [ "${1:-}" = "--quick" ]; then
  USERS=200
  ROUNDS=100
  REPEAT=2
  INFER_ROWS=5000
  SERVICE_USERS=20000
  SERVICE_ROUNDS=5
  INGEST_MSGS=20000
  EVAL_USERS=40
  EVAL_SEEDS=6
  LIFECYCLE_USERS=2000
  LIFECYCLE_ROUNDS=8
fi

if [ "${1:-}" = "--gate" ]; then
  REF=${2:-BENCH_perf.json}
  [ -f "$REF" ] || { echo "[bench] gate: reference $REF not found" >&2; exit 2; }
  # The reference records the sizes it was measured at; reuse them so the
  # gate never compares a 200-user smoke run against a 2000-user baseline.
  # REF_BATCH/REF_UARCH come from the inference section when present ("-"
  # marks an old reference without it, which gates the round loop only).
  read -r USERS ROUNDS REF_RPS REF_ALLOCS REF_ROWS REF_BATCH REF_UARCH \
    REF_MT4_RPS REF_SVC_USERS REF_SVC_ROUNDS REF_SVC_MSGS REF_SVC_RPS \
    REF_SVC_MPS REF_EVAL_USERS REF_EVAL_SEEDS REF_EVAL_THREADS \
    REF_EVAL_SCENARIO REF_EVAL_RPS REF_LC_USERS REF_LC_ROUNDS \
    REF_LC_THREADS REF_LC_ENABLED <<EOF
$(python3 -c "
import json, sys
doc = json.load(open(sys.argv[1]))
rl = doc['round_loop']
inf = doc.get('inference', {})
scoring = inf.get('scoring', {})
mt4 = doc.get('round_loop_mt4', {})
svc = doc.get('service', {})
ev = doc.get('eval', {})
lc = doc.get('lifecycle', {})
print(rl['params']['users'], rl['params']['rounds'],
      rl['round_loop']['rounds_per_sec'],
      rl['steady_state']['allocs_per_round'],
      inf.get('params', {}).get('rows', '-'),
      scoring.get('flat_batch_items_per_sec', '-'),
      scoring.get('uarch', '-'),
      mt4.get('round_loop', {}).get('rounds_per_sec', '-'),
      svc.get('params', {}).get('users', '-'),
      svc.get('params', {}).get('rounds', '-'),
      svc.get('params', {}).get('ingest_msgs', '-'),
      svc.get('service', {}).get('service_rounds_per_sec', '-'),
      svc.get('ingest', {}).get('ingest_msgs_per_sec', '-'),
      ev.get('params', {}).get('users', '-'),
      ev.get('params', {}).get('seeds', '-'),
      ev.get('params', {}).get('worker_threads', '-'),
      ev.get('params', {}).get('scenario', '-'),
      ev.get('eval', {}).get('replicas_per_sec', '-'),
      lc.get('params', {}).get('users', '-'),
      lc.get('params', {}).get('rounds', '-'),
      lc.get('params', {}).get('worker_threads', '-'),
      lc.get('lifecycle', {}).get('rounds_per_sec_enabled', '-'))
" "$REF")
EOF
  MAX_PCT=${GATE_MAX_REGRESSION_PCT:-10}
  BUILD_DIR=build-perf
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DRICHNOTE_LTO=ON >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target perf_round_loop perf_inference \
    perf_service perf_eval perf_lifecycle
  TMP_DIR="$BUILD_DIR/bench-runs"
  mkdir -p "$TMP_DIR"
  best_json=""
  best_rps=0
  for i in $(seq 1 "$REPEAT"); do
    run_json="$TMP_DIR/gate_$i.json"
    "$BUILD_DIR/bench/perf_round_loop" users="$USERS" rounds="$ROUNDS" \
      json="$run_json" >/dev/null
    rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['round_loop']['rounds_per_sec'])" "$run_json")
    echo "[bench] gate run $i/$REPEAT: $rps rounds/sec" >&2
    better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_rps")
    if [ "$better" = "1" ]; then
      best_rps=$rps
      best_json=$run_json
    fi
  done
  infer_json="-"
  if [ "$REF_BATCH" != "-" ]; then
    best_batch=0
    for i in $(seq 1 "$REPEAT"); do
      run_json="$TMP_DIR/gate_infer_$i.json"
      "$BUILD_DIR/bench/perf_inference" rows="$REF_ROWS" json="$run_json" \
        >/dev/null 2>&1
      batch=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['scoring']['flat_batch_items_per_sec'])" "$run_json")
      echo "[bench] gate inference run $i/$REPEAT: $batch flat-batch items/sec" >&2
      better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$batch" "$best_batch")
      if [ "$better" = "1" ]; then
        best_batch=$batch
        infer_json=$run_json
      fi
    done
  fi
  mt4_json="-"
  if [ "$REF_MT4_RPS" != "-" ]; then
    best_mt4=0
    for i in $(seq 1 "$REPEAT"); do
      run_json="$TMP_DIR/gate_mt4_$i.json"
      "$BUILD_DIR/bench/perf_round_loop" users="$USERS" rounds="$ROUNDS" threads=4 \
        json="$run_json" >/dev/null
      rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['round_loop']['rounds_per_sec'])" "$run_json")
      echo "[bench] gate mt4 run $i/$REPEAT: $rps rounds/sec" >&2
      better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_mt4")
      if [ "$better" = "1" ]; then
        best_mt4=$rps
        mt4_json=$run_json
      fi
    done
  fi
  svc_json="-"
  if [ "$REF_SVC_RPS" != "-" ]; then
    best_svc=0
    for i in $(seq 1 "$REPEAT"); do
      run_json="$TMP_DIR/gate_service_$i.json"
      "$BUILD_DIR/bench/perf_service" users="$REF_SVC_USERS" \
        rounds="$REF_SVC_ROUNDS" ingest_msgs="$REF_SVC_MSGS" \
        json="$run_json" 2>/dev/null
      rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['service']['service_rounds_per_sec'])" "$run_json")
      echo "[bench] gate service run $i/$REPEAT: $rps service rounds/sec" >&2
      better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_svc")
      if [ "$better" = "1" ]; then
        best_svc=$rps
        svc_json=$run_json
      fi
    done
  fi
  eval_json="-"
  if [ "$REF_EVAL_RPS" != "-" ]; then
    best_eval=0
    for i in $(seq 1 "$REPEAT"); do
      run_json="$TMP_DIR/gate_eval_$i.json"
      "$BUILD_DIR/bench/perf_eval" scenario="$REF_EVAL_SCENARIO" \
        users="$REF_EVAL_USERS" seeds="$REF_EVAL_SEEDS" \
        threads="$REF_EVAL_THREADS" json="$run_json" 2>/dev/null
      rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['eval']['replicas_per_sec'])" "$run_json")
      echo "[bench] gate eval run $i/$REPEAT: $rps replicas/sec" >&2
      better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_eval")
      if [ "$better" = "1" ]; then
        best_eval=$rps
        eval_json=$run_json
      fi
    done
  fi
  lc_json="-"
  if [ "$REF_LC_ENABLED" != "-" ]; then
    best_lc=0
    for i in $(seq 1 "$REPEAT"); do
      run_json="$TMP_DIR/gate_lifecycle_$i.json"
      "$BUILD_DIR/bench/perf_lifecycle" users="$REF_LC_USERS" \
        rounds="$REF_LC_ROUNDS" threads="$REF_LC_THREADS" \
        json="$run_json" 2>/dev/null
      rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['lifecycle']['rounds_per_sec_enabled'])" "$run_json")
      echo "[bench] gate lifecycle run $i/$REPEAT: $rps enabled rounds/sec" >&2
      better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_lc")
      if [ "$better" = "1" ]; then
        best_lc=$rps
        lc_json=$run_json
      fi
    done
    # The ≤2% overhead ceiling is a property of the code, not the machine's
    # noise floor: it holds if ANY of the repeats measures under it.
    python3 - "$TMP_DIR" "$REPEAT" "$LIFECYCLE_MAX_OVERHEAD_PCT" <<'EOF'
import json, sys

runs = [json.load(open(f"{sys.argv[1]}/gate_lifecycle_{i}.json"))["lifecycle"]
        for i in range(1, int(sys.argv[2]) + 1)]
best = min(run["overhead_pct"] for run in runs)
ceiling = float(sys.argv[3])
print(f"[bench] gate: lifecycle overhead {best:+.2f}% (best of {len(runs)}, "
      f"ceiling {ceiling:g}%)")
if best > ceiling:
    print(f"[bench] gate FAIL: lifecycle tracing overhead {best:.2f}% exceeds "
          f"the {ceiling:g}% ceiling", file=sys.stderr)
    sys.exit(1)
EOF
  fi
  python3 - "$best_json" "$REF_RPS" "$REF_ALLOCS" "$MAX_PCT" \
    "$infer_json" "$REF_BATCH" "$REF_UARCH" \
    "$mt4_json" "$REF_MT4_RPS" "$svc_json" "$REF_SVC_RPS" "$REF_SVC_MPS" \
    "$eval_json" "$REF_EVAL_RPS" "$lc_json" "$REF_LC_ENABLED" <<'EOF'
import json, sys

run = json.load(open(sys.argv[1]))
ref_rps = float(sys.argv[2])
ref_allocs = float(sys.argv[3])
max_pct = float(sys.argv[4])

rps = run["round_loop"]["rounds_per_sec"]
allocs = run["steady_state"]["allocs_per_round"]
floor = ref_rps * (1.0 - max_pct / 100.0)
delta_pct = (rps - ref_rps) / ref_rps * 100.0

failures = []
if rps < floor:
    failures.append(
        f"rounds/sec regressed: {rps:.2f} < {floor:.2f} "
        f"(reference {ref_rps:.2f}, {delta_pct:+.1f}%, limit -{max_pct:g}%)")
if allocs > ref_allocs:
    failures.append(
        f"allocs/round grew: {allocs:g} > reference {ref_allocs:g}")

print(f"[bench] gate: {rps:.2f} rounds/sec vs reference {ref_rps:.2f} "
      f"({delta_pct:+.1f}%), allocs/round {allocs:g} (reference {ref_allocs:g})")

if sys.argv[5] == "-":
    print("[bench] gate: reference has no inference section; "
          "flat_batch gate skipped")
else:
    infer = json.load(open(sys.argv[5]))
    scoring = infer["scoring"]
    batch = scoring["flat_batch_items_per_sec"]
    uarch = scoring["uarch"]
    ref_batch = float(sys.argv[6])
    ref_uarch = sys.argv[7]
    if ref_uarch not in ("-", uarch):
        # A different ISA/kernel pairing is a different machine class, not a
        # regression; report the numbers but do not fail on them.
        print(f"[bench] gate: uarch changed ({ref_uarch} -> {uarch}); "
              f"flat_batch {batch:.0f} vs reference {ref_batch:.0f} "
              f"items/sec NOT gated")
    else:
        batch_floor = ref_batch * (1.0 - max_pct / 100.0)
        batch_delta = (batch - ref_batch) / ref_batch * 100.0
        print(f"[bench] gate: {batch:.0f} flat-batch items/sec vs reference "
              f"{ref_batch:.0f} ({batch_delta:+.1f}%) on {uarch}")
        if batch < batch_floor:
            failures.append(
                f"flat_batch_items_per_sec regressed: {batch:.0f} < "
                f"{batch_floor:.0f} (reference {ref_batch:.0f}, "
                f"{batch_delta:+.1f}%, limit -{max_pct:g}%)")

def gate_floor(name, fresh, ref):
    floor = ref * (1.0 - max_pct / 100.0)
    delta = (fresh - ref) / ref * 100.0
    print(f"[bench] gate: {fresh:.2f} {name} vs reference {ref:.2f} ({delta:+.1f}%)")
    if fresh < floor:
        failures.append(
            f"{name} regressed: {fresh:.2f} < {floor:.2f} "
            f"(reference {ref:.2f}, {delta:+.1f}%, limit -{max_pct:g}%)")

if sys.argv[8] == "-":
    print("[bench] gate: reference has no round_loop_mt4 section; mt4 gate skipped")
else:
    mt4 = json.load(open(sys.argv[8]))
    gate_floor("mt4 rounds/sec", mt4["round_loop"]["rounds_per_sec"],
               float(sys.argv[9]))

if sys.argv[10] == "-":
    print("[bench] gate: reference has no service section; service gate skipped")
else:
    svc = json.load(open(sys.argv[10]))
    gate_floor("service rounds/sec", svc["service"]["service_rounds_per_sec"],
               float(sys.argv[11]))
    gate_floor("ingest msgs/sec", svc["ingest"]["ingest_msgs_per_sec"],
               float(sys.argv[12]))

if sys.argv[13] == "-":
    print("[bench] gate: reference has no eval section; eval gate skipped")
else:
    ev = json.load(open(sys.argv[13]))
    gate_floor("eval replicas/sec", ev["eval"]["replicas_per_sec"],
               float(sys.argv[14]))

if sys.argv[15] == "-":
    print("[bench] gate: reference has no lifecycle section; lifecycle gate skipped")
else:
    lc = json.load(open(sys.argv[15]))
    gate_floor("lifecycle-enabled rounds/sec",
               lc["lifecycle"]["rounds_per_sec_enabled"], float(sys.argv[16]))

if failures:
    for f in failures:
        print(f"[bench] gate FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("[bench] gate PASS")
EOF
  exit 0
fi

BUILD_DIR=build-perf
# Only the perf targets: the full Release build is not needed here, and the
# test binaries are built by scripts/check.sh in the dev tree.
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DRICHNOTE_LTO=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target perf_round_loop perf_inference \
  perf_service perf_eval perf_lifecycle

TMP_DIR="$BUILD_DIR/bench-runs"
mkdir -p "$TMP_DIR"

best_json=""
best_rps=0
for i in $(seq 1 "$REPEAT"); do
  run_json="$TMP_DIR/round_loop_$i.json"
  "$BUILD_DIR/bench/perf_round_loop" users="$USERS" rounds="$ROUNDS" \
    baseline_rounds_per_sec="$BASELINE" json="$run_json"
  rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['round_loop']['rounds_per_sec'])" "$run_json")
  echo "[bench] round_loop run $i/$REPEAT: $rps rounds/sec" >&2
  better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_rps")
  if [ "$better" = "1" ]; then
    best_rps=$rps
    best_json=$run_json
  fi
done

# The same round loop at worker_threads=4: records what the persistent
# pool buys on this host (bit-identical outputs, so only speed may differ).
best_mt4_json=""
best_mt4_rps=0
for i in $(seq 1 "$REPEAT"); do
  run_json="$TMP_DIR/round_loop_mt4_$i.json"
  "$BUILD_DIR/bench/perf_round_loop" users="$USERS" rounds="$ROUNDS" threads=4 \
    json="$run_json" >/dev/null
  rps=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['round_loop']['rounds_per_sec'])" "$run_json")
  echo "[bench] round_loop mt4 run $i/$REPEAT: $rps rounds/sec" >&2
  better=$(python3 -c "import sys; print(1 if float(sys.argv[1]) > float(sys.argv[2]) else 0)" "$rps" "$best_mt4_rps")
  if [ "$better" = "1" ]; then
    best_mt4_rps=$rps
    best_mt4_json=$run_json
  fi
done

infer_json="$TMP_DIR/inference.json"
"$BUILD_DIR/bench/perf_inference" rows="$INFER_ROWS" json="$infer_json"

# Service mode: the 1M-user fleet throughput + wire-ingest numbers.
service_json="$TMP_DIR/service.json"
"$BUILD_DIR/bench/perf_service" users="$SERVICE_USERS" rounds="$SERVICE_ROUNDS" \
  ingest_msgs="$INGEST_MSGS" json="$service_json"

# Monte-Carlo evaluation plane: replicas/sec through the wave evaluator.
eval_json="$TMP_DIR/eval.json"
"$BUILD_DIR/bench/perf_eval" users="$EVAL_USERS" seeds="$EVAL_SEEDS" \
  threads="$EVAL_THREADS" json="$eval_json"

# Lifecycle-tracing overhead: disabled vs enabled service round throughput.
lifecycle_json="$TMP_DIR/lifecycle.json"
"$BUILD_DIR/bench/perf_lifecycle" users="$LIFECYCLE_USERS" \
  rounds="$LIFECYCLE_ROUNDS" trace="$TMP_DIR/lifecycle.trace.ndjson" \
  json="$lifecycle_json"

python3 - "$best_json" "$infer_json" "$best_mt4_json" "$service_json" \
  "$eval_json" "$lifecycle_json" "$OUT" <<'EOF'
import json, sys

round_loop = json.load(open(sys.argv[1]))
inference = json.load(open(sys.argv[2]))
round_loop_mt4 = json.load(open(sys.argv[3]))
service = json.load(open(sys.argv[4]))
evaluation = json.load(open(sys.argv[5]))
lifecycle = json.load(open(sys.argv[6]))
merged = {
    "schema": "richnote-bench-v1",
    "generated_by": "scripts/bench.sh",
    "round_loop": round_loop,
    "round_loop_mt4": round_loop_mt4,
    "inference": inference,
    "service": service,
    "eval": evaluation,
    "lifecycle": lifecycle,
}
with open(sys.argv[7], "w") as out:
    json.dump(merged, out, indent=2)
    out.write("\n")

rl = round_loop["round_loop"]
base = round_loop["baseline"]
print(f"[bench] best: {rl['rounds_per_sec']:.2f} rounds/sec "
      f"(baseline {base['rounds_per_sec']:.2f}, speedup {base['speedup']:.2f}x), "
      f"allocs/round {round_loop['steady_state']['allocs_per_round']:.1f}")
print(f"[bench] mt4: {round_loop_mt4['round_loop']['rounds_per_sec']:.2f} rounds/sec "
      f"at worker_threads=4")
svc = service["service"]
ing = service["ingest"]
print(f"[bench] service: {svc['service_rounds_per_sec']:.2f} rounds/sec over "
      f"{service['params']['users']} users "
      f"({svc['user_rounds_per_sec']:.0f} user-rounds/sec), "
      f"ingest {ing['ingest_msgs_per_sec']:.0f} msgs/sec")
ev = evaluation["eval"]
print(f"[bench] eval: {ev['replicas_per_sec']:.2f} replicas/sec "
      f"({ev['replicas']} replicas on "
      f"{evaluation['params']['worker_threads']} threads)")
lc = lifecycle["lifecycle"]
print(f"[bench] lifecycle: {lc['rounds_per_sec_enabled']:.2f} rounds/sec enabled "
      f"vs {lc['rounds_per_sec_disabled']:.2f} disabled "
      f"({lc['overhead_pct']:+.2f}% tracker overhead, "
      f"{lc['rounds_per_sec_traced']:.2f} with NDJSON sink)")
print(f"[bench] wrote {sys.argv[7]}")
EOF

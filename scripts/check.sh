#!/usr/bin/env bash
# Correctness gate: configure, build and run the full test suite — the same
# sequence CI and reviewers use. Run before every push.
#
# Usage: scripts/check.sh [--sanitize | --tsan | --bench | --trace | --serve
#                          | --eval]
#   --sanitize   separate build-asan/ tree with -DRICHNOTE_SANITIZE=ON
#                (AddressSanitizer + UBSan). This is how the chaos soak
#                (tests/core/test_chaos_soak.cpp) is meant to be exercised:
#                hundreds of fault-injected rounds with every allocation
#                and integer op checked.
#   --tsan       separate build-tsan/ tree with -DRICHNOTE_TSAN=ON
#                (ThreadSanitizer). Runs the suites that exercise the
#                worker-thread paths: parallel forest fitting (test_ml) and
#                the sharded round loop + trace merge (test_integration).
#   --bench      perf smoke + regression gate: runs scripts/bench.sh --quick
#                (small fixed sizes), fails unless the emitted BENCH JSON
#                parses and carries the expected sections, re-runs the
#                inference harness under BOTH dispatch paths (the detected
#                kernel and RICHNOTE_FORCE_SCALAR=1) — each run's internal
#                bit-identity gate must hold and the reported uarch must
#                match the forced path — then runs scripts/bench.sh --gate
#                against the tracked BENCH_perf.json (>10% rounds/sec or
#                flat-batch regression, or any alloc/round growth, fails).
#   --serve      service-mode smoke under ASan+UBSan AND TSan: boots
#                `richnote serve`, drives /ingest (mixed-validity NDJSON),
#                /round, /reshard, /metrics and /shutdown over real HTTP,
#                and requires a clean exit with zero sanitizer reports.
#   --eval       Monte-Carlo evaluation harness: runs the ctest `eval` label
#                (estimator property tests, stopping-rule oracle, evaluator
#                determinism) under BOTH ASan+UBSan and TSan, then smokes
#                `richnote evaluate` end to end and requires byte-identical
#                JSON/CSV reports across worker counts.
#   --trace      observability smoke: runs the CLI twice at the same seed
#                with trace/metrics/manifest outputs enabled, fails unless
#                the two NDJSON streams are byte-identical, every line
#                passes the event-schema validation, and manifest_diff
#                classifies the manifest pair as identical or
#                timing-jitter-only (exit 0 or 3).
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--trace" ]; then
  BUILD_DIR=build
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target richnote
  OUT_DIR="$BUILD_DIR/trace-smoke"
  mkdir -p "$OUT_DIR"
  for run in a b; do
    "$BUILD_DIR/tools/richnote" simulate users=10 seed=3 scheduler=richnote \
      budget_mb=2 fault_intensity=1 threads=2 \
      trace="$OUT_DIR/run_$run.ndjson" metrics="$OUT_DIR/metrics_$run.json" \
      manifest="$OUT_DIR/manifest_$run.json" >/dev/null
  done
  cmp "$OUT_DIR/run_a.ndjson" "$OUT_DIR/run_b.ndjson" \
    || { echo "[check] FAIL: same-seed traces differ" >&2; exit 1; }
  cmp "$OUT_DIR/metrics_a.json" "$OUT_DIR/metrics_b.json" \
    || { echo "[check] FAIL: same-seed metrics differ" >&2; exit 1; }
  # The exit-code contract itself is pinned by its own test suite first.
  python3 scripts/test_manifest_diff.py
  # Same seed, same build: manifest_diff must see at most timing jitter
  # (0 = fully identical, 3 = timings-only). Anything else is a real diff.
  rc=0
  python3 scripts/manifest_diff.py \
    "$OUT_DIR/manifest_a.json" "$OUT_DIR/manifest_b.json" || rc=$?
  case "$rc" in
    0|3) ;;
    *) echo "[check] FAIL: same-seed manifests differ beyond timings (exit $rc)" >&2
       exit 1 ;;
  esac
  python3 - "$OUT_DIR/run_a.ndjson" <<'EOF'
import json, sys

# Event vocabulary from DESIGN.md §9: required fields per event type.
REQUIRED = {
    "plan": {"candidates", "selected", "budget_bytes", "q_bytes", "p_joules",
             "adjusted_total"},
    "decision": {"item", "level", "levels", "size_bytes", "term_queue",
                 "term_energy", "term_value", "adjusted", "utility"},
    "deliver": {"item", "level", "bytes", "resumed_bytes", "rho_joules",
                "utility", "delay_sec"},
    "round": {"planned", "sent_items", "sent_bytes", "data_budget", "network"},
    "fault": {"blackout", "brownout"},
    "duplicate": {"item"},
    "transfer_cut": {"item", "moved_bytes", "high_water_bytes", "fraction"},
    "retry_backoff": {"item", "attempts", "not_before"},
    "dead_letter": {"item", "attempts"},
    "crash_restart": set(),
    # Service-mode lifecycle stages (DESIGN.md §13); absent from batch
    # traces but part of the schema.
    "lc_ingest": {"item", "created_at"},
    "lc_admit": {"item", "wait_rounds"},
}

counts = {}
with open(sys.argv[1]) as stream:
    for lineno, line in enumerate(stream, 1):
        event = json.loads(line)  # malformed JSON raises here
        for field in ("type", "user", "round"):
            if field not in event:
                sys.exit(f"line {lineno}: missing field {field!r}")
        kind = event["type"]
        if kind not in REQUIRED:
            sys.exit(f"line {lineno}: unknown event type {kind!r}")
        missing = REQUIRED[kind] - event.keys()
        if missing:
            sys.exit(f"line {lineno}: {kind} event missing {sorted(missing)}")
        counts[kind] = counts.get(kind, 0) + 1
for kind in ("plan", "decision", "deliver", "round", "fault"):
    if counts.get(kind, 0) == 0:
        sys.exit(f"trace contains no {kind!r} events")
print(f"[check] trace OK: {sum(counts.values())} events "
      f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})")
EOF
  echo "[check] --trace passed: deterministic and schema-clean"
  exit 0
fi

if [ "${1:-}" = "--bench" ]; then
  out=build-perf/BENCH_quick.json
  BENCH_OUT="$out" scripts/bench.sh --quick
  python3 - "$out" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))  # malformed JSON raises here
for section in ("round_loop", "round_loop_mt4", "inference", "service", "eval",
                "lifecycle"):
    if section not in doc:
        sys.exit(f"BENCH JSON missing section: {section}")
    if doc[section].get("schema") != "richnote-bench-v1":
        sys.exit(f"BENCH JSON section {section} has wrong schema tag")
for field in ("service_rounds_per_sec",):
    if doc["service"]["service"].get(field, 0) <= 0:
        sys.exit(f"BENCH JSON service section has non-positive {field}")
if doc["service"]["ingest"].get("ingest_msgs_per_sec", 0) <= 0:
    sys.exit("BENCH JSON service section has non-positive ingest_msgs_per_sec")
if doc["eval"]["eval"].get("replicas_per_sec", 0) <= 0:
    sys.exit("BENCH JSON eval section has non-positive replicas_per_sec")
lifecycle = doc["lifecycle"]["lifecycle"]
for field in ("rounds_per_sec_disabled", "rounds_per_sec_enabled"):
    if lifecycle.get(field, 0) <= 0:
        sys.exit(f"BENCH JSON lifecycle section has non-positive {field}")
if "overhead_pct" not in lifecycle:
    sys.exit("BENCH JSON lifecycle section missing overhead_pct")
print(f"[check] {sys.argv[1]} is well-formed")
EOF
  # Exercise the runtime SIMD dispatch both ways: the detected kernel and
  # the forced-scalar fallback. perf_inference aborts before emitting JSON
  # if any scoring path diverges bitwise, so a parsed JSON with
  # bit_identical=true IS the cross-kernel equivalence proof.
  for mode in native scalar; do
    out_json="build-perf/BENCH_dispatch_$mode.json"
    if [ "$mode" = "scalar" ]; then
      RICHNOTE_FORCE_SCALAR=1 build-perf/bench/perf_inference rows=5000 \
        repeat=2 json="$out_json"
    else
      build-perf/bench/perf_inference rows=5000 repeat=2 json="$out_json"
    fi
    python3 - "$out_json" "$mode" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
scoring = doc["scoring"]
if scoring.get("bit_identical") is not True:
    sys.exit(f"{sys.argv[2]} dispatch run did not verify bit-identical")
uarch = scoring.get("uarch", "")
if sys.argv[2] == "scalar" and not uarch.endswith("/scalar"):
    sys.exit(f"RICHNOTE_FORCE_SCALAR=1 run reported uarch {uarch!r}")
print(f"[check] dispatch {sys.argv[2]}: uarch {uarch}, bit-identical across "
      f"forest / flat / batch / scalar-batch / threaded-batch")
EOF
  done
  scripts/bench.sh --gate
  exit 0
fi

if [ "${1:-}" = "--serve" ]; then
  # Service-mode smoke under BOTH ASan+UBSan and TSan: start `richnote
  # serve`, drive every endpoint over real HTTP (mixed-validity NDJSON
  # ingest, manual rounds, a live reshard, a /metrics scrape), then shut it
  # down and require a clean exit. ASan checks the wire parser and fleet
  # teardown; TSan checks handler threads vs the round driver vs the ring.
  serve_smoke() {
    local build_dir=$1 label=$2 flag=$3
    cmake -B "$build_dir" -S . "$flag" >/dev/null
    cmake --build "$build_dir" -j "$(nproc)" --target richnote
    local out_dir="$build_dir/serve-smoke"
    rm -rf "$out_dir"
    mkdir -p "$out_dir"
    "$build_dir/tools/richnote" serve users=20 seed=3 budget_mb=5 threads=2 \
      oracle=1 port=0 port_file="$out_dir/port" trace="$out_dir/serve.ndjson" \
      >"$out_dir/serve.log" 2>&1 &
    local pid=$!
    for _ in $(seq 1 300); do
      [ -s "$out_dir/port" ] && break
      if ! kill -0 "$pid" 2>/dev/null; then
        cat "$out_dir/serve.log" >&2
        echo "[check] FAIL: serve ($label) died before binding" >&2
        exit 1
      fi
      sleep 0.1
    done
    if [ ! -s "$out_dir/port" ]; then
      kill "$pid" 2>/dev/null || true
      echo "[check] FAIL: serve ($label) never wrote its port file" >&2
      exit 1
    fi
    if ! python3 - "$(cat "$out_dir/port")" "$label" <<'EOF'
import json, sys, urllib.error, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

def post(path, body):
    req = urllib.request.Request(base + path, data=body.encode(), method="POST")
    try:
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

def get(path):
    with urllib.request.urlopen(base + path, timeout=30) as r:
        return r.status, r.read().decode()

status, body = get("/healthz")
assert status == 200, (status, body)
health = json.loads(body)
assert health["status"] == "ok", body
for key in ("git_describe", "build_type", "compiler", "uarch"):
    assert key in health, f"/healthz missing {key}: {body}"

# Unknown paths list everything that is mounted, /exemplars included.
try:
    get("/definitely-not-a-path")
    assert False, "404 expected"
except urllib.error.HTTPError as e:
    listing = e.read().decode()
    for path in ("/healthz", "/metrics", "/progress", "/exemplars", "/ingest"):
        assert path in listing, f"404 listing missing {path}: {listing}"

lines = "\n".join(
    json.dumps({"id": i, "user": i % 20, "type": "friend_feed", "track": 3,
                "created_at": 0, "social_tie": 0.5, "track_pop": 50,
                "album_pop": 50, "artist_pop": 50})
    for i in range(1, 9))
status, body = post("/ingest", lines + "\nthis is not json\n")
reply = json.loads(body)
assert status == 400, (status, body)          # the malformed line -> 400
assert reply["accepted"] == 8, body
assert reply["parse_errors"] == 1, body

for _ in range(3):
    status, body = post("/round", "")
    assert status == 200, (status, body)

status, body = post("/reshard", "3")
assert status == 200 and json.loads(body)["worker_threads"] == 3, (status, body)
status, body = post("/round", "")
assert status == 200, (status, body)

status, metrics = get("/metrics")
assert status == 200
for needle in ("richnote_service_ingest_accepted_total 8",
               "richnote_service_ingest_rejected_parse_total 1",
               "richnote_service_rounds_total 4",
               "richnote_service_reshards_total 1",
               # Lifecycle-era vocabulary (DESIGN.md §13): svc counters,
               # stage-latency histograms and per-endpoint RED labels.
               "richnote_svc_ingest_rejected_backpressure 0",
               "richnote_svc_e2e_us_bucket",
               "richnote_svc_ingest_to_admit_us_count",
               'richnote_svc_http_requests_total{endpoint="ingest"} 1',
               'richnote_svc_http_duration_us_bucket{endpoint="round"',
               "# HELP richnote_svc_ingest_rejected_backpressure"):
    assert needle in metrics, f"missing from /metrics: {needle}"

status, body = get("/exemplars")
assert status == 200, (status, body)
exemplars = json.loads(body)["exemplars"]
assert isinstance(exemplars, list), body
if exemplars:  # worst e2e first; empty until the first completed delivery
    assert exemplars[0]["e2e_us"] >= exemplars[-1]["e2e_us"], body

status, body = post("/shutdown", "")
assert status == 200, (status, body)
print(f"[check] serve smoke ({sys.argv[2]}): every endpoint OK")
EOF
    then
      kill "$pid" 2>/dev/null || true
      cat "$out_dir/serve.log" >&2
      echo "[check] FAIL: serve smoke ($label) endpoint checks failed" >&2
      exit 1
    fi
    if ! wait "$pid"; then
      cat "$out_dir/serve.log" >&2
      echo "[check] FAIL: serve ($label) did not exit cleanly after /shutdown" >&2
      exit 1
    fi

    # `richnote explain` is a pure function of the trace bytes: two runs
    # over the lifecycle NDJSON the server just streamed must emit
    # identical output (and actually reconstruct a causal chain).
    [ -s "$out_dir/serve.ndjson" ] \
      || { echo "[check] FAIL: serve ($label) wrote no lifecycle trace" >&2; exit 1; }
    "$build_dir/tools/richnote" explain "$out_dir/serve.ndjson" id=1 \
      >"$out_dir/explain_a.txt"
    "$build_dir/tools/richnote" explain "$out_dir/serve.ndjson" id=1 \
      >"$out_dir/explain_b.txt"
    cmp "$out_dir/explain_a.txt" "$out_dir/explain_b.txt" \
      || { echo "[check] FAIL: explain output differs across reruns ($label)" >&2
           exit 1; }
    grep -q "ingested" "$out_dir/explain_a.txt" \
      || { echo "[check] FAIL: explain found no ingest stage ($label)" >&2; exit 1; }
    echo "[check] serve smoke ($label) passed: clean shutdown, no sanitizer reports"
  }

  # A deliberately tiny admission ring turns into 503s, never losses: 8
  # ingests against 4 slots must report exactly 4 backpressure rejections,
  # in the reply and in the richnote.svc.* counter.
  serve_backpressure() {
    local build_dir=$1 label=$2
    local out_dir="$build_dir/serve-smoke-bp"
    rm -rf "$out_dir"
    mkdir -p "$out_dir"
    "$build_dir/tools/richnote" serve users=20 seed=3 budget_mb=5 threads=1 \
      oracle=1 port=0 queue_capacity=4 port_file="$out_dir/port" \
      >"$out_dir/serve.log" 2>&1 &
    local pid=$!
    for _ in $(seq 1 300); do
      [ -s "$out_dir/port" ] && break
      kill -0 "$pid" 2>/dev/null \
        || { cat "$out_dir/serve.log" >&2
             echo "[check] FAIL: serve ($label, bp) died before binding" >&2
             exit 1; }
      sleep 0.1
    done
    if ! python3 - "$(cat "$out_dir/port")" "$label" <<'EOF'
import json, sys, urllib.error, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

def post(path, body):
    req = urllib.request.Request(base + path, data=body.encode(), method="POST")
    try:
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

lines = "\n".join(
    json.dumps({"id": i, "user": i % 20, "type": "friend_feed", "track": 3,
                "created_at": 0, "social_tie": 0.5, "track_pop": 50,
                "album_pop": 50, "artist_pop": 50})
    for i in range(1, 9))
status, body = post("/ingest", lines)
reply = json.loads(body)
assert status == 503, (status, body)  # a full ring is backpressure
assert reply["accepted"] == 4, body
assert reply["backpressure"] == 4, body

status, body = post("/round", "")
assert status == 200, (status, body)
with urllib.request.urlopen(base + "/metrics", timeout=30) as r:
    metrics = r.read().decode()
assert "richnote_svc_ingest_rejected_backpressure 4" in metrics, metrics
assert "richnote_service_ingest_accepted_total 4" in metrics

status, body = post("/shutdown", "")
assert status == 200, (status, body)
print(f"[check] serve backpressure ({sys.argv[2]}): 503 + exact rejected count")
EOF
    then
      kill "$pid" 2>/dev/null || true
      cat "$out_dir/serve.log" >&2
      echo "[check] FAIL: serve backpressure smoke ($label) failed" >&2
      exit 1
    fi
    wait "$pid" \
      || { cat "$out_dir/serve.log" >&2
           echo "[check] FAIL: serve ($label, bp) unclean exit" >&2; exit 1; }
  }

  serve_smoke build-asan asan -DRICHNOTE_SANITIZE=ON
  serve_backpressure build-asan asan
  serve_smoke build-tsan tsan -DRICHNOTE_TSAN=ON
  serve_backpressure build-tsan tsan
  exit 0
fi

if [ "${1:-}" = "--eval" ]; then
  # Evaluation-harness suite under both sanitizers: ASan+UBSan checks the
  # statistics kernels and report writers, TSan checks the wave fan-out
  # over the persistent worker pool against the sequential fold.
  for pair in "build-asan:-DRICHNOTE_SANITIZE=ON" "build-tsan:-DRICHNOTE_TSAN=ON"; do
    build_dir=${pair%%:*}
    flag=${pair#*:}
    cmake -B "$build_dir" -S . "$flag" >/dev/null
    cmake --build "$build_dir" -j "$(nproc)" --target test_eval
    ctest --test-dir "$build_dir" -L eval --output-on-failure -j "$(nproc)"
  done
  # CLI determinism smoke: the evaluate reports must be byte-identical for
  # any worker count (the tests pin this in-process; this pins the binary).
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)" --target richnote
  OUT_DIR=build/eval-smoke
  mkdir -p "$OUT_DIR"
  for t in 1 4; do
    build/tools/richnote evaluate scenario=flash_crowd users=12 trees=4 seeds=6 \
      min_samples=3 threads="$t" json="$OUT_DIR/eval_t$t.json" \
      csv="$OUT_DIR/eval_t$t.csv" >/dev/null
  done
  cmp "$OUT_DIR/eval_t1.json" "$OUT_DIR/eval_t4.json" \
    || { echo "[check] FAIL: evaluate JSON differs across worker counts" >&2; exit 1; }
  cmp "$OUT_DIR/eval_t1.csv" "$OUT_DIR/eval_t4.csv" \
    || { echo "[check] FAIL: evaluate CSV differs across worker counts" >&2; exit 1; }
  echo "[check] --eval passed: sanitizer-clean and byte-deterministic"
  exit 0
fi

if [ "${1:-}" = "--tsan" ]; then
  BUILD_DIR=build-tsan
  cmake -B "$BUILD_DIR" -S . -DRICHNOTE_TSAN=ON
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target test_ml test_integration
  "$BUILD_DIR/tests/test_ml"
  "$BUILD_DIR/tests/test_integration"
  exit 0
fi

BUILD_DIR=build
if [ "${1:-}" = "--sanitize" ]; then
  BUILD_DIR=build-asan
  cmake -B "$BUILD_DIR" -S . -DRICHNOTE_SANITIZE=ON
else
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

#!/usr/bin/env bash
# Correctness gate: configure, build and run the full test suite — the same
# sequence CI and reviewers use. Run before every push.
#
# Usage: scripts/check.sh [--sanitize]
#   --sanitize   separate build-asan/ tree with -DRICHNOTE_SANITIZE=ON
#                (AddressSanitizer + UBSan). This is how the chaos soak
#                (tests/core/test_chaos_soak.cpp) is meant to be exercised:
#                hundreds of fault-injected rounds with every allocation
#                and integer op checked.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=build
if [ "${1:-}" = "--sanitize" ]; then
  BUILD_DIR=build-asan
  cmake -B "$BUILD_DIR" -S . -DRICHNOTE_SANITIZE=ON
else
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

#!/usr/bin/env bash
# Correctness gate: configure, build and run the full test suite — the same
# sequence CI and reviewers use. Run before every push.
#
# Usage: scripts/check.sh [--sanitize | --bench]
#   --sanitize   separate build-asan/ tree with -DRICHNOTE_SANITIZE=ON
#                (AddressSanitizer + UBSan). This is how the chaos soak
#                (tests/core/test_chaos_soak.cpp) is meant to be exercised:
#                hundreds of fault-injected rounds with every allocation
#                and integer op checked.
#   --bench      perf smoke: runs scripts/bench.sh --quick (small fixed
#                sizes) and fails unless the emitted BENCH JSON parses and
#                carries the expected sections.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--bench" ]; then
  out=build-perf/BENCH_quick.json
  BENCH_OUT="$out" scripts/bench.sh --quick
  python3 - "$out" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))  # malformed JSON raises here
for section in ("round_loop", "inference"):
    if section not in doc:
        sys.exit(f"BENCH JSON missing section: {section}")
    if doc[section].get("schema") != "richnote-bench-v1":
        sys.exit(f"BENCH JSON section {section} has wrong schema tag")
print(f"[check] {sys.argv[1]} is well-formed")
EOF
  exit 0
fi

BUILD_DIR=build
if [ "${1:-}" = "--sanitize" ]; then
  BUILD_DIR=build-asan
  cmake -B "$BUILD_DIR" -S . -DRICHNOTE_SANITIZE=ON
else
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

// richnote — command-line front end to the library.
//
// Subcommands mirror the paper's pipeline so the whole system is drivable
// without writing C++:
//
//   richnote generate users=200 seed=1 out=trace.csv
//       Generate a synthetic Spotify-like workload and export it.
//   richnote train trace=trace.csv users=200 trees=30 out=model.forest
//       Build the §V-A training set from an exported trace, train the
//       Random Forest, report 5-fold CV, and save the model.
//   richnote simulate users=200 seed=1 scheduler=richnote budget_mb=10
//             [model=model.forest] [fixed_level=3] [wifi=true]
//       Run the trace-driven evaluation for one scheduler/budget and print
//       the §V-C metrics (the model defaults to training on the fly).
//   richnote sweep users=200 seed=1 budgets=1,5,20,100 [csv=out.csv]
//       The Fig. 3/4 budget sweep across RichNote/FIFO/UTIL in one table.
//   richnote trace-report trace=run.ndjson [top=10]
//       Aggregate a simulate run's NDJSON decision trace into per-event-
//       type percentile tables and per-user rollups.
//   richnote explain run.ndjson id=1234
//       Reconstruct one notification's full causal chain from a decision
//       trace — ingest, admission, every planned fidelity with its Eq. 7
//       term breakdown, every retry, the terminal outcome — deterministic
//       given the same trace bytes.
//   richnote evaluate scenario=flash_crowd seeds=32 users=200 threads=4
//       Multi-seed Monte-Carlo policy A/B (DESIGN.md §12): run every arm of
//       a scenario pack over N seeded replicas, report mean ± t-CI per
//       metric, and retire statistically dominated arms early. Reports are
//       byte-identical for any thread count.
//   richnote serve users=2000 fleet_users=100000 threads=4 port=8080
//       Long-lived service mode (DESIGN.md §11): train the model on a small
//       workload, stand up a broker fleet of fleet_users, and accept
//       NDJSON notifications over POST /ingest; rounds run on a timer
//       and/or via POST /round, POST /reshard resizes the worker pool
//       live, POST /shutdown exits cleanly.
//
// Live telemetry (DESIGN.md §10): simulate/sweep take expo_port=PORT to
// serve /metrics, /progress and /healthz while the run executes, and
// simulate takes profile=on (plus profile_trace= / profile_flame=) to
// sample the hot paths and export a Chrome trace / flamegraph.
//
// All arguments are key=value; `richnote help` prints this text.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/service.hpp"
#include "eval/report.hpp"
#include "eval/scenario.hpp"
#include "ml/metrics.hpp"
#include "ml/simd_dispatch.hpp"
#include "obs/expo_server.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/run_manifest.hpp"
#include "obs/span_export.hpp"
#include "obs/trace_report.hpp"
#include "obs/trace_sink.hpp"
#include "trace/generator.hpp"
#include "trace/stats.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace richnote;

void print_usage() {
    std::cout <<
        R"(richnote — adaptive rich-notification scheduling (ICDCS'16 reproduction)

subcommands:
  generate users=200 seed=1 out=trace.csv
  train    trace=trace.csv users=200 trees=30 folds=5 out=model.forest
  simulate users=200 seed=1 scheduler=richnote|fifo|util|direct
           budget_mb=10 [fixed_level=3] [wifi=false] [model=model.forest]
           [fault_intensity=0..1] [fault_seed=7] [retry_max=8]
           [retry_backoff_sec=0] [threads=1]
           [trace=run.ndjson] [metrics=metrics.json] [manifest=run.json]
           [expo_port=0] [profile=off] [profile_sample_every=16]
           [profile_trace=trace.json] [profile_flame=flame.txt]
  sweep    users=200 seed=1 budgets=1,5,20,100 [manifest=run.json]
           [expo_port=0]
  trace-report trace=run.ndjson [top=10]
  explain  <trace.ndjson> id=1234   (also: trace=run.ndjson id=1234)
  evaluate scenario=baseline|flash_crowd|regional_outage|battery_trace|cold_start
           users=200 seed=1 seeds=32 [base_seed=1000] [budget_mb=10] [trees=30]
           [arms=richnote,fifo,util] [objective=total_utility] [alpha=0.05]
           [min_samples=8] [early_stop=true] [threads=1] [wave=4]
           [json=report.json] [csv=report.csv] [trace=eval.ndjson]
           [metrics=metrics.json] [manifest=run.json] [expo_port=0]
  inspect  trace=trace.csv users=200 [top=10]
  serve    users=2000 seed=1 [fleet_users=0] [scheduler=richnote]
           [budget_mb=10] [threads=1] [port=0] [port_file=path]
           [queue_capacity=65536] [round_interval_ms=0] [max_rounds=0]
           [oracle=false] [trees=30] [trace=serve.ndjson]
  help

serve mode: POST /ingest accepts NDJSON notification lines (one JSON object
per line; 503 = backpressure, retry later), POST /round runs one service
round now, POST /reshard {"threads":K} checkpoints every broker and resizes
the worker pool losslessly, POST /shutdown exits. GET /metrics, /progress
and /healthz work as in simulate; GET /exemplars returns the top-K worst
end-to-end notification timelines (JSON). fleet_users=0 serves the training
workload's users; a larger value synthesizes that many brokers.
round_interval_ms=0 runs rounds only on POST /round. trace= streams the
per-notification lifecycle + decision NDJSON (feed it to `richnote
explain`); /metrics carries richnote.svc.* stage-latency histograms and
per-endpoint RED series either way.

evaluate mode: one experiment_setup (workload + trained model) is shared by
every arm; replica r of an arm runs at env seed base_seed+r, so arms are
compared under common random numbers. An arm whose confidence interval
falls below the leader's at level alpha is retired early (min_samples
floor); every stop decision is traced and exported via /metrics. The JSON/
CSV report carries the seed-set hash and is byte-identical for any
threads= value and across reruns.

live telemetry: expo_port starts an embedded HTTP server on 127.0.0.1
(0 = ephemeral) serving /metrics (Prometheus text), /progress (JSON) and
/healthz for the duration of the run. profile=on enables the runtime
sampling profiler; profile_trace/profile_flame write a Chrome trace-event
JSON / collapsed-stack flamegraph of the sampled spans (both imply
profile=on).
)";
}

trace::workload_params workload_params_from(const config& cfg) {
    trace::workload_params p;
    p.user_count = static_cast<std::size_t>(cfg.get_int("users", 200));
    return p;
}

int cmd_generate(const config& cfg) {
    cfg.restrict_to({"users", "seed", "out"});
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const std::string out = cfg.get_string("out", "trace.csv");
    const trace::workload world(workload_params_from(cfg), seed);
    const auto rows = trace::save_trace(out, world.notifications());
    std::cout << "wrote " << rows << " notifications for " << world.user_count()
              << " users to " << out << "\n  attended: "
              << world.notifications().attended_count
              << ", clicked: " << world.notifications().clicked_count
              << "\n  pub/sub: " << world.pubsub().topic_count() << " topics, "
              << world.pubsub().subscription_count() << " subscriptions, "
              << world.pubsub().publications() << " publications\n";
    return 0;
}

int cmd_train(const config& cfg) {
    cfg.restrict_to({"trace", "users", "trees", "folds", "seed", "out"});
    const std::string trace_path = cfg.get_string("trace", "trace.csv");
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 200));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const std::string out = cfg.get_string("out", "model.forest");

    const auto trace = trace::load_trace(trace_path, users);
    const ml::dataset data = core::make_training_set(trace);
    std::cout << "training set: " << data.size() << " attended notifications ("
              << format_double(100.0 * data.positive_fraction(), 1) << "% clicked)\n";

    ml::forest_params params;
    params.tree_count = static_cast<std::size_t>(cfg.get_int("trees", 30));
    const auto folds = static_cast<std::size_t>(cfg.get_int("folds", 5));
    const auto cv = ml::cross_validate_forest(data, params, folds, seed);
    std::cout << folds << "-fold CV: accuracy " << format_double(cv.mean_accuracy(), 3)
              << ", precision " << format_double(cv.mean_precision(), 3)
              << "  (paper: 0.689 / 0.700)\n";

    ml::random_forest forest;
    forest.fit(data, params, seed);
    forest.save_file(out);
    std::cout << "saved " << forest.tree_count() << "-tree model to " << out << '\n';
    return 0;
}

core::scheduler_kind parse_kind(const std::string& name) {
    if (name == "richnote") return core::scheduler_kind::richnote;
    if (name == "fifo") return core::scheduler_kind::fifo;
    if (name == "util") return core::scheduler_kind::util;
    if (name == "direct") return core::scheduler_kind::direct;
    RICHNOTE_REQUIRE(false, "unknown scheduler: " + name);
    return core::scheduler_kind::richnote; // unreachable
}

int cmd_simulate(const config& cfg) {
    cfg.restrict_to({"users", "seed", "scheduler", "budget_mb", "fixed_level", "wifi",
                     "model", "trees", "fault_intensity", "fault_seed", "retry_max",
                     "retry_backoff_sec", "threads", "trace", "metrics", "manifest",
                     "expo_port", "profile", "profile_sample_every", "profile_trace",
                     "profile_flame"});
    const auto started = std::chrono::steady_clock::now();
    core::experiment_setup::options opts;
    opts.workload = workload_params_from(cfg);
    opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    opts.forest.tree_count = static_cast<std::size_t>(cfg.get_int("trees", 30));
    opts.model_file = cfg.get_string("model", "");
    const core::experiment_setup setup(opts);

    core::experiment_params params;
    params.kind = parse_kind(cfg.get_string("scheduler", "richnote"));
    params.fixed_level = static_cast<core::level_t>(cfg.get_int("fixed_level", 3));
    params.weekly_budget_mb = cfg.get_double("budget_mb", 10.0);
    params.wifi_enabled = cfg.get_bool("wifi", false);
    params.seed = opts.seed;

    // fault_intensity scales a reference chaos schedule (all fault kinds at
    // once); 0 = off, 1 = the full reference probabilities.
    const double fault_intensity = cfg.get_double("fault_intensity", 0.0);
    if (fault_intensity > 0.0) {
        richnote::faults::fault_plan_params fp;
        fp.seed = static_cast<std::uint64_t>(cfg.get_int("fault_seed", 7));
        fp.blackout_prob = 0.05;
        fp.partial_transfer_prob = 0.10;
        fp.duplicate_prob = 0.05;
        fp.reorder_prob = 0.05;
        fp.brownout_prob = 0.03;
        fp.crash_restart_prob = 0.02;
        params.faults = fp.scaled(fault_intensity);
        params.retry.max_attempts = 8;
        params.retry.backoff_base_sec = 0.0;
    }
    params.retry.max_attempts =
        static_cast<std::uint64_t>(cfg.get_int("retry_max",
                                               static_cast<int>(params.retry.max_attempts)));
    params.retry.backoff_base_sec =
        cfg.get_double("retry_backoff_sec", params.retry.backoff_base_sec);
    params.worker_threads = static_cast<std::size_t>(cfg.get_int("threads", 1));

    // Optional observability outputs: an NDJSON decision trace (streamed
    // incrementally so a killed run keeps a valid prefix), a metrics
    // snapshot, and a run manifest (DESIGN.md §9).
    std::unique_ptr<obs::trace_sink> sink;
    if (cfg.has("trace")) {
        sink = std::make_unique<obs::trace_sink>(setup.world().user_count());
        sink->attach_file(cfg.get_string("trace", "run.ndjson"));
        params.trace = sink.get();
    }
    obs::metrics_registry registry;
    if (cfg.has("metrics")) params.registry = &registry;

    // Live exposition server: /metrics, /progress, /healthz during the run.
    std::unique_ptr<obs::expo_server> expo;
    if (cfg.has("expo_port")) {
        expo = std::make_unique<obs::expo_server>(
            static_cast<std::uint16_t>(cfg.get_int("expo_port", 0)));
        params.progress = expo.get();
        std::cerr << "[expo] serving http://127.0.0.1:" << expo->port()
                  << "/metrics during the run\n";
    }

    // Runtime sampling profiler: profile=on, or implied by either export.
    const bool profiling = cfg.get_bool("profile", false) ||
                           cfg.has("profile_trace") || cfg.has("profile_flame");
    if (profiling) {
        obs::profile_config pc;
        pc.sample_every =
            static_cast<std::uint32_t>(cfg.get_int("profile_sample_every", 16));
        obs::profile_configure(pc);
        obs::profile_reset();
        obs::profile_set_enabled(true);
    }

    const auto r = core::run_experiment(setup, params);

    std::vector<obs::span_record> spans;
    if (profiling) {
        obs::profile_set_enabled(false);
        obs::profile_drain(spans);
        std::cerr << "[profile] " << spans.size() << " sampled spans";
        if (const auto dropped = obs::profile_dropped(); dropped > 0)
            std::cerr << " (" << dropped << " dropped)";
        std::cerr << '\n';
    }
    if (cfg.has("profile_trace")) {
        const std::string path = cfg.get_string("profile_trace", "profile_trace.json");
        std::ofstream out(path);
        RICHNOTE_REQUIRE(out.good(), "cannot open profile trace output: " + path);
        obs::write_chrome_trace(spans, out);
        std::cerr << "[profile] wrote Chrome trace to " << path << '\n';
    }
    if (cfg.has("profile_flame")) {
        const std::string path = cfg.get_string("profile_flame", "profile_flame.txt");
        std::ofstream out(path);
        RICHNOTE_REQUIRE(out.good(), "cannot open flamegraph output: " + path);
        obs::write_collapsed_stacks(spans, out);
        std::cerr << "[profile] wrote collapsed stacks to " << path << '\n';
    }

    if (sink) {
        sink->finalize();
        std::cerr << "[trace] wrote " << sink->event_count() << " events to "
                  << cfg.get_string("trace", "run.ndjson") << '\n';
    }
    if (cfg.has("metrics")) {
        const std::string path = cfg.get_string("metrics", "metrics.json");
        std::ofstream out(path);
        RICHNOTE_REQUIRE(out.good(), "cannot open metrics output: " + path);
        // Hot-path timing totals ride along whenever the run profiled;
        // with the profiler idle profile_export adds nothing.
        obs::profile_export(registry);
        registry.write_json(out);
        std::cerr << "[metrics] wrote " << path << '\n';
    }
    if (cfg.has("manifest")) {
        obs::run_manifest manifest("richnote_cli.simulate");
        manifest.set_seed(opts.seed);
        manifest.add_config("users", static_cast<std::uint64_t>(opts.workload.user_count));
        manifest.add_config("scheduler", cfg.get_string("scheduler", "richnote"));
        manifest.add_config("budget_mb", params.weekly_budget_mb);
        manifest.add_config("trees", static_cast<std::uint64_t>(opts.forest.tree_count));
        manifest.add_config("threads", static_cast<std::uint64_t>(params.worker_threads));
        manifest.add_config("fault_intensity", fault_intensity);
        manifest.add_timing("wall_sec",
                            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                          started)
                                .count());
        manifest.add_timing("rounds_run", static_cast<double>(r.rounds_run));
        const std::string path = cfg.get_string("manifest", "run.json");
        manifest.write_file(path);
        std::cerr << "[manifest] wrote " << path << '\n';
    }

    table t({"metric", "value"});
    t.add_row({"scheduler", r.scheduler_name});
    t.add_row({"weekly budget (MB)", format_double(r.weekly_budget_mb, 1)});
    t.add_row({"delivery ratio", format_double(r.delivery_ratio, 4)});
    t.add_row({"delivered (MB)", format_double(r.delivered_mb, 1)});
    t.add_row({"metered (MB)", format_double(r.metered_mb, 1)});
    t.add_row({"recall", format_double(r.recall, 4)});
    t.add_row({"precision", format_double(r.precision, 4)});
    t.add_row({"total utility", format_double(r.total_utility, 1)});
    t.add_row({"avg utility / delivery", format_double(r.avg_utility, 4)});
    t.add_row({"energy (KJ)", format_double(r.energy_kj, 1)});
    t.add_row({"mean queuing delay (min)", format_double(r.mean_delay_min, 1)});
    if (fault_intensity > 0.0) {
        t.add_row({"fault rounds", std::to_string(r.faults.faults_injected)});
        t.add_row({"transfer retries", std::to_string(r.faults.transfer_retries)});
        t.add_row({"dead-lettered", std::to_string(r.faults.dead_lettered)});
        t.add_row({"duplicates suppressed", std::to_string(r.faults.duplicates_suppressed)});
        t.add_row({"crash restarts", std::to_string(r.faults.crash_restarts)});
        t.add_row({"partial MB", format_double(r.faults.partial_bytes / 1e6, 2)});
        t.add_row({"resumed MB", format_double(r.faults.resumed_bytes / 1e6, 2)});
    }
    std::cout << t;
    return 0;
}

int cmd_inspect(const config& cfg) {
    cfg.restrict_to({"trace", "users", "top"});
    const std::string trace_path = cfg.get_string("trace", "trace.csv");
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 200));
    const auto top = static_cast<std::size_t>(cfg.get_int("top", 10));

    const auto trace = trace::load_trace(trace_path, users);
    const auto stats = trace::analyze(trace);

    table t({"statistic", "value"});
    t.add_row({"notifications", std::to_string(stats.total)});
    t.add_row({"users (active/total)", std::to_string(stats.active_users) + " / " +
                                           std::to_string(stats.users)});
    t.add_row({"items/user mean | p50 | p90 | max",
               format_double(stats.items_per_user_mean, 1) + " | " +
                   format_double(stats.items_per_user_p50, 0) + " | " +
                   format_double(stats.items_per_user_p90, 0) + " | " +
                   format_double(stats.items_per_user_max, 0)});
    t.add_row({"friend_feed share",
               format_double(stats.type_fraction(trace::notification_type::friend_feed), 3)});
    t.add_row({"album_release share",
               format_double(stats.type_fraction(trace::notification_type::album_release), 3)});
    t.add_row({"playlist_update share",
               format_double(stats.type_fraction(trace::notification_type::playlist_update), 3)});
    t.add_row({"attention rate", format_double(stats.attention_rate, 3)});
    t.add_row({"click-through (of attended)", format_double(stats.click_through_rate, 3)});
    t.add_row({"weekend share", format_double(stats.weekend_fraction, 3)});
    t.add_row({"trace span (days)", format_double(stats.span / sim::days, 2)});
    t.add_row({"mean social tie", format_double(stats.social_tie_mean, 3)});
    t.add_row({"mean track popularity", format_double(stats.track_popularity_mean, 1)});
    std::cout << t;

    std::cout << "\ntop " << top << " users by load:";
    for (const auto u : trace::heaviest_users(trace, top)) {
        std::cout << ' ' << u << '(' << trace.per_user[u].size() << ')';
    }
    std::cout << "\n\nhourly arrival shares (00..23):\n";
    for (std::size_t h = 0; h < 24; ++h) {
        std::cout << format_double(stats.hourly_fraction[h], 3)
                  << (h % 8 == 7 ? '\n' : ' ');
    }
    return 0;
}

int cmd_trace_report(const config& cfg) {
    cfg.restrict_to({"trace", "top"});
    const std::string path = cfg.get_string("trace", "run.ndjson");
    std::ifstream in(path);
    RICHNOTE_REQUIRE(in.good(), "cannot open trace file: " + path);
    const auto top = static_cast<std::size_t>(cfg.get_int("top", 10));
    const obs::trace_report report = obs::build_trace_report(in, top);
    obs::write_trace_report(report, std::cout);
    return 0;
}

int cmd_explain(const config& cfg) {
    cfg.restrict_to({"trace", "id"});
    RICHNOTE_REQUIRE(cfg.has("id"), "explain needs id=<notification id>");
    const std::string path = cfg.get_string("trace", "run.ndjson");
    const auto id = static_cast<std::uint64_t>(cfg.get_int("id", 0));
    std::ifstream in(path);
    RICHNOTE_REQUIRE(in.good(), "cannot open trace file: " + path);
    return obs::write_explain(in, id, std::cout) ? 0 : 1;
}

int cmd_sweep(const config& cfg) {
    cfg.restrict_to({"users", "seed", "budgets", "trees", "csv", "manifest",
                     "expo_port"});
    const auto started = std::chrono::steady_clock::now();
    core::experiment_setup::options opts;
    opts.workload = workload_params_from(cfg);
    opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    opts.forest.tree_count = static_cast<std::size_t>(cfg.get_int("trees", 30));
    const core::experiment_setup setup(opts);

    const std::vector<double> budgets = cfg.get_double_list("budgets", {1, 5, 20, 100});

    std::unique_ptr<obs::expo_server> expo;
    if (cfg.has("expo_port")) {
        expo = std::make_unique<obs::expo_server>(
            static_cast<std::uint16_t>(cfg.get_int("expo_port", 0)));
        std::cerr << "[expo] serving http://127.0.0.1:" << expo->port()
                  << "/metrics during the sweep\n";
    }

    table t({"budget(MB)", "scheduler", "delivery%", "recall", "precision", "utility",
             "delay(min)"});
    for (double budget : budgets) {
        for (auto kind : {core::scheduler_kind::richnote, core::scheduler_kind::fifo,
                          core::scheduler_kind::util}) {
            core::experiment_params params;
            params.kind = kind;
            params.fixed_level = 3;
            params.weekly_budget_mb = budget;
            params.seed = opts.seed;
            params.progress = expo.get();
            const auto r = core::run_experiment(setup, params);
            t.add_row({format_double(budget, 0), r.scheduler_name,
                       format_double(100.0 * r.delivery_ratio, 1),
                       format_double(r.recall, 3), format_double(r.precision, 3),
                       format_double(r.total_utility, 1),
                       format_double(r.mean_delay_min, 1)});
        }
    }
    std::cout << t;

    if (cfg.has("manifest")) {
        obs::run_manifest manifest("richnote_cli.sweep");
        manifest.set_seed(opts.seed);
        manifest.add_config("users", static_cast<std::uint64_t>(opts.workload.user_count));
        manifest.add_config("trees", static_cast<std::uint64_t>(opts.forest.tree_count));
        std::string list;
        for (double b : budgets) {
            if (!list.empty()) list += ',';
            list += std::to_string(b);
        }
        manifest.add_config("budgets_mb", list);
        manifest.add_timing("wall_sec",
                            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                          started)
                                .count());
        const std::string path = cfg.get_string("manifest", "run.json");
        manifest.write_file(path);
        std::cerr << "[manifest] wrote " << path << '\n';
    }
    return 0;
}

int cmd_evaluate(const config& cfg) {
    cfg.restrict_to({"scenario", "users", "seed", "trees", "budget_mb", "seeds",
                     "base_seed", "alpha", "min_samples", "objective", "maximize",
                     "early_stop", "threads", "wave", "arms", "json", "csv", "trace",
                     "metrics", "manifest", "expo_port"});
    const auto started = std::chrono::steady_clock::now();

    eval::scenario_request req;
    req.users = static_cast<std::size_t>(cfg.get_int("users", 200));
    req.setup_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    req.trees = static_cast<std::size_t>(cfg.get_int("trees", 30));
    req.budget_mb = cfg.get_double("budget_mb", 10.0);
    const std::string scenario = cfg.get_string("scenario", "baseline");
    const eval::scenario_pack pack = eval::make_scenario(scenario, req);

    eval::eval_params ep;
    ep.arms = pack.arms;
    if (cfg.has("arms")) {
        // Subset/reorder the pack's arms; unknown names are a named error.
        std::vector<eval::arm_spec> picked;
        for (const std::string& name : cfg.get_string_list("arms", {})) {
            bool found = false;
            for (const auto& arm : pack.arms) {
                if (arm.name == name) {
                    picked.push_back(arm);
                    found = true;
                    break;
                }
            }
            std::string known;
            for (const auto& arm : pack.arms) {
                if (!known.empty()) known += ", ";
                known += arm.name;
            }
            RICHNOTE_REQUIRE(found, "unknown arm '" + name + "' for scenario " +
                                        scenario + " (known: " + known + ")");
        }
        ep.arms = std::move(picked);
    }
    ep.seeds = static_cast<std::size_t>(cfg.get_int("seeds", 32));
    ep.base_seed = static_cast<std::uint64_t>(cfg.get_int("base_seed", 1000));
    ep.objective = cfg.get_string("objective", "total_utility");
    // Energy and delay objectives race downward unless told otherwise.
    const bool minimize_default =
        ep.objective == "energy_kj" || ep.objective == "mean_delay_min";
    ep.maximize = cfg.get_bool("maximize", !minimize_default);
    ep.alpha = cfg.get_double("alpha", 0.05);
    ep.min_samples = static_cast<std::size_t>(cfg.get_int("min_samples", 8));
    ep.early_stopping = cfg.get_bool("early_stop", true);
    ep.worker_threads = static_cast<std::size_t>(cfg.get_int("threads", 1));
    ep.seeds_per_wave = static_cast<std::size_t>(cfg.get_int("wave", 4));

    std::cerr << "[evaluate] scenario " << pack.name << ": " << pack.description
              << "\n[evaluate] " << ep.arms.size() << " arms x " << ep.seeds
              << " seeds, alpha " << ep.alpha << ", objective " << ep.objective
              << (ep.maximize ? " (max)" : " (min)") << ", threads "
              << ep.worker_threads << '\n';
    const core::experiment_setup setup(pack.setup);

    std::unique_ptr<obs::trace_sink> sink;
    if (cfg.has("trace")) {
        sink = std::make_unique<obs::trace_sink>(ep.arms.size());
        sink->attach_file(cfg.get_string("trace", "eval.ndjson"));
        ep.trace = sink.get();
    }
    obs::metrics_registry registry;
    ep.registry = &registry;
    std::unique_ptr<obs::expo_server> expo;
    if (cfg.has("expo_port")) {
        expo = std::make_unique<obs::expo_server>(
            static_cast<std::uint16_t>(cfg.get_int("expo_port", 0)));
        ep.progress = expo.get();
        std::cerr << "[expo] serving http://127.0.0.1:" << expo->port()
                  << "/metrics during the evaluation\n";
    }

    const eval::eval_result result = eval::run_evaluation(setup, ep);

    eval::report_options ropts;
    ropts.scenario = pack.name;
    if (cfg.has("json")) {
        const std::string path = cfg.get_string("json", "report.json");
        std::ofstream out(path);
        RICHNOTE_REQUIRE(out.good(), "cannot open report output: " + path);
        eval::write_eval_json(result, ropts, out);
        std::cerr << "[evaluate] wrote JSON report to " << path << '\n';
    }
    if (cfg.has("csv")) {
        const std::string path = cfg.get_string("csv", "report.csv");
        std::ofstream out(path);
        RICHNOTE_REQUIRE(out.good(), "cannot open report output: " + path);
        eval::write_eval_csv(result, ropts, out);
        std::cerr << "[evaluate] wrote CSV report to " << path << '\n';
    }
    if (sink) {
        sink->finalize();
        std::cerr << "[trace] wrote " << sink->event_count() << " events to "
                  << cfg.get_string("trace", "eval.ndjson") << '\n';
    }
    if (cfg.has("metrics")) {
        const std::string path = cfg.get_string("metrics", "metrics.json");
        std::ofstream out(path);
        RICHNOTE_REQUIRE(out.good(), "cannot open metrics output: " + path);
        registry.write_json(out);
        std::cerr << "[metrics] wrote " << path << '\n';
    }
    if (cfg.has("manifest")) {
        obs::run_manifest manifest("richnote_cli.evaluate");
        manifest.set_seed(req.setup_seed);
        manifest.add_config("scenario", pack.name);
        manifest.add_config("users", static_cast<std::uint64_t>(req.users));
        manifest.add_config("trees", static_cast<std::uint64_t>(req.trees));
        manifest.add_config("budget_mb", req.budget_mb);
        manifest.add_config("seeds", static_cast<std::uint64_t>(ep.seeds));
        manifest.add_config("base_seed", ep.base_seed);
        manifest.add_config("alpha", ep.alpha);
        manifest.add_config("min_samples", static_cast<std::uint64_t>(ep.min_samples));
        manifest.add_config("objective", ep.objective);
        manifest.add_config("threads", static_cast<std::uint64_t>(ep.worker_threads));
        manifest.add_config("seed_set_hash", eval::hex64(result.seed_set_hash));
        manifest.add_timing("wall_sec",
                            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                          started)
                                .count());
        manifest.add_timing("replicas_executed",
                            static_cast<double>(result.replicas_executed));
        const std::string path = cfg.get_string("manifest", "run.json");
        manifest.write_file(path);
        std::cerr << "[manifest] wrote " << path << '\n';
    }

    table t({"arm", "n", ep.objective,
             format_double(100.0 * (1.0 - ep.alpha), 0) + "% CI", "status"});
    for (std::size_t k = 0; k < result.arms.size(); ++k) {
        const auto& arm = result.arms[k];
        const auto& acc = arm.metrics[eval::metric_index(ep.objective)];
        const auto ci = result.objective_ci(k);
        std::string status;
        if (k == result.leader) {
            status = "leader";
        } else if (arm.retired) {
            status = "retired@" + std::to_string(arm.retired_after) + " by " +
                     result.arms[arm.retired_by].name;
        }
        const std::string interval =
            acc.count() >= 2 ? "[" + format_double(ci.lo, 1) + ", " +
                                   format_double(ci.hi, 1) + "]"
                             : "-";
        t.add_row({arm.name, std::to_string(acc.count()),
                   format_double(acc.mean(), 1), interval, status});
    }
    std::cout << t;
    std::cout << "replicas: " << result.replicas_used << " used / "
              << result.replicas_executed << " executed of "
              << ep.arms.size() * ep.seeds << " budgeted; seed set "
              << eval::hex64(result.seed_set_hash) << '\n';
    return 0;
}

int cmd_serve(const config& cfg) {
    cfg.restrict_to({"users", "fleet_users", "seed", "scheduler", "budget_mb",
                     "fixed_level", "wifi", "trees", "threads", "port", "port_file",
                     "queue_capacity", "round_interval_ms", "max_rounds", "oracle",
                     "trace"});
    core::experiment_setup::options opts;
    opts.workload = workload_params_from(cfg);
    opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    opts.forest.tree_count = static_cast<std::size_t>(cfg.get_int("trees", 30));
    opts.oracle_utility = cfg.get_bool("oracle", false);
    const core::experiment_setup setup(opts);

    core::service_params sp;
    sp.experiment.kind = parse_kind(cfg.get_string("scheduler", "richnote"));
    sp.experiment.fixed_level = static_cast<core::level_t>(cfg.get_int("fixed_level", 3));
    sp.experiment.weekly_budget_mb = cfg.get_double("budget_mb", 10.0);
    sp.experiment.wifi_enabled = cfg.get_bool("wifi", false);
    sp.experiment.seed = opts.seed;
    sp.user_count = static_cast<std::size_t>(cfg.get_int("fleet_users", 0));
    sp.worker_threads = static_cast<std::size_t>(cfg.get_int("threads", 1));
    sp.queue_capacity = static_cast<std::size_t>(cfg.get_int("queue_capacity", 65536));

    // Lifecycle observability (DESIGN.md §13): the wall-clock tracker (stage
    // histograms + slow exemplars) is always on in service mode; the
    // deterministic NDJSON plane streams only when trace= names a file.
    const std::size_t fleet_users =
        sp.user_count == 0 ? setup.world().user_count() : sp.user_count;
    std::unique_ptr<obs::trace_sink> sink;
    if (cfg.has("trace")) {
        sink = std::make_unique<obs::trace_sink>(fleet_users);
        sink->attach_file(cfg.get_string("trace", "serve.ndjson"));
        sp.experiment.trace = sink.get();
    }
    obs::lifecycle_tracker lifecycle;
    obs::red_recorder red;
    sp.experiment.lifecycle = &lifecycle;
    core::notification_service service(setup, sp);

    obs::expo_server expo(static_cast<std::uint16_t>(cfg.get_int("port", 0)));
    expo.set_uarch(std::string(ml::simd::arch_name()) + "/" +
                   ml::simd::isa_name(ml::simd::active_isa()));

    // All service driving — timer rounds, POST /round, POST /reshard — is
    // serialized by one mutex; the pool's slot 0 simply runs on whichever
    // thread holds it.
    std::mutex service_mutex;
    std::atomic_bool shutdown{false};
    const auto started = std::chrono::steady_clock::now();

    auto publish = [&] {
        const core::service_counters c = service.counters();
        obs::metrics_registry registry;
        service.export_service_metrics(registry);
        red.export_metrics(registry);
        expo.publish_metrics(registry);
        expo.publish_document("/exemplars", "application/json",
                              lifecycle.exemplars_json());
        obs::progress_snapshot snap;
        snap.round = c.rounds_run;
        snap.total_rounds = static_cast<std::uint64_t>(cfg.get_int("max_rounds", 0));
        snap.users = c.users;
        snap.wall_sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        snap.rounds_per_sec =
            snap.wall_sec > 0.0 ? static_cast<double>(c.rounds_run) / snap.wall_sec : 0.0;
        snap.arrived_total = c.admitted;
        snap.delivered_total =
            static_cast<std::uint64_t>(service.metrics().total_delivered());
        snap.duplicates_suppressed = service.metrics().fault_summary().duplicates_suppressed;
        expo.publish_progress(snap);
    };

    // RED instrumentation: every mounted endpoint reports rate / errors
    // (5xx) / duration into the {endpoint=...}-labeled richnote.svc.http.*
    // series. Timing wraps the handler itself, not the socket I/O.
    auto timed = [&red](const char* endpoint, obs::expo_server::post_handler fn) {
        return [&red, endpoint,
                fn = std::move(fn)](const std::string& body) -> obs::expo_server::post_result {
            const auto t0 = std::chrono::steady_clock::now();
            obs::expo_server::post_result result = fn(body);
            red.observe(endpoint, result.status,
                        std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
            return result;
        };
    };

    expo.set_post_handler("/ingest", timed("ingest", [&](const std::string& body) {
        std::uint64_t accepted = 0, parse_errors = 0, unknown_user = 0, backpressure = 0;
        std::size_t pos = 0;
        while (pos < body.size()) {
            std::size_t eol = body.find('\n', pos);
            if (eol == std::string::npos) eol = body.size();
            const std::string_view line(body.data() + pos, eol - pos);
            pos = eol + 1;
            if (line.empty()) continue;
            switch (service.ingest_line(line)) {
                case core::notification_service::ingest_status::accepted: ++accepted; break;
                case core::notification_service::ingest_status::parse_error:
                    ++parse_errors;
                    break;
                case core::notification_service::ingest_status::unknown_user:
                    ++unknown_user;
                    break;
                case core::notification_service::ingest_status::backpressure:
                    ++backpressure;
                    break;
            }
        }
        std::string reply = "{\"accepted\":" + std::to_string(accepted) +
                            ",\"parse_errors\":" + std::to_string(parse_errors) +
                            ",\"unknown_user\":" + std::to_string(unknown_user) +
                            ",\"backpressure\":" + std::to_string(backpressure) + "}\n";
        const int status = backpressure > 0              ? 503
                           : parse_errors + unknown_user > 0 ? 400
                                                             : 200;
        return obs::expo_server::post_result{status, std::move(reply)};
    }));
    expo.set_post_handler("/round", timed("round", [&](const std::string&) {
        std::lock_guard<std::mutex> lock(service_mutex);
        service.run_round();
        publish();
        return obs::expo_server::post_result{
            200, "{\"rounds_run\":" + std::to_string(service.rounds_run()) + "}\n"};
    }));
    expo.set_post_handler("/reshard", timed("reshard", [&](const std::string& body) {
        // Accept either a bare integer or {"threads":K}.
        std::size_t threads = 0;
        const std::size_t digit = body.find_first_of("0123456789");
        if (digit != std::string::npos) threads = std::strtoull(body.c_str() + digit, nullptr, 10);
        if (threads < 1) {
            return obs::expo_server::post_result{400, "{\"error\":\"need threads >= 1\"}\n"};
        }
        std::lock_guard<std::mutex> lock(service_mutex);
        service.reshard(threads);
        const core::service_counters c = service.counters();
        return obs::expo_server::post_result{
            200, "{\"worker_threads\":" + std::to_string(c.worker_threads) +
                     ",\"reshards\":" + std::to_string(c.reshards) + "}\n"};
    }));
    expo.set_post_handler("/shutdown", [&](const std::string&) {
        shutdown.store(true);
        return obs::expo_server::post_result{200, "{\"status\":\"shutting down\"}\n"};
    });

    {
        std::lock_guard<std::mutex> lock(service_mutex);
        publish(); // /metrics and /progress valid before the first round
    }
    std::cerr << "[serve] http://127.0.0.1:" << expo.port()
              << " — POST /ingest /round /reshard /shutdown; GET /metrics /progress"
                 " /healthz /exemplars\n";
    if (cfg.has("port_file")) {
        const std::string path = cfg.get_string("port_file", "serve.port");
        std::ofstream pf(path);
        RICHNOTE_REQUIRE(pf.good(), "cannot open port file: " + path);
        pf << expo.port() << '\n';
        RICHNOTE_REQUIRE(pf.good(), "cannot write port file: " + path);
    }

    const auto interval_ms = cfg.get_int("round_interval_ms", 0);
    const auto max_rounds = static_cast<std::uint64_t>(cfg.get_int("max_rounds", 0));
    auto next_round = std::chrono::steady_clock::now() + std::chrono::milliseconds(interval_ms);
    while (!shutdown.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        std::uint64_t rounds_now = 0;
        if (interval_ms > 0 && std::chrono::steady_clock::now() >= next_round) {
            std::lock_guard<std::mutex> lock(service_mutex);
            service.run_round();
            publish();
            rounds_now = service.rounds_run();
            next_round += std::chrono::milliseconds(interval_ms);
        } else {
            std::lock_guard<std::mutex> lock(service_mutex);
            rounds_now = service.rounds_run();
        }
        if (max_rounds > 0 && rounds_now >= max_rounds) break;
    }

    std::lock_guard<std::mutex> lock(service_mutex);
    publish();
    if (sink) {
        sink->finalize();
        std::cerr << "[trace] wrote " << sink->event_count() << " events to "
                  << cfg.get_string("trace", "serve.ndjson") << '\n';
    }
    const core::service_counters c = service.counters();
    const auto r = service.summarize();
    table t({"metric", "value"});
    t.add_row({"rounds run", std::to_string(c.rounds_run)});
    t.add_row({"users", std::to_string(c.users)});
    t.add_row({"worker threads", std::to_string(c.worker_threads)});
    t.add_row({"reshards", std::to_string(c.reshards)});
    t.add_row({"ingest accepted", std::to_string(c.ingest_accepted)});
    t.add_row({"ingest rejected (parse)", std::to_string(c.ingest_rejected_parse)});
    t.add_row({"ingest rejected (user)", std::to_string(c.ingest_rejected_user)});
    t.add_row({"ingest rejected (backpressure)",
               std::to_string(c.ingest_rejected_backpressure)});
    t.add_row({"admitted", std::to_string(c.admitted)});
    t.add_row({"still pending", std::to_string(c.pending)});
    t.add_row({"delivery ratio", format_double(r.delivery_ratio, 4)});
    t.add_row({"total utility", format_double(r.total_utility, 1)});
    std::cout << t;
    return 0;
}

} // namespace

int main(int argc, char** argv) try {
    if (argc < 2 || std::string(argv[1]) == "help" || std::string(argv[1]) == "--help") {
        print_usage();
        return argc < 2 ? 1 : 0;
    }
    const std::string command = argv[1];
    if (command == "explain") {
        // `explain` takes the trace path as a bare positional argument
        // (richnote explain run.ndjson id=7); fold it into trace= before
        // the key=value parser sees it.
        config ecfg;
        for (int i = 2; i < argc; ++i) {
            const std::string token = argv[i];
            const auto eq = token.find('=');
            if (eq == std::string::npos) {
                ecfg.set("trace", token);
            } else {
                ecfg.set(token.substr(0, eq), token.substr(eq + 1));
            }
        }
        return cmd_explain(ecfg);
    }
    const config cfg = config::from_args(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(cfg);
    if (command == "train") return cmd_train(cfg);
    if (command == "simulate") return cmd_simulate(cfg);
    if (command == "sweep") return cmd_sweep(cfg);
    if (command == "trace-report") return cmd_trace_report(cfg);
    if (command == "evaluate") return cmd_evaluate(cfg);
    if (command == "inspect") return cmd_inspect(cfg);
    if (command == "serve") return cmd_serve(cfg);
    std::cerr << "error: unknown subcommand: " << command
              << " (run `richnote help` for the command list)\n";
    return 1;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Flattened Random Forest for hot-path inference.
//
// A trained random_forest stores each tree as its own node vector behind a
// decision_tree object; scoring walks T separately-allocated arrays per
// call. flat_forest copies every tree into one contiguous structure-of-
// arrays layout (feature ids, thresholds, absolute child offsets, leaf
// probabilities) so a forest walk touches one arena, and adds a batched
// predict_proba over a row-major feature matrix that loops trees-outer /
// rows-inner, keeping each tree's nodes cache-hot across the whole batch.
//
// Determinism contract: predictions are bit-identical to the source
// random_forest. The per-tree walks perform the same comparisons on the
// same values, per-row probabilities accumulate in tree order (the exact
// floating-point order of random_forest::predict_proba), and the final
// division by the tree count is unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace richnote::ml {

class random_forest;

class flat_forest {
public:
    flat_forest() = default;

    /// Flattens a trained forest. The source forest is not retained.
    explicit flat_forest(const random_forest& forest);

    bool trained() const noexcept { return !root_.empty(); }
    std::size_t tree_count() const noexcept { return root_.size(); }
    std::size_t node_count() const noexcept { return feature_.size(); }
    /// Minimum feature-vector length any walk can touch.
    std::size_t feature_count() const noexcept { return min_features_; }

    /// P(label = 1): mean of tree probabilities (bit-identical to the
    /// source random_forest::predict_proba).
    double predict_proba(std::span<const double> features) const;

    /// Hard 0/1 prediction at the 0.5 threshold.
    int predict(std::span<const double> features) const;

    /// Batched inference over a row-major matrix of `row_count` rows of
    /// `feature_count()`-or-more features each (stride = matrix.size() /
    /// row_count). Writes one probability per row into `out`.
    void predict_proba(std::span<const double> matrix, std::size_t row_count,
                       std::span<double> out) const;

    /// Batched inference over a dataset's feature rows.
    std::vector<double> predict_proba(const dataset& rows) const;

private:
    // One SoA node table for all trees; tree t's root is root_[t] and child
    // offsets are absolute indices into these arrays (< 0 marks a leaf).
    std::vector<std::uint32_t> feature_;
    std::vector<double> threshold_;
    std::vector<std::int32_t> left_;
    std::vector<std::int32_t> right_;
    std::vector<double> probability_;
    std::vector<std::uint32_t> root_;
    std::size_t min_features_ = 0;

    double walk(std::uint32_t root, const double* features) const noexcept;
};

} // namespace richnote::ml

// Flattened Random Forest for hot-path inference.
//
// A trained random_forest stores each tree as its own node vector behind a
// decision_tree object; scoring walks T separately-allocated arrays per
// call. flat_forest repacks every tree into one contiguous arena of 16-byte
// node records laid out breadth-first per tree, so the hot top levels of a
// tree share cache lines and a node visit touches exactly one record. The
// breadth-first packing places each split's children pairwise, so a record
// only stores the LEFT child index — the right child is always left + 1 —
// and a leaf reuses the threshold slot for its probability. When every
// split threshold survives a float round-trip the builder also keeps a
// 32-bit copy (threshold32_) that the SIMD kernels gather at half the
// bandwidth and widen back to double before comparing.
//
// Batched scoring walks cache-blocked row groups trees-outer / rows-inner
// through a runtime-dispatched kernel (ml/simd_dispatch.hpp): 4-lane AVX2
// gather traversal on x86-64, interleaved independent walks elsewhere. A
// threads-accepting overload shards rows into contiguous per-worker chunks
// (the deterministic sharding discipline of random_forest::fit).
//
// Determinism contract: predictions are bit-identical to the source
// random_forest on every path — single-row, batched, every dispatch target
// and any thread count. All kernels perform the same comparisons on the
// same double values, per-row probabilities accumulate in tree order (the
// exact floating-point order of random_forest::predict_proba), and the
// final division by the tree count is unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace richnote::ml {

class random_forest;

class flat_forest {
public:
    /// One packed node record (public so the kernel TU's free functions can
    /// name it; treat as an implementation detail). Split node: `value` is
    /// the threshold, `left` the absolute index of the left child and
    /// left + 1 the right child. Leaf: left < 0 and `value` holds the leaf
    /// probability.
    struct node {
        double value = 0.0;
        std::int32_t left = -1;
        std::uint32_t feature = 0;
    };
    static_assert(sizeof(node) == 16, "packed node must stay 16 bytes");

    flat_forest() = default;

    /// Flattens a trained forest. The source forest is not retained.
    explicit flat_forest(const random_forest& forest);

    bool trained() const noexcept { return !root_.empty(); }
    std::size_t tree_count() const noexcept { return root_.size(); }
    std::size_t node_count() const noexcept { return nodes_.size(); }
    /// Minimum feature-vector length any walk can touch.
    std::size_t feature_count() const noexcept { return min_features_; }
    /// True when every split threshold round-trips through float, so the
    /// SIMD kernels compare against gathered-and-widened 32-bit thresholds
    /// (bit-identical to the double compare by construction).
    bool thresholds_quantized() const noexcept { return quantized_; }

    /// P(label = 1): mean of tree probabilities (bit-identical to the
    /// source random_forest::predict_proba).
    double predict_proba(std::span<const double> features) const;

    /// Hard 0/1 prediction at the 0.5 threshold.
    int predict(std::span<const double> features) const;

    /// Batched inference over a row-major matrix of `row_count` rows of
    /// `feature_count()`-or-more features each (stride = matrix.size() /
    /// row_count). Writes one probability per row into `out`.
    void predict_proba(std::span<const double> matrix, std::size_t row_count,
                       std::span<double> out) const;

    /// Multi-threaded batched inference: rows are sharded into `threads`
    /// contiguous chunks (0 = hardware_concurrency, 1 = sequential); each
    /// worker scores its own chunk and writes a disjoint slice of `out`.
    /// Rows are independent, so the result is bit-identical for any thread
    /// count — the same sharding discipline as random_forest::fit.
    void predict_proba(std::span<const double> matrix, std::size_t row_count,
                       std::span<double> out, std::size_t threads) const;

    /// Batched inference over a dataset's feature rows.
    std::vector<double> predict_proba(const dataset& rows) const;

private:
    // One breadth-first-packed node arena for all trees; tree t's root is
    // root_[t] and child offsets are absolute indices into nodes_.
    std::vector<node> nodes_;
    std::vector<float> threshold32_; ///< split thresholds as float (iff quantized_)
    std::vector<std::uint32_t> root_;
    std::size_t min_features_ = 0;
    bool quantized_ = false;

    double walk(std::uint32_t root, const double* features) const noexcept;
    /// Scores rows [begin, end) of the matrix into out[begin..end) through
    /// the dispatched kernel (cache-blocked, trees-outer inside each block).
    void score_rows(const double* matrix, std::size_t stride, std::size_t begin,
                    std::size_t end, double* out) const noexcept;
};

} // namespace richnote::ml

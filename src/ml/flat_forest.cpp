#include "ml/flat_forest.hpp"

#include "common/error.hpp"
#include "ml/random_forest.hpp"
#include "obs/profile.hpp"

namespace richnote::ml {

flat_forest::flat_forest(const random_forest& forest) {
    RICHNOTE_REQUIRE(forest.trained(), "cannot flatten an untrained forest");

    std::size_t total_nodes = 0;
    for (const decision_tree& tree : forest.trees()) total_nodes += tree.node_count();
    feature_.reserve(total_nodes);
    threshold_.reserve(total_nodes);
    left_.reserve(total_nodes);
    right_.reserve(total_nodes);
    probability_.reserve(total_nodes);
    root_.reserve(forest.tree_count());

    for (const decision_tree& tree : forest.trees()) {
        const auto base = static_cast<std::int32_t>(feature_.size());
        root_.push_back(static_cast<std::uint32_t>(base));
        for (const decision_tree::node& n : tree.nodes()) {
            feature_.push_back(n.feature);
            threshold_.push_back(n.threshold);
            // Rebase tree-local child indices to the shared arena; -1 stays
            // the leaf marker.
            left_.push_back(n.left < 0 ? -1 : n.left + base);
            right_.push_back(n.right < 0 ? -1 : n.right + base);
            probability_.push_back(n.probability);
            if (n.left >= 0) {
                const std::size_t needed = static_cast<std::size_t>(n.feature) + 1;
                if (needed > min_features_) min_features_ = needed;
            }
        }
    }
}

double flat_forest::walk(std::uint32_t root, const double* features) const noexcept {
    std::int32_t index = static_cast<std::int32_t>(root);
    for (;;) {
        const std::int32_t child = left_[static_cast<std::size_t>(index)];
        if (child < 0) return probability_[static_cast<std::size_t>(index)];
        const std::size_t i = static_cast<std::size_t>(index);
        index = features[feature_[i]] <= threshold_[i] ? child : right_[i];
    }
}

double flat_forest::predict_proba(std::span<const double> features) const {
    RICHNOTE_REQUIRE(trained(), "predict on an untrained flat forest");
    RICHNOTE_REQUIRE(features.size() >= min_features_, "feature vector too short");
    double sum = 0.0;
    for (const std::uint32_t root : root_) sum += walk(root, features.data());
    return sum / static_cast<double>(root_.size());
}

int flat_forest::predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
}

void flat_forest::predict_proba(std::span<const double> matrix, std::size_t row_count,
                                std::span<double> out) const {
    RICHNOTE_PROFILE_SCOPE(richnote::obs::profile_slot::forest_predict);
    RICHNOTE_REQUIRE(trained(), "predict on an untrained flat forest");
    RICHNOTE_REQUIRE(out.size() == row_count, "output span must have one slot per row");
    if (row_count == 0) return;
    RICHNOTE_REQUIRE(matrix.size() % row_count == 0,
                     "matrix size must be a multiple of the row count");
    const std::size_t stride = matrix.size() / row_count;
    RICHNOTE_REQUIRE(stride >= min_features_, "matrix rows too short for this forest");

    // Trees outer, rows inner: one tree's nodes stay cache-resident across
    // the whole batch. Each row's sum accumulates in tree order — the same
    // floating-point order as the one-row path.
    for (double& slot : out) slot = 0.0;
    for (const std::uint32_t root : root_) {
        const double* row = matrix.data();
        for (std::size_t r = 0; r < row_count; ++r, row += stride)
            out[r] += walk(root, row);
    }
    const double count = static_cast<double>(root_.size());
    for (double& slot : out) slot /= count;
}

std::vector<double> flat_forest::predict_proba(const dataset& rows) const {
    std::vector<double> out(rows.size());
    if (!rows.empty()) {
        // dataset stores features row-major and contiguous; the first row's
        // span starts the matrix.
        const std::span<const double> matrix{rows.row(0).data(),
                                             rows.size() * rows.feature_count()};
        predict_proba(matrix, rows.size(), out);
    }
    return out;
}

} // namespace richnote::ml

#include "ml/flat_forest.hpp"

#include <algorithm>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/error.hpp"
#include "ml/random_forest.hpp"
#include "ml/simd_dispatch.hpp"
#include "obs/profile.hpp"

namespace richnote::ml {

namespace {

using node = flat_forest::node;

/// Single-chain traversal shared by the one-row path and batch remainders.
/// Branchless step: right child is always left + 1, so the comparison result
/// indexes the child pair directly.
inline double scalar_walk(const node* nodes, std::uint32_t root,
                          const double* features) noexcept {
    const node* n = nodes + root;
    std::int32_t left = n->left;
    while (left >= 0) {
        const std::uint32_t child =
            static_cast<std::uint32_t>(left) +
            static_cast<std::uint32_t>(!(features[n->feature] <= n->value));
        n = nodes + child;
        left = n->left;
    }
    return n->value;
}

/// Portable batch kernel (scalar fallback; also the NEON path — aarch64 has
/// no gather, so its win comes from the same 4 independent chains walked in
/// lockstep for instruction-level parallelism). Finished lanes park on their
/// leaf (stepping is conditional on left >= 0), identical to the SIMD
/// blend-parking, and each row's accumulator receives exactly one leaf value
/// per tree.
void score_tree_interleaved(const node* nodes, std::uint32_t root,
                            const double* block, std::size_t stride,
                            std::size_t rows, double* acc) noexcept {
    // Eight chains keep enough independent loads in flight to cover the two
    // serialized L1 loads (node record, then feature value) per level on a
    // 4-wide out-of-order core.
    constexpr std::size_t width = 8;
    std::size_t r = 0;
    for (; r + width <= rows; r += width) {
        const double* row[width];
        std::uint32_t at[width];
        for (std::size_t w = 0; w < width; ++w) {
            row[w] = block + (r + w) * stride;
            at[w] = root;
        }
        for (;;) {
            int live = 0;
#pragma GCC unroll 8
            for (std::size_t w = 0; w < width; ++w) {
                const node n = nodes[at[w]];
                live |= n.left >= 0;
                const std::uint32_t next =
                    static_cast<std::uint32_t>(n.left) +
                    static_cast<std::uint32_t>(!(row[w][n.feature] <= n.value));
                at[w] = n.left < 0 ? at[w] : next;
            }
            if (live == 0) break;
        }
        for (std::size_t w = 0; w < width; ++w) acc[r + w] += nodes[at[w]].value;
    }
    for (; r < rows; ++r) acc[r] += scalar_walk(nodes, root, block + r * stride);
}

#if defined(__x86_64__)

/// AVX2 batch kernel: 4 rows traverse one tree in lockstep, one gather per
/// field per step. Node i occupies dwords [4i, 4i+3] of the arena viewed as
/// int32 ({value lo, value hi, left, feature}) and qwords [2i, 2i+1] viewed
/// as double. Lanes that reach a leaf are parked by blending their old index
/// back in, so their (harmless, in-arena) gathers never affect live lanes.
///
/// Bit-identity with scalar_walk: the comparison is the same
/// `feature <= threshold` on the same doubles (_CMP_LE_OQ orders NaN the
/// same way: compare false, go right), thresholds gathered as f32 are only
/// used when every threshold round-trips float exactly, and each lane
/// contributes exactly one leaf value to its row in tree order.
__attribute__((target("avx2"))) void
score_tree_avx2(const node* nodes, const float* thr32, std::uint32_t root,
                const double* block, std::size_t stride, std::size_t rows,
                double* acc) noexcept {
    const int* dwords = reinterpret_cast<const int*>(nodes);
    const double* qwords = reinterpret_cast<const double*>(nodes);
    const __m128i two = _mm_set1_epi32(2);
    const __m128i one = _mm_set1_epi32(1);
    const __m128i rowoff =
        _mm_setr_epi32(0, static_cast<int>(stride), static_cast<int>(2 * stride),
                       static_cast<int>(3 * stride));
    const __m256i lane_pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    // Masked gather variants with an all-ones mask: identical to the plain
    // gathers, but they take an explicit source operand instead of the
    // _mm256_undefined_pd() that trips -Wmaybe-uninitialized in GCC headers.
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m256d zero = _mm256_setzero_pd();

    // Gathers are high-latency and each tree level's gathers form a serial
    // chain, so a single 4-lane group is latency-bound. Keep `groups`
    // independent groups (16 rows) in flight per pass; their gather chains
    // overlap and the loop becomes gather-throughput-bound instead. A group
    // whose lanes are all parked keeps issuing (harmless, in-arena) gathers
    // until the slowest group finishes — depth variance across 16 adjacent
    // rows is small, so the waste is minor.
    constexpr std::size_t groups = 4;
    std::size_t r = 0;
    for (; r + 4 * groups <= rows; r += 4 * groups) {
        __m128i idx[groups];
        const double* grow[groups];
        for (std::size_t g = 0; g < groups; ++g) {
            idx[g] = _mm_set1_epi32(static_cast<int>(root));
            grow[g] = block + (r + 4 * g) * stride;
        }
        for (;;) {
            int all_leaf = 0xFFFF;
#pragma GCC unroll 4
            for (std::size_t g = 0; g < groups; ++g) {
                const __m128i addr = _mm_add_epi32(_mm_slli_epi32(idx[g], 2), two);
                const __m128i left = _mm_i32gather_epi32(dwords, addr, 4);
                const __m128i leaf = _mm_srai_epi32(left, 31);
                all_leaf &= _mm_movemask_epi8(leaf);
                const __m128i feat =
                    _mm_i32gather_epi32(dwords, _mm_add_epi32(addr, one), 4);
                __m256d thr;
                if (thr32 != nullptr) {
                    // Quantized path: gather f32 thresholds at half the
                    // bandwidth, widen back to the exact double.
                    thr = _mm256_cvtps_pd(_mm_i32gather_ps(thr32, idx[g], 4));
                } else {
                    thr = _mm256_mask_i32gather_pd(zero, qwords,
                                                   _mm_slli_epi32(idx[g], 1), all, 8);
                }
                const __m256d vals = _mm256_mask_i32gather_pd(
                    zero, grow[g], _mm_add_epi32(rowoff, feat), all, 8);
                const __m256d le = _mm256_cmp_pd(vals, thr, _CMP_LE_OQ);
                // Narrow the four 64-bit compare masks to 32-bit lane masks.
                const __m128i le32 = _mm256_castsi256_si128(
                    _mm256_permutevar8x32_epi32(_mm256_castpd_si256(le), lane_pack));
                const __m128i next =
                    _mm_blendv_epi8(_mm_add_epi32(left, one), left, le32);
                idx[g] = _mm_blendv_epi8(next, idx[g], leaf);
            }
            if (all_leaf == 0xFFFF) break;
        }
        for (std::size_t g = 0; g < groups; ++g) {
            alignas(16) std::int32_t lanes[4];
            _mm_store_si128(reinterpret_cast<__m128i*>(lanes), idx[g]);
            acc[r + 4 * g + 0] += nodes[lanes[0]].value;
            acc[r + 4 * g + 1] += nodes[lanes[1]].value;
            acc[r + 4 * g + 2] += nodes[lanes[2]].value;
            acc[r + 4 * g + 3] += nodes[lanes[3]].value;
        }
    }
    for (; r < rows; ++r) acc[r] += scalar_walk(nodes, root, block + r * stride);
}

#endif // defined(__x86_64__)

} // namespace

flat_forest::flat_forest(const random_forest& forest) {
    RICHNOTE_REQUIRE(forest.trained(), "cannot flatten an untrained forest");

    std::size_t total_nodes = 0;
    for (const decision_tree& tree : forest.trees()) total_nodes += tree.node_count();
    nodes_.reserve(total_nodes);
    threshold32_.reserve(total_nodes);
    root_.reserve(forest.tree_count());

    bool quantized = true;
    std::vector<std::uint32_t> order; // BFS visit order, in source indices
    for (const decision_tree& tree : forest.trees()) {
        const std::vector<decision_tree::node>& src = tree.nodes();
        const auto base = static_cast<std::uint32_t>(nodes_.size());
        root_.push_back(base);
        // Breadth-first repack: the i-th visited source node lands in slot
        // base + i, and a split's children are enqueued together, so the
        // right child always sits at left + 1 and is never stored.
        order.clear();
        order.push_back(0);
        for (std::size_t head = 0; head < order.size(); ++head) {
            const decision_tree::node& s = src[order[head]];
            node packed;
            if (s.left < 0) {
                packed.value = s.probability;
                packed.left = -1;
                packed.feature = 0;
            } else {
                packed.value = s.threshold;
                packed.left =
                    static_cast<std::int32_t>(base + static_cast<std::uint32_t>(order.size()));
                packed.feature = s.feature;
                order.push_back(static_cast<std::uint32_t>(s.left));
                order.push_back(static_cast<std::uint32_t>(s.right));
                const std::size_t needed = static_cast<std::size_t>(s.feature) + 1;
                if (needed > min_features_) min_features_ = needed;
                // float round-trip must reproduce the double exactly (this
                // also rejects NaN and float-overflowing thresholds).
                if (static_cast<double>(static_cast<float>(s.threshold)) != s.threshold)
                    quantized = false;
            }
            threshold32_.push_back(static_cast<float>(packed.value));
            nodes_.push_back(packed);
        }
    }
    quantized_ = quantized;
    if (!quantized_) {
        threshold32_.clear();
        threshold32_.shrink_to_fit();
    }
}

double flat_forest::walk(std::uint32_t root, const double* features) const noexcept {
    return scalar_walk(nodes_.data(), root, features);
}

double flat_forest::predict_proba(std::span<const double> features) const {
    RICHNOTE_REQUIRE(trained(), "predict on an untrained flat forest");
    RICHNOTE_REQUIRE(features.size() >= min_features_, "feature vector too short");
    double sum = 0.0;
    for (const std::uint32_t root : root_) sum += walk(root, features.data());
    return sum / static_cast<double>(root_.size());
}

int flat_forest::predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
}

void flat_forest::score_rows(const double* matrix, std::size_t stride,
                             std::size_t begin, std::size_t end,
                             double* out) const noexcept {
    // Row blocks sized to keep the block's features L1-resident while one
    // tree's hot top levels stay cached across the whole block.
    constexpr std::size_t block_rows = 512;
    const node* nodes = nodes_.data();
    const float* thr32 = quantized_ ? threshold32_.data() : nullptr;
    [[maybe_unused]] const bool use_avx2 = simd::active_isa() == simd::isa::avx2;
    const double count = static_cast<double>(root_.size());

    for (std::size_t b = begin; b < end; b += block_rows) {
        const std::size_t n = std::min(block_rows, end - b);
        double* acc = out + b;
        std::fill(acc, acc + n, 0.0);
        const double* block = matrix + b * stride;
        // Trees outer, rows inner: each row accumulates in tree order, the
        // exact floating-point order of the one-row path.
        for (const std::uint32_t root : root_) {
#if defined(__x86_64__)
            if (use_avx2) {
                score_tree_avx2(nodes, thr32, root, block, stride, n, acc);
                continue;
            }
#endif
            score_tree_interleaved(nodes, root, block, stride, n, acc);
        }
        for (std::size_t r = 0; r < n; ++r) acc[r] /= count;
    }
}

void flat_forest::predict_proba(std::span<const double> matrix, std::size_t row_count,
                                std::span<double> out) const {
    predict_proba(matrix, row_count, out, 1);
}

void flat_forest::predict_proba(std::span<const double> matrix, std::size_t row_count,
                                std::span<double> out, std::size_t threads) const {
    RICHNOTE_PROFILE_SCOPE(richnote::obs::profile_slot::forest_predict);
    RICHNOTE_REQUIRE(trained(), "predict on an untrained flat forest");
    RICHNOTE_REQUIRE(out.size() == row_count, "output span must have one slot per row");
    if (row_count == 0) return;
    RICHNOTE_REQUIRE(matrix.size() % row_count == 0,
                     "matrix size must be a multiple of the row count");
    const std::size_t stride = matrix.size() / row_count;
    RICHNOTE_REQUIRE(stride >= min_features_, "matrix rows too short for this forest");

    if (threads == 0) threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    threads = std::min(threads, row_count);
    if (threads <= 1) {
        score_rows(matrix.data(), stride, 0, row_count, out.data());
        return;
    }

    // Contiguous per-worker row chunks writing disjoint out slices — the
    // sharding discipline of random_forest::fit. Rows are independent, so
    // any shard geometry yields bit-identical output. score_rows is
    // noexcept, so plain join suffices (no exception shuttling needed).
    const std::size_t per = (row_count + threads - 1) / threads;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        const std::size_t chunk_begin = t * per;
        const std::size_t chunk_end = std::min(chunk_begin + per, row_count);
        if (chunk_begin >= chunk_end) break;
        workers.emplace_back([this, &matrix, stride, chunk_begin, chunk_end, &out] {
            score_rows(matrix.data(), stride, chunk_begin, chunk_end, out.data());
        });
    }
    for (std::thread& worker : workers) worker.join();
}

std::vector<double> flat_forest::predict_proba(const dataset& rows) const {
    std::vector<double> out(rows.size());
    if (!rows.empty()) {
        // dataset stores features row-major and contiguous; the first row's
        // span starts the matrix.
        const std::span<const double> matrix{rows.row(0).data(),
                                             rows.size() * rows.feature_count()};
        predict_proba(matrix, rows.size(), out);
    }
    return out;
}

} // namespace richnote::ml

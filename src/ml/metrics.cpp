#include "ml/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace richnote::ml {

void confusion_matrix::add(int actual, int predicted) noexcept {
    if (actual == 1) {
        predicted == 1 ? ++true_positive : ++false_negative;
    } else {
        predicted == 1 ? ++false_positive : ++true_negative;
    }
}

double confusion_matrix::accuracy() const noexcept {
    const auto n = total();
    if (n == 0) return 0.0;
    return static_cast<double>(true_positive + true_negative) / static_cast<double>(n);
}

double confusion_matrix::precision() const noexcept {
    const auto predicted_positive = true_positive + false_positive;
    if (predicted_positive == 0) return 0.0;
    return static_cast<double>(true_positive) / static_cast<double>(predicted_positive);
}

double confusion_matrix::recall() const noexcept {
    const auto actual_positive = true_positive + false_negative;
    if (actual_positive == 0) return 0.0;
    return static_cast<double>(true_positive) / static_cast<double>(actual_positive);
}

double confusion_matrix::f1() const noexcept {
    const double p = precision();
    const double r = recall();
    if (p + r == 0.0) return 0.0;
    return 2.0 * p * r / (p + r);
}

confusion_matrix evaluate(const dataset& data,
                          const std::function<int(std::span<const double>)>& model) {
    confusion_matrix cm;
    for (std::size_t r = 0; r < data.size(); ++r) cm.add(data.label(r), model(data.row(r)));
    return cm;
}

double auc(const dataset& data,
           const std::function<double(std::span<const double>)>& scorer) {
    std::vector<std::pair<double, int>> scored;
    scored.reserve(data.size());
    for (std::size_t r = 0; r < data.size(); ++r)
        scored.emplace_back(scorer(data.row(r)), data.label(r));
    std::sort(scored.begin(), scored.end());

    // Rank-sum (Mann-Whitney) formulation with tie handling via mid-ranks.
    double rank_sum_positive = 0.0;
    std::size_t positives = 0;
    std::size_t i = 0;
    while (i < scored.size()) {
        std::size_t j = i;
        while (j < scored.size() && scored[j].first == scored[i].first) ++j;
        const double mid_rank = 0.5 * static_cast<double>(i + 1 + j); // 1-based mid rank
        for (std::size_t k = i; k < j; ++k) {
            if (scored[k].second == 1) {
                rank_sum_positive += mid_rank;
                ++positives;
            }
        }
        i = j;
    }
    const std::size_t negatives = scored.size() - positives;
    if (positives == 0 || negatives == 0) return 0.5;
    const double u = rank_sum_positive -
                     static_cast<double>(positives) * (static_cast<double>(positives) + 1) / 2.0;
    return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double cross_validation_result::mean_accuracy() const noexcept {
    if (folds.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& f : folds) sum += f.accuracy();
    return sum / static_cast<double>(folds.size());
}

double cross_validation_result::mean_precision() const noexcept {
    if (folds.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& f : folds) sum += f.precision();
    return sum / static_cast<double>(folds.size());
}

double cross_validation_result::mean_recall() const noexcept {
    if (folds.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& f : folds) sum += f.recall();
    return sum / static_cast<double>(folds.size());
}

cross_validation_result cross_validate_forest(const dataset& data, const forest_params& params,
                                              std::size_t folds, std::uint64_t seed) {
    RICHNOTE_REQUIRE(folds >= 2, "cross-validation needs at least two folds");
    RICHNOTE_REQUIRE(data.size() >= folds, "fewer rows than folds");

    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    richnote::rng gen(seed);
    gen.shuffle(order);

    cross_validation_result result;
    for (std::size_t fold = 0; fold < folds; ++fold) {
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t i = 0; i < order.size(); ++i) {
            (i % folds == fold ? test_rows : train_rows).push_back(order[i]);
        }
        const dataset train = data.subset(train_rows);
        const dataset test = data.subset(test_rows);
        random_forest forest;
        forest.fit(train, params, gen());
        result.folds.push_back(evaluate(
            test, [&forest](std::span<const double> row) { return forest.predict(row); }));
    }
    return result;
}

std::vector<double> permutation_importance(const dataset& data, const random_forest& model,
                                           std::uint64_t seed, std::size_t repeats) {
    RICHNOTE_REQUIRE(!data.empty(), "cannot compute importance on an empty dataset");
    RICHNOTE_REQUIRE(model.trained(), "model must be trained");
    RICHNOTE_REQUIRE(repeats >= 1, "need at least one repeat");

    const double baseline =
        evaluate(data, [&](std::span<const double> row) { return model.predict(row); })
            .accuracy();

    richnote::rng gen(seed);
    std::vector<double> importance(data.feature_count(), 0.0);
    std::vector<double> row_buffer(data.feature_count());
    std::vector<std::size_t> permutation(data.size());

    for (std::size_t f = 0; f < data.feature_count(); ++f) {
        double drop_sum = 0.0;
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            std::iota(permutation.begin(), permutation.end(), std::size_t{0});
            gen.shuffle(permutation);
            confusion_matrix cm;
            for (std::size_t r = 0; r < data.size(); ++r) {
                const auto row = data.row(r);
                std::copy(row.begin(), row.end(), row_buffer.begin());
                row_buffer[f] = data.at(permutation[r], f);
                cm.add(data.label(r), model.predict(row_buffer));
            }
            drop_sum += baseline - cm.accuracy();
        }
        importance[f] = drop_sum / static_cast<double>(repeats);
    }
    return importance;
}

} // namespace richnote::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace richnote::ml {

double gini_impurity(double negatives, double positives) noexcept {
    const double total = negatives + positives;
    if (total <= 0.0) return 0.0;
    const double p = positives / total;
    return 2.0 * p * (1.0 - p);
}

double entropy_impurity(double negatives, double positives) noexcept {
    const double total = negatives + positives;
    if (total <= 0.0) return 0.0;
    const double p = positives / total;
    double bits = 0.0;
    if (p > 0.0) bits -= p * std::log2(p);
    if (p < 1.0) bits -= (1.0 - p) * std::log2(1.0 - p);
    return bits;
}

namespace {

struct split_candidate {
    std::size_t feature = 0;
    double threshold = 0.0;
    double weighted_impurity = std::numeric_limits<double>::infinity();
    bool found = false;
};

double impurity_of(split_criterion criterion, double negatives, double positives) {
    return criterion == split_criterion::entropy ? entropy_impurity(negatives, positives)
                                                 : gini_impurity(negatives, positives);
}

/// Best threshold for one feature via sort-and-scan; O(n log n).
void scan_feature(const dataset& data, const std::vector<std::size_t>& rows,
                  std::size_t feature, std::size_t min_samples_leaf,
                  split_criterion criterion, split_candidate& best) {
    // Pair (value, label) sorted by value.
    std::vector<std::pair<double, int>> points;
    points.reserve(rows.size());
    for (std::size_t r : rows) points.emplace_back(data.at(r, feature), data.label(r));
    std::sort(points.begin(), points.end());

    const double total = static_cast<double>(points.size());
    double total_pos = 0.0;
    for (const auto& [value, label] : points) total_pos += label;

    double left_count = 0.0;
    double left_pos = 0.0;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        left_count += 1.0;
        left_pos += points[i].second;
        // Split only between distinct values.
        if (points[i].first == points[i + 1].first) continue;
        const double right_count = total - left_count;
        if (left_count < static_cast<double>(min_samples_leaf) ||
            right_count < static_cast<double>(min_samples_leaf))
            continue;
        const double right_pos = total_pos - left_pos;
        const double impurity =
            (left_count / total) *
                impurity_of(criterion, left_count - left_pos, left_pos) +
            (right_count / total) *
                impurity_of(criterion, right_count - right_pos, right_pos);
        if (impurity < best.weighted_impurity) {
            best.weighted_impurity = impurity;
            best.feature = feature;
            best.threshold = 0.5 * (points[i].first + points[i + 1].first);
            best.found = true;
        }
    }
}

} // namespace

void decision_tree::fit(const dataset& data, const std::vector<std::size_t>& rows,
                        const tree_params& params, richnote::rng& gen) {
    RICHNOTE_REQUIRE(!rows.empty(), "cannot fit a tree on zero rows");
    RICHNOTE_REQUIRE(data.feature_count() > 0, "dataset has no features");
    nodes_.clear();
    std::vector<std::size_t> mutable_rows = rows;
    build(data, mutable_rows, params, 0, gen);
}

void decision_tree::fit(const dataset& data, const tree_params& params, richnote::rng& gen) {
    std::vector<std::size_t> rows(data.size());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    fit(data, rows, params, gen);
}

std::int32_t decision_tree::build(const dataset& data, std::vector<std::size_t>& rows,
                                  const tree_params& params, std::size_t depth,
                                  richnote::rng& gen) {
    double positives = 0.0;
    for (std::size_t r : rows) positives += data.label(r);
    const double probability = positives / static_cast<double>(rows.size());

    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(node{0, 0.0, -1, -1, probability});

    const bool pure = positives == 0.0 || positives == static_cast<double>(rows.size());
    if (pure || depth >= params.max_depth || rows.size() < params.min_samples_split)
        return node_index;

    // Choose the feature pool for this node.
    std::vector<std::size_t> features(data.feature_count());
    std::iota(features.begin(), features.end(), std::size_t{0});
    if (params.features_per_split > 0 && params.features_per_split < features.size()) {
        gen.shuffle(features);
        features.resize(params.features_per_split);
    }

    split_candidate best;
    const double parent_impurity = impurity_of(
        params.criterion, static_cast<double>(rows.size()) - positives, positives);
    for (std::size_t f : features)
        scan_feature(data, rows, f, params.min_samples_leaf, params.criterion, best);
    if (!best.found || best.weighted_impurity >= parent_impurity) return node_index;

    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    for (std::size_t r : rows) {
        (data.at(r, best.feature) <= best.threshold ? left_rows : right_rows).push_back(r);
    }
    RICHNOTE_CHECK(!left_rows.empty() && !right_rows.empty(), "degenerate split");

    rows.clear();
    rows.shrink_to_fit(); // free before recursing; children own their rows

    const std::int32_t left = build(data, left_rows, params, depth + 1, gen);
    const std::int32_t right = build(data, right_rows, params, depth + 1, gen);
    nodes_[node_index].feature = static_cast<std::uint32_t>(best.feature);
    nodes_[node_index].threshold = best.threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
}

double decision_tree::predict_proba(std::span<const double> features) const {
    RICHNOTE_REQUIRE(trained(), "predict on an untrained tree");
    std::int32_t index = 0;
    for (;;) {
        const node& n = nodes_[static_cast<std::size_t>(index)];
        if (n.left < 0) return n.probability;
        RICHNOTE_REQUIRE(n.feature < features.size(), "feature vector too short");
        index = features[n.feature] <= n.threshold ? n.left : n.right;
    }
}

int decision_tree::predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
}

void decision_tree::save(std::ostream& out) const {
    RICHNOTE_REQUIRE(trained(), "cannot save an untrained tree");
    out << "tree " << nodes_.size() << '\n';
    out.precision(17);
    for (const node& n : nodes_) {
        out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right << ' '
            << n.probability << '\n';
    }
}

void decision_tree::load(std::istream& in) {
    std::string tag;
    std::size_t count = 0;
    in >> tag >> count;
    RICHNOTE_REQUIRE(in.good() && tag == "tree" && count > 0, "malformed tree header");
    nodes_.clear();
    nodes_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        node n;
        in >> n.feature >> n.threshold >> n.left >> n.right >> n.probability;
        RICHNOTE_REQUIRE(!in.fail(), "malformed tree node");
        const auto limit = static_cast<std::int32_t>(count);
        RICHNOTE_REQUIRE(n.left < limit && n.right < limit, "tree child out of range");
        RICHNOTE_REQUIRE((n.left < 0) == (n.right < 0), "half-leaf tree node");
        RICHNOTE_REQUIRE(n.probability >= 0.0 && n.probability <= 1.0,
                         "leaf probability out of range");
        nodes_.push_back(n);
    }
}

std::size_t decision_tree::depth() const noexcept {
    if (nodes_.empty()) return 0;
    // Iterative depth over the explicit node array.
    std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
    std::size_t best = 0;
    while (!stack.empty()) {
        const auto [index, depth] = stack.back();
        stack.pop_back();
        best = std::max(best, depth);
        const node& n = nodes_[static_cast<std::size_t>(index)];
        if (n.left >= 0) {
            stack.emplace_back(n.left, depth + 1);
            stack.emplace_back(n.right, depth + 1);
        }
    }
    return best;
}

} // namespace richnote::ml

// Probability calibration for classifier scores.
//
// The paper uses the Random Forest's confidence directly as the content
// utility U_c(i) (§V-A) — i.e. it treats the score as a probability.
// Forest vote fractions are typically mis-calibrated (squeezed toward 0.5),
// which distorts every downstream U(i,j) = U_c * U_p product. This module
// provides Platt scaling — fit p = sigmoid(a * score + b) on held-out data
// by maximum likelihood — plus the standard calibration diagnostics
// (Brier score, log-loss, reliability diagram) used to quantify the gain.
#pragma once

#include <cstddef>
#include <vector>

namespace richnote::ml {

/// Two-parameter sigmoid map fit by Newton-Raphson on the regularized
/// log-likelihood (Platt 1999, including the +1/+2 target smoothing that
/// keeps the fit well-posed on separable data).
class platt_calibrator {
public:
    platt_calibrator() = default;

    /// Fits on (raw score, 0/1 label) pairs; needs both classes present.
    void fit(const std::vector<double>& scores, const std::vector<int>& labels);

    /// Calibrated probability for a raw score.
    double calibrate(double score) const;

    bool fitted() const noexcept { return fitted_; }
    double slope() const noexcept { return a_; }
    double intercept() const noexcept { return b_; }

private:
    double a_ = 1.0;
    double b_ = 0.0;
    bool fitted_ = false;
};

/// Isotonic-regression calibrator: the pool-adjacent-violators (PAV)
/// algorithm fits the best monotone step function from scores to empirical
/// positive rates. Nonparametric — unlike Platt it assumes no sigmoid
/// shape — at the cost of needing more calibration data. Between knots the
/// map is linearly interpolated; outside the fitted range it clamps.
class isotonic_calibrator {
public:
    isotonic_calibrator() = default;

    void fit(const std::vector<double>& scores, const std::vector<int>& labels);

    double calibrate(double score) const;

    bool fitted() const noexcept { return !knots_x_.empty(); }
    std::size_t knot_count() const noexcept { return knots_x_.size(); }

private:
    std::vector<double> knots_x_; ///< score positions (strictly increasing)
    std::vector<double> knots_y_; ///< calibrated values (non-decreasing)
};

/// Mean squared error of probabilities against 0/1 outcomes; lower is
/// better; 0.25 is the score of a constant 0.5 prediction.
double brier_score(const std::vector<double>& probabilities,
                   const std::vector<int>& labels);

/// Mean negative log-likelihood with probabilities clamped away from {0,1}.
double log_loss(const std::vector<double>& probabilities, const std::vector<int>& labels);

/// One bin of a reliability diagram.
struct reliability_bin {
    double mean_predicted = 0.0;  ///< average predicted probability in bin
    double empirical_rate = 0.0;  ///< observed positive fraction in bin
    std::size_t count = 0;
};

/// Equal-width bins over [0, 1]; empty bins are omitted. A calibrated
/// model has mean_predicted ~= empirical_rate in every bin.
std::vector<reliability_bin> reliability_diagram(const std::vector<double>& probabilities,
                                                 const std::vector<int>& labels,
                                                 std::size_t bins = 10);

/// Expected calibration error: bin-count-weighted |predicted - empirical|.
double expected_calibration_error(const std::vector<double>& probabilities,
                                  const std::vector<int>& labels, std::size_t bins = 10);

} // namespace richnote::ml

#include "ml/dataset.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace richnote::ml {

dataset::dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
    RICHNOTE_REQUIRE(!feature_names_.empty(), "dataset needs at least one feature");
}

void dataset::add_row(std::span<const double> features, int label) {
    RICHNOTE_REQUIRE(features.size() == feature_names_.size(),
                     "row width must match feature count");
    RICHNOTE_REQUIRE(label == 0 || label == 1, "labels must be 0/1");
    data_.insert(data_.end(), features.begin(), features.end());
    labels_.push_back(label);
}

double dataset::positive_fraction() const noexcept {
    if (labels_.empty()) return 0.0;
    const auto positives = std::accumulate(labels_.begin(), labels_.end(), 0);
    return static_cast<double>(positives) / static_cast<double>(labels_.size());
}

dataset dataset::subset(const std::vector<std::size_t>& rows) const {
    dataset out(feature_names_);
    for (std::size_t r : rows) {
        RICHNOTE_REQUIRE(r < size(), "subset row out of range");
        out.add_row(row(r), labels_[r]);
    }
    return out;
}

std::pair<dataset, dataset> dataset::train_test_split(double test_fraction,
                                                      std::uint64_t seed) const {
    RICHNOTE_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
                     "test fraction must be in (0,1)");
    std::vector<std::size_t> order(size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    richnote::rng gen(seed);
    gen.shuffle(order);
    const auto test_count = static_cast<std::size_t>(
        static_cast<double>(size()) * test_fraction);
    const std::vector<std::size_t> test_rows(order.begin(), order.begin() + test_count);
    const std::vector<std::size_t> train_rows(order.begin() + test_count, order.end());
    return {subset(train_rows), subset(test_rows)};
}

} // namespace richnote::ml

// Dense binary-classification dataset: row-major feature matrix + 0/1 labels.
//
// Substrate for the content-utility learner (§V-A). Kept generic (no
// dependency on trace/), so the ml library is reusable; the adapter that
// turns labeled notifications into rows lives in core/content_utility.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace richnote::ml {

class dataset {
public:
    dataset() = default;
    explicit dataset(std::vector<std::string> feature_names);

    std::size_t feature_count() const noexcept { return feature_names_.size(); }
    std::size_t size() const noexcept { return labels_.size(); }
    bool empty() const noexcept { return labels_.empty(); }

    const std::vector<std::string>& feature_names() const noexcept { return feature_names_; }

    /// Appends a row; `features.size()` must equal feature_count().
    void add_row(std::span<const double> features, int label);

    /// Feature `f` of row `r`.
    double at(std::size_t row, std::size_t feature) const noexcept {
        return data_[row * feature_names_.size() + feature];
    }

    std::span<const double> row(std::size_t r) const noexcept {
        return {data_.data() + r * feature_names_.size(), feature_names_.size()};
    }

    int label(std::size_t row) const noexcept { return labels_[row]; }

    /// Fraction of rows with label 1.
    double positive_fraction() const noexcept;

    /// Row indices selected by `keep` (new dataset with copied rows).
    dataset subset(const std::vector<std::size_t>& rows) const;

    /// Deterministic shuffled split into (train, test) with the given
    /// test fraction.
    std::pair<dataset, dataset> train_test_split(double test_fraction,
                                                 std::uint64_t seed) const;

private:
    std::vector<std::string> feature_names_;
    std::vector<double> data_;
    std::vector<int> labels_;
};

} // namespace richnote::ml

// Classification evaluation: confusion matrix, the precision/accuracy the
// paper reports for its Weka Random Forest (§V-A: precision 0.700,
// accuracy 0.689), and k-fold cross-validation matching the paper's
// five-fold protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"

namespace richnote::ml {

struct confusion_matrix {
    std::uint64_t true_positive = 0;
    std::uint64_t true_negative = 0;
    std::uint64_t false_positive = 0;
    std::uint64_t false_negative = 0;

    std::uint64_t total() const noexcept {
        return true_positive + true_negative + false_positive + false_negative;
    }

    void add(int actual, int predicted) noexcept;

    double accuracy() const noexcept;
    /// Precision of the positive ("clicked") class; 0 when no positives
    /// were predicted.
    double precision() const noexcept;
    double recall() const noexcept;
    double f1() const noexcept;
};

/// Evaluates a fitted model (any callable row -> 0/1) on a dataset.
confusion_matrix evaluate(const dataset& data,
                          const std::function<int(std::span<const double>)>& model);

/// Area under the ROC curve given scores for each row (rank statistic).
double auc(const dataset& data,
           const std::function<double(std::span<const double>)>& scorer);

struct cross_validation_result {
    std::vector<confusion_matrix> folds;

    double mean_accuracy() const noexcept;
    double mean_precision() const noexcept;
    double mean_recall() const noexcept;
};

/// K-fold cross-validation of a Random Forest with the given params
/// (shuffled fold assignment, deterministic under `seed`).
cross_validation_result cross_validate_forest(const dataset& data, const forest_params& params,
                                              std::size_t folds, std::uint64_t seed);

/// Permutation importance: for each feature, the mean drop in accuracy when
/// that feature's column is shuffled (averaged over `repeats` shuffles).
/// Near-zero (or negative) values mean the model does not rely on the
/// feature. Deterministic under `seed`.
std::vector<double> permutation_importance(const dataset& data, const random_forest& model,
                                           std::uint64_t seed, std::size_t repeats = 3);

} // namespace richnote::ml

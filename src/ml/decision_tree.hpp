// CART binary-classification decision tree (Gini impurity), the base
// learner of the Random Forest (§V-A / Breiman [7]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace richnote::ml {

/// Impurity criterion for split selection.
enum class split_criterion : std::uint8_t { gini = 0, entropy = 1 };

struct tree_params {
    std::size_t max_depth = 12;
    std::size_t min_samples_leaf = 2;
    std::size_t min_samples_split = 4;
    /// Features examined per split; 0 = all (plain CART). Random Forest
    /// passes ~sqrt(feature_count).
    std::size_t features_per_split = 0;
    split_criterion criterion = split_criterion::gini;
};

class decision_tree {
public:
    struct node {
        // Internal: feature/threshold; children indices. Leaf: probability.
        std::uint32_t feature = 0;
        double threshold = 0.0;
        std::int32_t left = -1;  ///< -1 marks a leaf
        std::int32_t right = -1;
        double probability = 0.0; ///< P(label=1) among training rows here
    };

    decision_tree() = default;

    /// Fits on `rows` of `data` (indices may repeat — bootstrap sampling).
    /// `gen` drives the per-node feature subsampling.
    void fit(const dataset& data, const std::vector<std::size_t>& rows,
             const tree_params& params, richnote::rng& gen);

    /// Convenience: fit on every row.
    void fit(const dataset& data, const tree_params& params, richnote::rng& gen);

    /// P(label = 1 | features).
    double predict_proba(std::span<const double> features) const;

    /// Hard 0/1 prediction at the 0.5 threshold.
    int predict(std::span<const double> features) const;

    bool trained() const noexcept { return !nodes_.empty(); }
    std::size_t node_count() const noexcept { return nodes_.size(); }
    std::size_t depth() const noexcept;

    /// Writes the node array as one text line per node (see ml/serialize).
    void save(std::ostream& out) const;
    /// Rebuilds a tree saved by save(); validates structural integrity.
    void load(std::istream& in);

    /// The explicit node array (root at index 0, child indices tree-local).
    /// flat_forest reads this to build its contiguous SoA layout.
    const std::vector<node>& nodes() const noexcept { return nodes_; }

private:
    std::int32_t build(const dataset& data, std::vector<std::size_t>& rows,
                       const tree_params& params, std::size_t depth, richnote::rng& gen);

    std::vector<node> nodes_;
};

/// Gini impurity of a (negatives, positives) count pair.
double gini_impurity(double negatives, double positives) noexcept;

/// Shannon entropy (bits) of a (negatives, positives) count pair.
double entropy_impurity(double negatives, double positives) noexcept;

} // namespace richnote::ml

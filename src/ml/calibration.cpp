#include "ml/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace richnote::ml {

namespace {

double stable_sigmoid(double z) noexcept {
    if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
    const double e = std::exp(z);
    return e / (1.0 + e);
}

void require_paired(const std::vector<double>& p, const std::vector<int>& y) {
    RICHNOTE_REQUIRE(p.size() == y.size(), "scores/labels length mismatch");
    RICHNOTE_REQUIRE(!p.empty(), "need at least one sample");
    for (int label : y) RICHNOTE_REQUIRE(label == 0 || label == 1, "labels must be 0/1");
}

} // namespace

void platt_calibrator::fit(const std::vector<double>& scores,
                           const std::vector<int>& labels) {
    require_paired(scores, labels);
    double positives = 0;
    for (int y : labels) positives += y;
    const double negatives = static_cast<double>(labels.size()) - positives;
    RICHNOTE_REQUIRE(positives > 0 && negatives > 0,
                     "calibration needs both classes present");

    // Platt's smoothed targets keep the likelihood bounded on separable data.
    const double target_pos = (positives + 1.0) / (positives + 2.0);
    const double target_neg = 1.0 / (negatives + 2.0);

    // Newton-Raphson on the 2-parameter logistic log-likelihood.
    double a = 0.0;
    double b = std::log((negatives + 1.0) / (positives + 1.0));
    for (int iteration = 0; iteration < 100; ++iteration) {
        double g_a = 0, g_b = 0;          // gradient
        double h_aa = 1e-12, h_ab = 0, h_bb = 1e-12; // Hessian (ridge-stabilized)
        for (std::size_t i = 0; i < scores.size(); ++i) {
            const double t = labels[i] == 1 ? target_pos : target_neg;
            const double p = stable_sigmoid(a * scores[i] + b);
            const double d = p - t;
            g_a += d * scores[i];
            g_b += d;
            const double w = std::max(p * (1.0 - p), 1e-12);
            h_aa += w * scores[i] * scores[i];
            h_ab += w * scores[i];
            h_bb += w;
        }
        const double det = h_aa * h_bb - h_ab * h_ab;
        if (std::abs(det) < 1e-18) break;
        const double step_a = (h_bb * g_a - h_ab * g_b) / det;
        const double step_b = (h_aa * g_b - h_ab * g_a) / det;
        a -= step_a;
        b -= step_b;
        if (std::abs(step_a) < 1e-10 && std::abs(step_b) < 1e-10) break;
    }
    a_ = a;
    b_ = b;
    fitted_ = true;
}

double platt_calibrator::calibrate(double score) const {
    RICHNOTE_REQUIRE(fitted_, "calibrator has not been fitted");
    return stable_sigmoid(a_ * score + b_);
}

void isotonic_calibrator::fit(const std::vector<double>& scores,
                              const std::vector<int>& labels) {
    require_paired(scores, labels);

    // Sort samples by score.
    std::vector<std::size_t> order(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

    // Pool adjacent violators: maintain a stack of blocks with their mean.
    struct block {
        double sum;
        double count;
        double min_x;
        double max_x;
    };
    std::vector<block> blocks;
    blocks.reserve(scores.size());
    for (std::size_t i : order) {
        blocks.push_back(block{static_cast<double>(labels[i]), 1.0, scores[i], scores[i]});
        while (blocks.size() >= 2) {
            const block& last = blocks[blocks.size() - 1];
            const block& prev = blocks[blocks.size() - 2];
            if (prev.sum / prev.count <= last.sum / last.count + 1e-15) break;
            // Violation: merge.
            block merged{prev.sum + last.sum, prev.count + last.count, prev.min_x,
                         last.max_x};
            blocks.pop_back();
            blocks.back() = merged;
        }
    }

    // Compact runs of blocks with equal means (PAV leaves already-monotone
    // points as singleton blocks); the interpolated function is unchanged
    // but lookups shrink to one knot per distinct level boundary.
    std::vector<block> compacted;
    for (const block& b : blocks) {
        if (!compacted.empty() &&
            std::abs(compacted.back().sum / compacted.back().count - b.sum / b.count) <
                1e-12) {
            compacted.back().sum += b.sum;
            compacted.back().count += b.count;
            compacted.back().max_x = b.max_x;
        } else {
            compacted.push_back(b);
        }
    }

    knots_x_.clear();
    knots_y_.clear();
    for (const block& b : compacted) {
        const double y = b.sum / b.count;
        // Represent each block by its score midpoint; collapse duplicates.
        const double x = 0.5 * (b.min_x + b.max_x);
        if (!knots_x_.empty() && x <= knots_x_.back()) {
            knots_y_.back() = y; // same position: keep the later (higher) value
            continue;
        }
        knots_x_.push_back(x);
        knots_y_.push_back(y);
    }
    RICHNOTE_CHECK(!knots_x_.empty(), "PAV produced no blocks");
}

double isotonic_calibrator::calibrate(double score) const {
    RICHNOTE_REQUIRE(fitted(), "calibrator has not been fitted");
    if (score <= knots_x_.front()) return knots_y_.front();
    if (score >= knots_x_.back()) return knots_y_.back();
    const auto it = std::upper_bound(knots_x_.begin(), knots_x_.end(), score);
    const auto hi = static_cast<std::size_t>(it - knots_x_.begin());
    const std::size_t lo = hi - 1;
    const double span = knots_x_[hi] - knots_x_[lo];
    const double t = span > 0 ? (score - knots_x_[lo]) / span : 0.0;
    return knots_y_[lo] + t * (knots_y_[hi] - knots_y_[lo]);
}

double brier_score(const std::vector<double>& probabilities,
                   const std::vector<int>& labels) {
    require_paired(probabilities, labels);
    double acc = 0;
    for (std::size_t i = 0; i < probabilities.size(); ++i) {
        const double d = probabilities[i] - labels[i];
        acc += d * d;
    }
    return acc / static_cast<double>(probabilities.size());
}

double log_loss(const std::vector<double>& probabilities, const std::vector<int>& labels) {
    require_paired(probabilities, labels);
    double acc = 0;
    for (std::size_t i = 0; i < probabilities.size(); ++i) {
        const double p = std::clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
        acc -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
    }
    return acc / static_cast<double>(probabilities.size());
}

std::vector<reliability_bin> reliability_diagram(const std::vector<double>& probabilities,
                                                 const std::vector<int>& labels,
                                                 std::size_t bins) {
    require_paired(probabilities, labels);
    RICHNOTE_REQUIRE(bins >= 1, "need at least one bin");
    std::vector<double> sum_p(bins, 0.0);
    std::vector<double> sum_y(bins, 0.0);
    std::vector<std::size_t> count(bins, 0);
    for (std::size_t i = 0; i < probabilities.size(); ++i) {
        RICHNOTE_REQUIRE(probabilities[i] >= 0.0 && probabilities[i] <= 1.0,
                         "probabilities must be in [0,1]");
        auto bin = static_cast<std::size_t>(probabilities[i] * static_cast<double>(bins));
        bin = std::min(bin, bins - 1);
        sum_p[bin] += probabilities[i];
        sum_y[bin] += labels[i];
        ++count[bin];
    }
    std::vector<reliability_bin> out;
    for (std::size_t b = 0; b < bins; ++b) {
        if (count[b] == 0) continue;
        reliability_bin rb;
        rb.mean_predicted = sum_p[b] / static_cast<double>(count[b]);
        rb.empirical_rate = sum_y[b] / static_cast<double>(count[b]);
        rb.count = count[b];
        out.push_back(rb);
    }
    return out;
}

double expected_calibration_error(const std::vector<double>& probabilities,
                                  const std::vector<int>& labels, std::size_t bins) {
    const auto diagram = reliability_diagram(probabilities, labels, bins);
    const double total = static_cast<double>(probabilities.size());
    double ece = 0;
    for (const auto& bin : diagram) {
        ece += (static_cast<double>(bin.count) / total) *
               std::abs(bin.mean_predicted - bin.empirical_rate);
    }
    return ece;
}

} // namespace richnote::ml

// Random Forest classifier (Breiman 2001), the content-utility learner the
// paper trains in Weka (§V-A): bootstrap-bagged CART trees with per-node
// feature subsampling; predict_proba averages tree probabilities, which is
// the confidence score U_c(i) consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace richnote::ml {

struct forest_params {
    std::size_t tree_count = 50;
    tree_params tree; ///< features_per_split 0 means "auto" = ceil(sqrt(F))
    bool compute_oob = false; ///< track out-of-bag accuracy during fit
    /// Threads fitting trees concurrently; 0 = hardware_concurrency, 1 =
    /// sequential. Trees are independent given their pre-split per-tree rng
    /// streams, so the fitted forest is bit-identical for any thread count.
    std::size_t fit_threads = 1;
};

class random_forest {
public:
    random_forest() = default;

    void fit(const dataset& data, const forest_params& params, std::uint64_t seed);

    /// P(label = 1): mean of tree probabilities.
    double predict_proba(std::span<const double> features) const;

    /// Hard 0/1 prediction at the 0.5 threshold.
    int predict(std::span<const double> features) const;

    std::size_t tree_count() const noexcept { return trees_.size(); }
    bool trained() const noexcept { return !trees_.empty(); }

    /// The fitted trees, in fit order (flat_forest flattens these).
    const std::vector<decision_tree>& trees() const noexcept { return trees_; }

    /// Out-of-bag accuracy if requested at fit time.
    std::optional<double> oob_accuracy() const noexcept { return oob_accuracy_; }

    /// Plain-text model persistence: a versioned header followed by each
    /// tree's node table. Trained models round-trip exactly (save -> load
    /// reproduces identical predictions), so the §V-A classifier can be
    /// trained once and shipped with an application.
    void save(std::ostream& out) const;
    void load(std::istream& in);
    void save_file(const std::string& path) const;
    void load_file(const std::string& path);

private:
    std::vector<decision_tree> trees_;
    std::optional<double> oob_accuracy_;
};

} // namespace richnote::ml

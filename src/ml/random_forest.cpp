#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <fstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/profile.hpp"

namespace richnote::ml {

void random_forest::fit(const dataset& data, const forest_params& params, std::uint64_t seed) {
    RICHNOTE_PROFILE_SCOPE(richnote::obs::profile_slot::forest_fit);
    RICHNOTE_REQUIRE(params.tree_count > 0, "forest needs at least one tree");
    RICHNOTE_REQUIRE(!data.empty(), "cannot fit a forest on an empty dataset");

    tree_params per_tree = params.tree;
    if (per_tree.features_per_split == 0) {
        per_tree.features_per_split = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(data.feature_count()))));
    }

    trees_.assign(params.tree_count, decision_tree{});

    // Pre-split one child stream per tree, in tree order. This is the exact
    // split() sequence the sequential loop used to draw, so every tree sees
    // the same rng stream no matter how many threads fit the forest — the
    // fitted trees are bit-identical for any fit_threads value.
    richnote::rng gen(seed);
    std::vector<richnote::rng> tree_gens;
    tree_gens.reserve(params.tree_count);
    for (std::size_t t = 0; t < params.tree_count; ++t) tree_gens.push_back(gen.split());

    // Per-tree bootstrap membership, kept so out-of-bag accumulation can run
    // sequentially after all trees are fitted (joins before touching shared
    // state; accumulation order matches the old interleaved loop).
    std::vector<std::vector<std::uint8_t>> in_bag;
    if (params.compute_oob)
        in_bag.assign(params.tree_count, std::vector<std::uint8_t>(data.size(), 0));

    const auto fit_range = [&](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> sample(data.size());
        for (std::size_t t = begin; t < end; ++t) {
            richnote::rng& tree_gen = tree_gens[t];
            for (std::size_t i = 0; i < data.size(); ++i) {
                const std::size_t r = tree_gen.index(data.size());
                sample[i] = r;
                if (params.compute_oob) in_bag[t][r] = 1;
            }
            trees_[t].fit(data, sample, per_tree, tree_gen);
        }
    };

    std::size_t threads = params.fit_threads == 0
                              ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                              : params.fit_threads;
    threads = std::min(threads, params.tree_count);
    if (threads <= 1) {
        fit_range(0, params.tree_count);
    } else {
        // Contiguous chunks; each worker owns its sample buffer and writes
        // only its own trees_[t] / in_bag[t] slots.
        std::vector<std::thread> workers;
        std::vector<std::exception_ptr> errors(threads);
        const std::size_t per = (params.tree_count + threads - 1) / threads;
        for (std::size_t w = 0; w < threads; ++w) {
            const std::size_t begin = w * per;
            const std::size_t end = std::min(begin + per, params.tree_count);
            if (begin >= end) break;
            workers.emplace_back([&, w, begin, end] {
                try {
                    fit_range(begin, end);
                } catch (...) {
                    errors[w] = std::current_exception();
                }
            });
        }
        for (std::thread& worker : workers) worker.join();
        for (const std::exception_ptr& error : errors)
            if (error) std::rethrow_exception(error);
    }

    if (params.compute_oob) {
        // Per row: sum of probabilities from trees that did not see it, and
        // how many such trees there were. Trees accumulate in fit order, the
        // same floating-point order as the old interleaved loop.
        std::vector<double> oob_sum(data.size(), 0.0);
        std::vector<std::uint32_t> oob_votes(data.size(), 0);
        for (std::size_t t = 0; t < params.tree_count; ++t) {
            for (std::size_t r = 0; r < data.size(); ++r) {
                if (in_bag[t][r]) continue;
                oob_sum[r] += trees_[t].predict_proba(data.row(r));
                ++oob_votes[r];
            }
        }
        std::size_t scored = 0;
        std::size_t correct = 0;
        for (std::size_t r = 0; r < data.size(); ++r) {
            if (oob_votes[r] == 0) continue;
            ++scored;
            const int predicted = oob_sum[r] / oob_votes[r] >= 0.5 ? 1 : 0;
            if (predicted == data.label(r)) ++correct;
        }
        if (scored > 0)
            oob_accuracy_ = static_cast<double>(correct) / static_cast<double>(scored);
    }
}

double random_forest::predict_proba(std::span<const double> features) const {
    RICHNOTE_REQUIRE(trained(), "predict on an untrained forest");
    double sum = 0.0;
    for (const decision_tree& tree : trees_) sum += tree.predict_proba(features);
    return sum / static_cast<double>(trees_.size());
}

int random_forest::predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
}

void random_forest::save(std::ostream& out) const {
    RICHNOTE_REQUIRE(trained(), "cannot save an untrained forest");
    out << "richnote_forest v1\n" << "trees " << trees_.size() << '\n';
    for (const decision_tree& tree : trees_) tree.save(out);
    RICHNOTE_REQUIRE(out.good(), "write failure while saving forest");
}

void random_forest::load(std::istream& in) {
    std::string magic, version, tag;
    std::size_t count = 0;
    in >> magic >> version >> tag >> count;
    RICHNOTE_REQUIRE(in.good() && magic == "richnote_forest" && version == "v1" &&
                         tag == "trees" && count > 0,
                     "malformed forest header");
    std::vector<decision_tree> trees(count);
    for (decision_tree& tree : trees) tree.load(in);
    trees_ = std::move(trees);
    oob_accuracy_.reset(); // not persisted
}

void random_forest::save_file(const std::string& path) const {
    std::ofstream out(path);
    RICHNOTE_REQUIRE(out.good(), "cannot open model file for writing: " + path);
    save(out);
}

void random_forest::load_file(const std::string& path) {
    std::ifstream in(path);
    RICHNOTE_REQUIRE(in.good(), "cannot open model file for reading: " + path);
    load(in);
}

} // namespace richnote::ml

#include "ml/random_forest.hpp"

#include <cmath>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace richnote::ml {

void random_forest::fit(const dataset& data, const forest_params& params, std::uint64_t seed) {
    RICHNOTE_REQUIRE(params.tree_count > 0, "forest needs at least one tree");
    RICHNOTE_REQUIRE(!data.empty(), "cannot fit a forest on an empty dataset");

    tree_params per_tree = params.tree;
    if (per_tree.features_per_split == 0) {
        per_tree.features_per_split = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(data.feature_count()))));
    }

    trees_.assign(params.tree_count, decision_tree{});
    richnote::rng gen(seed);

    // Out-of-bag bookkeeping: per row, sum of probabilities from trees that
    // did not see it, and how many such trees there were.
    std::vector<double> oob_sum;
    std::vector<std::uint32_t> oob_votes;
    if (params.compute_oob) {
        oob_sum.assign(data.size(), 0.0);
        oob_votes.assign(data.size(), 0);
    }

    std::vector<std::size_t> sample(data.size());
    std::vector<std::uint8_t> in_bag(data.size());
    for (decision_tree& tree : trees_) {
        richnote::rng tree_gen = gen.split();
        std::fill(in_bag.begin(), in_bag.end(), std::uint8_t{0});
        for (std::size_t i = 0; i < data.size(); ++i) {
            const std::size_t r = tree_gen.index(data.size());
            sample[i] = r;
            in_bag[r] = 1;
        }
        tree.fit(data, sample, per_tree, tree_gen);
        if (params.compute_oob) {
            for (std::size_t r = 0; r < data.size(); ++r) {
                if (in_bag[r]) continue;
                oob_sum[r] += tree.predict_proba(data.row(r));
                ++oob_votes[r];
            }
        }
    }

    if (params.compute_oob) {
        std::size_t scored = 0;
        std::size_t correct = 0;
        for (std::size_t r = 0; r < data.size(); ++r) {
            if (oob_votes[r] == 0) continue;
            ++scored;
            const int predicted = oob_sum[r] / oob_votes[r] >= 0.5 ? 1 : 0;
            if (predicted == data.label(r)) ++correct;
        }
        if (scored > 0)
            oob_accuracy_ = static_cast<double>(correct) / static_cast<double>(scored);
    }
}

double random_forest::predict_proba(std::span<const double> features) const {
    RICHNOTE_REQUIRE(trained(), "predict on an untrained forest");
    double sum = 0.0;
    for (const decision_tree& tree : trees_) sum += tree.predict_proba(features);
    return sum / static_cast<double>(trees_.size());
}

int random_forest::predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
}

void random_forest::save(std::ostream& out) const {
    RICHNOTE_REQUIRE(trained(), "cannot save an untrained forest");
    out << "richnote_forest v1\n" << "trees " << trees_.size() << '\n';
    for (const decision_tree& tree : trees_) tree.save(out);
    RICHNOTE_REQUIRE(out.good(), "write failure while saving forest");
}

void random_forest::load(std::istream& in) {
    std::string magic, version, tag;
    std::size_t count = 0;
    in >> magic >> version >> tag >> count;
    RICHNOTE_REQUIRE(in.good() && magic == "richnote_forest" && version == "v1" &&
                         tag == "trees" && count > 0,
                     "malformed forest header");
    std::vector<decision_tree> trees(count);
    for (decision_tree& tree : trees) tree.load(in);
    trees_ = std::move(trees);
    oob_accuracy_.reset(); // not persisted
}

void random_forest::save_file(const std::string& path) const {
    std::ofstream out(path);
    RICHNOTE_REQUIRE(out.good(), "cannot open model file for writing: " + path);
    save(out);
}

void random_forest::load_file(const std::string& path) {
    std::ifstream in(path);
    RICHNOTE_REQUIRE(in.good(), "cannot open model file for reading: " + path);
    load(in);
}

} // namespace richnote::ml

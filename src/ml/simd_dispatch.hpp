// Runtime SIMD dispatch for the inference kernels (DESIGN.md §8).
//
// The batch scorer picks its traversal kernel once per process: AVX2 on
// x86-64 hosts that report it, NEON on aarch64 (architecturally guaranteed),
// scalar everywhere else. Setting RICHNOTE_FORCE_SCALAR=1 in the environment
// pins the scalar kernel — scripts/check.sh --bench uses this to time and
// cross-check both paths — and tests can force a target in-process with
// scoped_isa_override. Every kernel is bit-identical by contract (same
// comparisons on the same doubles, same accumulation order), so the choice
// is invisible except in items/sec; the chosen kernel is still recorded in
// the bench JSON / run manifests as the `uarch` field so
// scripts/manifest_diff.py can tell a cross-machine run from a regression.
#pragma once

#include <cstdlib>

namespace richnote::ml::simd {

enum class isa { scalar, avx2, neon };

inline const char* isa_name(isa kind) noexcept {
    switch (kind) {
        case isa::avx2: return "avx2";
        case isa::neon: return "neon";
        default: return "scalar";
    }
}

inline const char* arch_name() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
    return "x86_64";
#elif defined(__aarch64__)
    return "aarch64";
#else
    return "generic";
#endif
}

namespace detail {

inline isa detect() noexcept {
    const char* force = std::getenv("RICHNOTE_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1' && force[1] == '\0') return isa::scalar;
#if defined(__x86_64__)
    return __builtin_cpu_supports("avx2") ? isa::avx2 : isa::scalar;
#elif defined(__aarch64__)
    return isa::neon;
#else
    return isa::scalar;
#endif
}

/// -1 = no override; otherwise the forced isa as an int.
inline int& override_slot() noexcept {
    static int value = -1;
    return value;
}

} // namespace detail

/// The kernel the batch scorer will use. Detection (including the
/// RICHNOTE_FORCE_SCALAR read) is cached on first call.
inline isa active_isa() noexcept {
    static const isa detected = detail::detect();
    const int forced = detail::override_slot();
    return forced < 0 ? detected : static_cast<isa>(forced);
}

/// Test-only RAII override of the dispatch decision (the bit-identity
/// suites compare kernels within one process). Not synchronized: install
/// only while no other thread is scoring, and never force an isa the host
/// cannot execute.
class scoped_isa_override {
public:
    explicit scoped_isa_override(isa kind) noexcept : prev_(detail::override_slot()) {
        detail::override_slot() = static_cast<int>(kind);
    }
    ~scoped_isa_override() { detail::override_slot() = prev_; }
    scoped_isa_override(const scoped_isa_override&) = delete;
    scoped_isa_override& operator=(const scoped_isa_override&) = delete;

private:
    int prev_;
};

} // namespace richnote::ml::simd

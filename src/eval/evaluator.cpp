#include "eval/evaluator.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "core/worker_pool.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/progress.hpp"
#include "obs/trace_sink.hpp"

namespace richnote::eval {

const std::vector<std::string>& metric_names() {
    static const std::vector<std::string> names = {
        "total_utility", "precision",  "recall",    "delivery_ratio",
        "delivered_mb",  "metered_mb", "energy_kj", "mean_delay_min",
    };
    return names;
}

std::size_t metric_index(const std::string& name) {
    const auto& names = metric_names();
    const auto it = std::find(names.begin(), names.end(), name);
    if (it == names.end()) {
        std::string known;
        for (const auto& n : names) {
            if (!known.empty()) known += ", ";
            known += n;
        }
        RICHNOTE_REQUIRE(false, "unknown metric: " + name + " (known: " + known + ")");
    }
    return static_cast<std::size_t>(it - names.begin());
}

confidence_interval eval_result::objective_ci(std::size_t arm) const {
    RICHNOTE_REQUIRE(arm < arms.size(), "arm index out of range");
    return t_interval(arms[arm].metrics[metric_index(objective)], alpha);
}

namespace {

/// Per-replica metric vector in metric_names() order.
std::vector<double> extract_metrics(const core::experiment_result& r) {
    return {r.total_utility, r.precision,  r.recall,    r.delivery_ratio,
            r.delivered_mb,  r.metered_mb, r.energy_kj, r.mean_delay_min};
}

/// Exports the evaluation's running state under richnote.eval.* names.
void export_eval_metrics(const eval_result& result, const eval_params& params,
                         const sequential_stopper& stopper, std::size_t seeds_done,
                         richnote::obs::metrics_registry& registry) {
    registry.gauge_set("richnote.eval.seeds_done", static_cast<double>(seeds_done));
    registry.gauge_set("richnote.eval.seeds_total", static_cast<double>(params.seeds));
    registry.gauge_set("richnote.eval.arms_active",
                       static_cast<double>(stopper.active_count()));
    registry.gauge_set("richnote.eval.replicas_executed",
                       static_cast<double>(result.replicas_executed));
    registry.gauge_set("richnote.eval.replicas_used",
                       static_cast<double>(result.replicas_used));
    const std::size_t obj = metric_index(params.objective);
    for (std::size_t k = 0; k < result.arms.size(); ++k) {
        const arm_result& arm = result.arms[k];
        const std::string prefix = "richnote.eval.arm." + arm.name + ".";
        const welford& acc = arm.metrics[obj];
        registry.gauge_set(prefix + "samples", static_cast<double>(acc.count()));
        registry.gauge_set(prefix + "objective_mean", acc.mean());
        if (acc.count() >= 2) {
            const confidence_interval ci = t_interval(acc, params.alpha);
            registry.gauge_set(prefix + "objective_ci_lo", ci.lo);
            registry.gauge_set(prefix + "objective_ci_hi", ci.hi);
        }
        registry.gauge_set(prefix + "active", arm.retired ? 0.0 : 1.0);
    }
}

} // namespace

eval_result run_evaluation(const core::experiment_setup& setup, const eval_params& params) {
    RICHNOTE_REQUIRE(!params.arms.empty(), "evaluation needs at least one arm");
    RICHNOTE_REQUIRE(params.seeds >= 1, "evaluation needs seeds >= 1");
    RICHNOTE_REQUIRE(params.seeds_per_wave >= 1, "seeds_per_wave must be >= 1");
    RICHNOTE_REQUIRE(params.worker_threads >= 1, "worker_threads must be >= 1");
    RICHNOTE_REQUIRE(params.trace == nullptr ||
                         params.trace->user_count() >= params.arms.size(),
                     "trace sink needs one bucket per arm");
    const std::size_t obj = metric_index(params.objective);
    const std::size_t metric_count = metric_names().size();
    const auto started = std::chrono::steady_clock::now();

    eval_result result;
    result.objective = params.objective;
    result.maximize = params.maximize;
    result.alpha = params.alpha;
    result.seeds = params.seeds;
    result.base_seed = params.base_seed;
    result.min_samples = params.min_samples;
    result.arms.resize(params.arms.size());
    for (std::size_t k = 0; k < params.arms.size(); ++k) {
        RICHNOTE_REQUIRE(!params.arms[k].name.empty(), "arm name must not be empty");
        result.arms[k].name = params.arms[k].name;
        result.arms[k].metrics.resize(metric_count);
    }

    {
        std::vector<std::uint64_t> ident;
        ident.reserve(params.seeds + 1);
        ident.push_back(static_cast<std::uint64_t>(params.arms.size()));
        for (std::size_t r = 0; r < params.seeds; ++r)
            ident.push_back(params.base_seed + r);
        result.seed_set_hash = fnv1a64(ident.data(), ident.size());
    }

    sequential_stopper stopper(
        params.arms.size(),
        {params.alpha, params.min_samples, params.maximize});

    // One persistent pool for the whole evaluation; replicas themselves run
    // single-threaded so the fan-out is the only parallelism.
    core::worker_pool pool(params.worker_threads);

    // Local registry backs the progress listener when the caller gave none.
    richnote::obs::metrics_registry local_registry;
    richnote::obs::metrics_registry& registry =
        params.registry != nullptr ? *params.registry : local_registry;

    struct replica_task {
        std::size_t arm = 0;
        std::size_t seed_index = 0;
    };

    std::size_t next_seed = 0;
    while (next_seed < params.seeds) {
        const std::size_t wave =
            std::min(params.seeds_per_wave, params.seeds - next_seed);

        // Tasks for every arm still active at wave start, in (seed, arm)
        // order. Results land in task order, so the fold below never
        // depends on completion order or thread count.
        std::vector<replica_task> tasks;
        tasks.reserve(wave * stopper.active_count());
        for (std::size_t s = next_seed; s < next_seed + wave; ++s) {
            for (std::size_t k = 0; k < params.arms.size(); ++k) {
                if (stopper.active(k)) tasks.push_back({k, s});
            }
        }
        if (tasks.empty()) break; // defensive; at least the leader is active

        std::vector<std::vector<double>> replica_metrics(tasks.size());
        pool.run_tasks(tasks.size(), [&](std::size_t i) {
            core::experiment_params run = params.arms[tasks[i].arm].params;
            run.seed = params.base_seed + tasks[i].seed_index;
            if (run.faults.any()) run.faults.seed += tasks[i].seed_index;
            run.worker_threads = 1;
            run.trace = nullptr;
            run.registry = nullptr;
            run.progress = nullptr;
            run.telemetry_users.clear();
            replica_metrics[i] = extract_metrics(core::run_experiment(setup, run));
        });
        result.replicas_executed += tasks.size();

        // Sequential fold in (seed, arm) order + stopping check per seed —
        // the exact sequence a single-threaded evaluator would produce.
        std::size_t cursor = 0;
        for (std::size_t s = next_seed; s < next_seed + wave; ++s) {
            for (std::size_t k = 0; k < params.arms.size(); ++k) {
                if (cursor >= tasks.size() || tasks[cursor].seed_index != s ||
                    tasks[cursor].arm != k)
                    continue;
                const std::vector<double>& values = replica_metrics[cursor];
                ++cursor;
                if (!stopper.active(k)) continue; // retired earlier this wave: discard
                for (std::size_t m = 0; m < metric_count; ++m)
                    result.arms[k].metrics[m].add(values[m]);
                stopper.observe(k, values[obj]);
                ++result.replicas_used;
            }
            if (!params.early_stopping) continue;
            for (const auto& d : stopper.check()) {
                arm_result& arm = result.arms[d.arm];
                arm.retired = true;
                arm.retired_after = d.samples;
                arm.retired_by = d.leader;
                if (params.trace != nullptr) {
                    params.trace
                        ->event(static_cast<std::uint32_t>(d.arm),
                                static_cast<std::uint64_t>(s + 1), "eval_stop")
                        .field("arm", arm.name)
                        .field("objective", params.objective)
                        .field("samples", static_cast<std::uint64_t>(d.samples))
                        .field("mean", d.arm_mean)
                        .field("ci_lo", d.arm_ci.lo)
                        .field("ci_hi", d.arm_ci.hi)
                        .field("leader", result.arms[d.leader].name)
                        .field("leader_mean", d.leader_mean)
                        .field("leader_ci_lo", d.leader_ci.lo)
                        .field("leader_ci_hi", d.leader_ci.hi)
                        .field("alpha", params.alpha);
                }
                registry.count("richnote.eval.stops_total");
            }
        }
        next_seed += wave;

        export_eval_metrics(result, params, stopper, next_seed, registry);
        if (params.progress != nullptr) {
            richnote::obs::progress_snapshot snap;
            snap.round = next_seed;
            snap.total_rounds = params.seeds;
            snap.users = params.arms.size();
            snap.wall_sec = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - started)
                                .count();
            snap.rounds_per_sec = snap.wall_sec > 0.0
                                      ? static_cast<double>(next_seed) / snap.wall_sec
                                      : 0.0;
            snap.done = next_seed >= params.seeds;
            params.progress->on_round(snap, registry);
        }
    }

    result.leader = stopper.leader();
    for (arm_result& arm : result.arms)
        arm.samples = arm.metrics.empty() ? 0 : arm.metrics.front().count();

    // Final per-arm summary events close the trace: one line per arm with
    // its terminal statistics, in arm order at round seeds+1.
    if (params.trace != nullptr) {
        for (std::size_t k = 0; k < result.arms.size(); ++k) {
            const arm_result& arm = result.arms[k];
            const welford& acc = arm.metrics[obj];
            auto event = params.trace->event(static_cast<std::uint32_t>(k),
                                             static_cast<std::uint64_t>(params.seeds + 1),
                                             "eval_arm");
            event.field("arm", arm.name)
                .field("objective", params.objective)
                .field("samples", static_cast<std::uint64_t>(acc.count()))
                .field("mean", acc.mean())
                .field("stddev", acc.sample_stddev())
                .field("retired", arm.retired)
                .field("leader", k == result.leader);
            if (acc.count() >= 2) {
                const confidence_interval ci = t_interval(acc, params.alpha);
                event.field("ci_lo", ci.lo).field("ci_hi", ci.hi);
            }
        }
    }
    return result;
}

} // namespace richnote::eval

// Multi-seed Monte-Carlo experiment evaluator (DESIGN.md §12).
//
// The figure harnesses report single-seed point estimates; this evaluator
// makes policy comparisons defensible: it runs N seeded replicas of every
// policy arm over one shared experiment_setup, folds the per-replica
// metrics into Welford accumulators, attaches t-based confidence
// intervals, and applies a sequential early-stopping rule so an arm that
// is already statistically dominated stops burning replicas.
//
// Determinism contract (the property the tests pin):
//
//  * Replica (arm a, seed index r) runs run_experiment with
//    params.seed = base_seed + r (and, when a fault plan is armed,
//    faults.seed = fault seed + r) on ONE worker thread — parallelism
//    lives ABOVE the replicas, in waves fanned across the persistent
//    core::worker_pool.
//  * Replicas are executed in waves of `seeds_per_wave` seed indices
//    (a fixed parameter, never derived from the thread count). After each
//    wave the results are folded sequentially in (seed, arm) order and
//    the stopping rule is evaluated after each completed seed index.
//  * An arm retired at seed s discards any already-computed replicas for
//    seeds > s (they were speculative wave work), so the accumulated
//    statistics — and therefore the report bytes — are identical to a
//    fully sequential run, for ANY worker count.
//
// Observability: every stop decision is emitted to an optional
// obs::trace_sink (event type "eval_stop", bucketed by arm index) and the
// running state is exported to an optional obs::metrics_registry under
// richnote.eval.* names; an optional progress_listener receives one
// snapshot per wave, which is how `richnote evaluate expo_port=...` keeps
// /metrics and /progress live.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "eval/stats.hpp"

namespace richnote::obs {
class metrics_registry;
class progress_listener;
class trace_sink;
} // namespace richnote::obs

namespace richnote::eval {

/// One policy arm: a named experiment_params variant. The per-replica seed
/// fields (params.seed, params.faults.seed) are overwritten by the
/// evaluator; everything else is the arm's policy identity.
struct arm_spec {
    std::string name;
    core::experiment_params params;
};

struct eval_params {
    std::vector<arm_spec> arms;

    /// Monte-Carlo replicas per arm; replica r uses env seed base_seed + r.
    std::size_t seeds = 32;
    std::uint64_t base_seed = 1;

    /// Objective metric driving the stopping rule. One of the metric names
    /// reported by metric_names(); default total_utility (Fig. 4a).
    std::string objective = "total_utility";
    /// False for objectives where smaller is better (e.g. energy_kj,
    /// mean_delay_min).
    bool maximize = true;

    double alpha = 0.05;          ///< CI level for report + stopping rule
    std::size_t min_samples = 8;  ///< stopping-rule floor
    bool early_stopping = true;

    /// Replica-level parallelism: waves are fanned across a persistent
    /// worker_pool of this many threads. Output-invariant by construction.
    std::size_t worker_threads = 1;
    /// Seed indices dispatched per wave. Fixed independently of
    /// worker_threads (it bounds speculative work discarded on a stop, not
    /// the output). Must be >= 1.
    std::size_t seeds_per_wave = 4;

    // ----- optional observability (not owned; nullptr = off) -----
    richnote::obs::trace_sink* trace = nullptr;      ///< >= arms.size() buckets
    richnote::obs::metrics_registry* registry = nullptr;
    richnote::obs::progress_listener* progress = nullptr;
};

/// Names of the per-replica metrics the evaluator aggregates, in report
/// order: total_utility, precision, recall, delivery_ratio, delivered_mb,
/// metered_mb, energy_kj, mean_delay_min.
const std::vector<std::string>& metric_names();

/// Index of `name` in metric_names(); throws a named error on an unknown
/// metric (the CLI surfaces this for objective= typos).
std::size_t metric_index(const std::string& name);

struct arm_result {
    std::string name;
    /// Samples folded into the statistics (== seeds unless retired early).
    std::size_t samples = 0;
    bool retired = false;
    /// Seed index AFTER which the arm was retired (samples it held); 0 when
    /// the arm survived to the full seed budget.
    std::size_t retired_after = 0;
    /// Arm that dominated this one (valid when retired).
    std::size_t retired_by = 0;
    /// One accumulator per metric_names() entry, folded in seed order.
    std::vector<welford> metrics;
};

struct eval_result {
    std::vector<arm_result> arms; ///< in eval_params::arms order
    std::string objective;
    bool maximize = true;
    double alpha = 0.05;
    std::size_t seeds = 0;            ///< requested seed budget
    std::uint64_t base_seed = 0;
    std::size_t min_samples = 0;
    /// Replicas actually executed, including speculative wave work that a
    /// stop decision discarded. Deterministic (waves are thread-agnostic).
    std::size_t replicas_executed = 0;
    /// Replicas whose results were folded into the statistics.
    std::size_t replicas_used = 0;
    /// FNV-1a over (arm count, seed list): reports with different seed sets
    /// are not comparable, and the hash makes that checkable at a glance.
    std::uint64_t seed_set_hash = 0;
    /// Winner: active arm with the best objective mean.
    std::size_t leader = 0;

    confidence_interval objective_ci(std::size_t arm) const;
};

/// Runs the full evaluation. `setup` is shared across every arm and
/// replica (same workload, same trained model — the paper's "all schedulers
/// over the same trace" discipline); replicas vary only the environment
/// seed (network/battery randomness and, when armed, the fault schedule).
eval_result run_evaluation(const core::experiment_setup& setup, const eval_params& params);

} // namespace richnote::eval

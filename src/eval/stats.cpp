#include "eval/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace richnote::eval {

void welford::add(double value) noexcept {
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double welford::sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double welford::sample_stddev() const noexcept { return std::sqrt(sample_variance()); }

double welford::standard_error() const noexcept {
    return count_ > 1 ? sample_stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

namespace {

/// log Γ via the Lanczos approximation (g = 7, n = 9); |rel err| < 1e-13.
double log_gamma(double x) {
    static const double coeff[] = {0.99999999999980993,  676.5203681218851,
                                   -1259.1392167224028,  771.32342877765313,
                                   -176.61502916214059,  12.507343278686905,
                                   -0.13857109526572012, 9.9843695780195716e-6,
                                   1.5056327351493116e-7};
    if (x < 0.5) {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
    }
    x -= 1.0;
    double sum = coeff[0];
    for (int i = 1; i < 9; ++i) sum += coeff[i] / (x + i);
    const double t = x + 7.5;
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(sum);
}

/// Continued fraction for the incomplete beta (Lentz's method; NR idiom).
double beta_cf(double a, double b, double x) {
    constexpr int max_iter = 300;
    constexpr double eps = 1e-15;
    constexpr double tiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny) d = tiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny) d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny) c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny) d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny) c = tiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps) break;
    }
    return h;
}

} // namespace

double incomplete_beta(double a, double b, double x) {
    RICHNOTE_REQUIRE(a > 0.0 && b > 0.0, "incomplete_beta needs a, b > 0");
    RICHNOTE_REQUIRE(x >= 0.0 && x <= 1.0, "incomplete_beta needs x in [0,1]");
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;
    const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                            a * std::log(x) + b * std::log(1.0 - x);
    // Use the continued fraction on the side where it converges fast.
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return std::exp(ln_front) * beta_cf(a, b, x) / a;
    }
    return 1.0 - std::exp(ln_front) * beta_cf(b, a, 1.0 - x) / b;
}

double t_cdf(double t, double df) {
    RICHNOTE_REQUIRE(df >= 1.0, "t_cdf needs df >= 1");
    if (t == 0.0) return 0.5;
    const double x = df / (df + t * t);
    const double tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
    return t > 0.0 ? 1.0 - tail : tail;
}

double t_quantile(double p, double df) {
    RICHNOTE_REQUIRE(p > 0.0 && p < 1.0, "t_quantile needs p in (0,1)");
    RICHNOTE_REQUIRE(df >= 1.0, "t_quantile needs df >= 1");
    if (p == 0.5) return 0.0;
    // Symmetric, so solve for the upper half and mirror.
    const bool upper = p > 0.5;
    const double target = upper ? p : 1.0 - p;
    // Bracket: t = 1e6 covers any α ≥ 1e-12 at df = 1 (Cauchy tails).
    double lo = 0.0;
    double hi = 1e6;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (t_cdf(mid, df) < target) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-10 * (1.0 + hi)) break;
    }
    const double t = 0.5 * (lo + hi);
    return upper ? t : -t;
}

confidence_interval t_interval(const welford& acc, double alpha) {
    RICHNOTE_REQUIRE(alpha > 0.0 && alpha < 1.0, "t_interval needs alpha in (0,1)");
    confidence_interval ci;
    if (acc.count() < 2) {
        ci.lo = -std::numeric_limits<double>::infinity();
        ci.hi = std::numeric_limits<double>::infinity();
        ci.half_width = std::numeric_limits<double>::infinity();
        return ci;
    }
    const double df = static_cast<double>(acc.count() - 1);
    const double t = t_quantile(1.0 - 0.5 * alpha, df);
    ci.half_width = t * acc.standard_error();
    ci.lo = acc.mean() - ci.half_width;
    ci.hi = acc.mean() + ci.half_width;
    return ci;
}

sequential_stopper::sequential_stopper(std::size_t arm_count, params p)
    : params_(p), arms_(arm_count), active_count_(arm_count) {
    RICHNOTE_REQUIRE(arm_count >= 1, "sequential_stopper needs at least one arm");
    RICHNOTE_REQUIRE(p.alpha > 0.0 && p.alpha < 1.0, "alpha must be in (0,1)");
    RICHNOTE_REQUIRE(p.min_samples >= 2, "min_samples must be >= 2 (a CI needs variance)");
}

void sequential_stopper::observe(std::size_t arm, double value) {
    RICHNOTE_REQUIRE(arm < arms_.size(), "arm index out of range");
    RICHNOTE_REQUIRE(arms_[arm].active, "observe() on a retired arm");
    arms_[arm].acc.add(value);
}

bool sequential_stopper::active(std::size_t arm) const {
    RICHNOTE_REQUIRE(arm < arms_.size(), "arm index out of range");
    return arms_[arm].active;
}

const welford& sequential_stopper::accumulator(std::size_t arm) const {
    RICHNOTE_REQUIRE(arm < arms_.size(), "arm index out of range");
    return arms_[arm].acc;
}

std::size_t sequential_stopper::leader() const {
    std::size_t best = arms_.size();
    for (std::size_t k = 0; k < arms_.size(); ++k) {
        if (!arms_[k].active) continue;
        if (best == arms_.size()) {
            best = k;
            continue;
        }
        const double a = arms_[k].acc.mean();
        const double b = arms_[best].acc.mean();
        if (params_.maximize ? a > b : a < b) best = k;
    }
    RICHNOTE_CHECK(best < arms_.size(), "no active arm");
    return best;
}

std::vector<sequential_stopper::stop_decision> sequential_stopper::check() {
    std::vector<stop_decision> decisions;
    if (active_count_ < 2) return decisions;
    for (std::size_t k = 0; k < arms_.size(); ++k) {
        if (arms_[k].active && arms_[k].acc.count() < params_.min_samples) return decisions;
    }
    const std::size_t lead = leader();
    const confidence_interval lead_ci = t_interval(arms_[lead].acc, params_.alpha);
    for (std::size_t k = 0; k < arms_.size(); ++k) {
        if (k == lead || !arms_[k].active) continue;
        const confidence_interval ci = t_interval(arms_[k].acc, params_.alpha);
        // Dominated: the arm's best plausible value is strictly worse than
        // the leader's worst plausible value.
        const bool dominated = params_.maximize ? ci.hi < lead_ci.lo : ci.lo > lead_ci.hi;
        if (!dominated) continue;
        arms_[k].active = false;
        --active_count_;
        stop_decision d;
        d.arm = k;
        d.leader = lead;
        d.samples = arms_[k].acc.count();
        d.arm_ci = ci;
        d.leader_ci = lead_ci;
        d.arm_mean = arms_[k].acc.mean();
        d.leader_mean = arms_[lead].acc.mean();
        decisions.push_back(d);
    }
    return decisions;
}

std::uint64_t fnv1a64(const std::uint64_t* values, std::size_t count) noexcept {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t v = values[i];
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= v & 0xffULL;
            hash *= 0x100000001b3ULL;
            v >>= 8;
        }
    }
    return hash;
}

std::string hex64(std::uint64_t value) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
    return std::string(buf, 16);
}

} // namespace richnote::eval

// Byte-deterministic evaluation reports (DESIGN.md §12).
//
// Two export formats for one eval_result: a JSON document (schema
// "richnote-eval-v1") and a flat CSV. Both are pure functions of the
// eval_result — doubles are rendered with the observability layer's %.17g
// convention, keys and rows follow fixed orders (arms in spec order,
// metrics in metric_names() order) and nothing wall-clock-dependent is
// written — so a fixed (setup, eval_params) pair produces byte-identical
// reports for any worker count, on any rerun. Timings belong in the run
// manifest, which manifest_diff already knows to treat as jitter.
#pragma once

#include <iosfwd>
#include <string>

#include "eval/evaluator.hpp"

namespace richnote::eval {

struct report_options {
    /// Scenario-pack name echoed into the report ("" = ad-hoc arms).
    std::string scenario;
};

/// JSON document: run identity (objective, alpha, seed budget, seed-set
/// hash), totals, the leader, and per-arm per-metric statistics
/// {samples, mean, stddev, ci_lo, ci_hi, min, max}. CIs of arms with fewer
/// than two samples are emitted as null.
void write_eval_json(const eval_result& result, const report_options& opts,
                     std::ostream& out);

/// Flat CSV: scenario,arm,metric,samples,mean,stddev,ci_lo,ci_hi,min,max —
/// one row per (arm, metric), plus a leading comment-free header row.
void write_eval_csv(const eval_result& result, const report_options& opts,
                    std::ostream& out);

} // namespace richnote::eval

// First-class named scenario packs for the Monte-Carlo evaluator
// (DESIGN.md §12). A pack bundles the three things a reproducible policy
// A/B needs: the workload/model setup options, the shared experiment
// baseline, and the default policy arms to race. `richnote evaluate
// scenario=<name>` resolves one of these; the name is part of the report,
// so two reports are comparable only when they stressed the same world.
//
//   baseline        — the paper's §V-C setting (sanity anchor).
//   flash_crowd     — diurnal flash crowd: evening listening surges to ~4x
//                     the daytime rate and notification fan-out doubles, so
//                     the weekly budget collides with a nightly burst.
//   regional_outage — correlated regional network outages via
//                     faults::fault_plan (regions lose their links
//                     together), plus flaky partial transfers; stresses
//                     resume/retry under synchronized backlog drains.
//   battery_trace   — replays per-user timestamped battery-status traces
//                     (experiment_params::battery_traces), the paper's
//                     actual input mode, instead of the closed-loop model.
//   cold_start      — cold-start cohort: the "richnote_online" arm ignores
//                     the offline-trained model and learns content utility
//                     during the run from delivery feedback, racing the
//                     pretrained arm and the UTIL baseline.
#pragma once

#include <string>
#include <vector>

#include "eval/evaluator.hpp"

namespace richnote::eval {

/// Caller-side knobs every pack scales to: fleet size, setup seed, forest
/// size and the weekly data budget the arms compete under.
struct scenario_request {
    std::size_t users = 200;
    std::uint64_t setup_seed = 1;
    std::size_t trees = 30;
    double budget_mb = 10.0;
};

struct scenario_pack {
    std::string name;
    std::string description;
    core::experiment_setup::options setup; ///< workload + model options
    std::vector<arm_spec> arms;            ///< default policy arms
};

/// All known pack names, in presentation order.
const std::vector<std::string>& scenario_names();

/// Resolves a pack by name; throws a named error listing the valid names
/// on an unknown scenario (surfaced verbatim by the CLI).
scenario_pack make_scenario(const std::string& name, const scenario_request& req);

} // namespace richnote::eval

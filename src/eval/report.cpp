#include "eval/report.hpp"

#include <cmath>
#include <ostream>

#include "obs/json_util.hpp"

namespace richnote::eval {

namespace {

using richnote::obs::json_number;
using richnote::obs::json_string;

std::string num(double v) {
    std::string s;
    json_number(s, v);
    return s;
}

std::string str(std::string_view v) {
    std::string s;
    json_string(s, v);
    return s;
}

/// CSV cell for a double: %.17g, empty for non-finite (no CSV convention
/// for infinities; an empty cell is unambiguous and diff-stable).
std::string csv_num(double v) {
    if (!std::isfinite(v)) return std::string();
    return num(v);
}

void write_metric_json(const welford& acc, const confidence_interval& ci,
                       std::ostream& out) {
    out << "{\"samples\":" << acc.count() << ",\"mean\":" << num(acc.mean())
        << ",\"stddev\":" << num(acc.sample_stddev());
    if (acc.count() >= 2) {
        out << ",\"ci_lo\":" << num(ci.lo) << ",\"ci_hi\":" << num(ci.hi);
    } else {
        out << ",\"ci_lo\":null,\"ci_hi\":null";
    }
    out << ",\"min\":" << num(acc.min()) << ",\"max\":" << num(acc.max()) << "}";
}

} // namespace

void write_eval_json(const eval_result& result, const report_options& opts,
                     std::ostream& out) {
    out << "{\n"
        << "  \"schema\": \"richnote-eval-v1\",\n"
        << "  \"scenario\": " << str(opts.scenario) << ",\n"
        << "  \"objective\": " << str(result.objective) << ",\n"
        << "  \"maximize\": " << (result.maximize ? "true" : "false") << ",\n"
        << "  \"alpha\": " << num(result.alpha) << ",\n"
        << "  \"seeds\": " << result.seeds << ",\n"
        << "  \"base_seed\": " << result.base_seed << ",\n"
        << "  \"min_samples\": " << result.min_samples << ",\n"
        << "  \"seed_set_hash\": " << str(hex64(result.seed_set_hash)) << ",\n"
        << "  \"replicas_executed\": " << result.replicas_executed << ",\n"
        << "  \"replicas_used\": " << result.replicas_used << ",\n"
        << "  \"leader\": " << str(result.arms[result.leader].name) << ",\n"
        << "  \"arms\": [\n";
    for (std::size_t k = 0; k < result.arms.size(); ++k) {
        const arm_result& arm = result.arms[k];
        out << "    {\"name\": " << str(arm.name)
            << ", \"retired\": " << (arm.retired ? "true" : "false")
            << ", \"retired_after\": " << arm.retired_after << ", \"retired_by\": "
            << (arm.retired ? str(result.arms[arm.retired_by].name) : "null")
            << ", \"metrics\": {";
        const auto& names = metric_names();
        for (std::size_t m = 0; m < names.size(); ++m) {
            if (m > 0) out << ", ";
            const welford& acc = arm.metrics[m];
            out << str(names[m]) << ": ";
            write_metric_json(acc, t_interval(acc, result.alpha), out);
        }
        out << "}}" << (k + 1 < result.arms.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

void write_eval_csv(const eval_result& result, const report_options& opts,
                    std::ostream& out) {
    out << "scenario,arm,metric,samples,mean,stddev,ci_lo,ci_hi,min,max\n";
    for (const arm_result& arm : result.arms) {
        const auto& names = metric_names();
        for (std::size_t m = 0; m < names.size(); ++m) {
            const welford& acc = arm.metrics[m];
            const confidence_interval ci = t_interval(acc, result.alpha);
            out << opts.scenario << ',' << arm.name << ',' << names[m] << ','
                << acc.count() << ',' << csv_num(acc.mean()) << ','
                << csv_num(acc.sample_stddev()) << ',' << csv_num(ci.lo) << ','
                << csv_num(ci.hi) << ',' << csv_num(acc.min()) << ','
                << csv_num(acc.max()) << '\n';
        }
    }
}

} // namespace richnote::eval

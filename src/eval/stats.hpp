// Statistical core of the Monte-Carlo evaluation harness (DESIGN.md §12).
//
// Three pieces, deliberately separable from the experiment machinery so the
// estimator and the stopping rule can be property-tested on synthetic
// streams without running a single simulation:
//
//  * welford            — numerically stable streaming mean / SAMPLE
//                         variance (the CI needs s², not the population
//                         variance common::running_stats reports).
//  * t_quantile         — Student-t inverse CDF, evaluated by bisection on
//                         the regularized incomplete beta function. Cold
//                         path (once per CI), so robustness beats speed.
//  * sequential_stopper — the early-stopping rule: after every completed
//                         seed, an arm whose (1-α) confidence interval lies
//                         strictly below the current leader's is
//                         statistically dominated and retired. A
//                         min-samples floor guards the rule against
//                         degenerate early CIs.
//
// Everything here is a pure function of its inputs — no clocks, no global
// RNG — which is what lets the evaluator promise byte-identical reports
// for any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace richnote::eval {

/// Streaming mean / sample variance (Welford). Fold order is part of the
/// contract: the evaluator always folds replicas in ascending seed order,
/// so two runs that saw the same samples produce bit-identical moments.
class welford {
public:
    void add(double value) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return count_ ? mean_ : 0.0; }
    /// Unbiased sample variance s² = M2/(n-1); 0 for fewer than two samples.
    double sample_variance() const noexcept;
    double sample_stddev() const noexcept;
    /// Standard error of the mean, s/sqrt(n); 0 for fewer than two samples.
    double standard_error() const noexcept;
    double min() const noexcept { return count_ ? min_ : 0.0; }
    double max() const noexcept { return count_ ? max_ : 0.0; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Regularized incomplete beta function I_x(a, b) via the standard
/// Lentz continued-fraction evaluation; |error| < 1e-12 over the domain
/// the t CDF uses. Exposed for tests.
double incomplete_beta(double a, double b, double x);

/// Student-t CDF with `df` degrees of freedom.
double t_cdf(double t, double df);

/// Student-t quantile: the t with CDF(t) = p. `p` in (0, 1), df >= 1.
/// Bisection to ~1e-10 absolute — exact enough that the CI bytes are a
/// stable function of (p, df) across platforms.
double t_quantile(double p, double df);

/// Two-sided t confidence interval around a welford mean.
struct confidence_interval {
    double lo = 0.0;
    double hi = 0.0;
    double half_width = 0.0;
};

/// mean ± t_{1-α/2, n-1} · s/√n. For n < 2 the interval is the whole real
/// line in spirit; we return ±infinity half-width so no stopping rule can
/// ever trigger on it.
confidence_interval t_interval(const welford& acc, double alpha);

/// Sequential early-stopping rule over K policy arms (MAGPIE-simmer style
/// statistical cutoff). Feed one sample per (arm, seed) in seed order via
/// observe(); after each completed seed call check(): any active arm whose
/// CI upper bound falls strictly below the leader's CI lower bound is
/// dominated at level α and retired. The leader (highest mean, ties to the
/// lowest arm index) is never retired, and nothing is retired before every
/// active arm holds at least `min_samples` samples.
class sequential_stopper {
public:
    struct params {
        double alpha = 0.05;         ///< per-comparison significance level
        std::size_t min_samples = 8; ///< floor before any retirement
        bool maximize = true;        ///< false: lower objective is better
    };

    struct stop_decision {
        std::size_t arm = 0;          ///< retired arm index
        std::size_t leader = 0;       ///< arm that dominated it
        std::size_t samples = 0;      ///< samples the arm held when retired
        confidence_interval arm_ci;   ///< at level alpha
        confidence_interval leader_ci;
        double arm_mean = 0.0;
        double leader_mean = 0.0;
    };

    sequential_stopper(std::size_t arm_count, params p);

    /// Folds one objective sample for `arm`. Throws if the arm is retired
    /// (the evaluator must not feed dead arms).
    void observe(std::size_t arm, double value);

    /// Applies the stopping rule once; returns the decisions made (possibly
    /// several arms retire on the same seed). Stable across calls: arms are
    /// scanned in index order.
    std::vector<stop_decision> check();

    std::size_t arm_count() const noexcept { return arms_.size(); }
    bool active(std::size_t arm) const;
    std::size_t active_count() const noexcept { return active_count_; }
    /// Index of the current leader among active arms.
    std::size_t leader() const;
    const welford& accumulator(std::size_t arm) const;
    const params& options() const noexcept { return params_; }

private:
    struct arm_state {
        welford acc;
        bool active = true;
    };

    params params_;
    std::vector<arm_state> arms_;
    std::size_t active_count_ = 0;
};

/// FNV-1a 64 over a little-endian byte view of the values — the seed-set
/// hash stamped into evaluation reports and manifests so two reports are
/// comparable only when they averaged the same replicas.
std::uint64_t fnv1a64(const std::uint64_t* values, std::size_t count) noexcept;

/// Lower-case hex string of a 64-bit hash (fixed 16 chars).
std::string hex64(std::uint64_t value);

} // namespace richnote::eval

#include "eval/scenario.hpp"

#include "common/error.hpp"

namespace richnote::eval {

namespace {

core::experiment_params base_params(const scenario_request& req) {
    core::experiment_params params;
    params.weekly_budget_mb = req.budget_mb;
    params.fixed_level = 3;
    return params;
}

arm_spec make_arm(std::string name, core::scheduler_kind kind,
                  const core::experiment_params& base) {
    arm_spec arm;
    arm.name = std::move(name);
    arm.params = base;
    arm.params.kind = kind;
    return arm;
}

/// The standard three-way race the paper's figures use.
std::vector<arm_spec> standard_arms(const core::experiment_params& base) {
    return {make_arm("richnote", core::scheduler_kind::richnote, base),
            make_arm("fifo", core::scheduler_kind::fifo, base),
            make_arm("util", core::scheduler_kind::util, base)};
}

} // namespace

const std::vector<std::string>& scenario_names() {
    static const std::vector<std::string> names = {
        "baseline", "flash_crowd", "regional_outage", "battery_trace", "cold_start",
    };
    return names;
}

scenario_pack make_scenario(const std::string& name, const scenario_request& req) {
    scenario_pack pack;
    pack.name = name;
    pack.setup.workload.user_count = req.users;
    pack.setup.seed = req.setup_seed;
    pack.setup.forest.tree_count = req.trees;
    core::experiment_params base = base_params(req);

    if (name == "baseline") {
        pack.description = "paper §V-C setting: default diurnal workload, no faults";
        pack.arms = standard_arms(base);
        return pack;
    }
    if (name == "flash_crowd") {
        // Evening listening surges to ~4x daytime and fan-out doubles: the
        // nightly burst alone outweighs the whole weekly budget, so level
        // adaptation (not just ordering) decides the race.
        pack.description =
            "diurnal flash crowd: 4x evening surge, doubled notification fan-out";
        pack.setup.workload.evening_activity = 4.0;
        pack.setup.workload.night_activity = 0.2;
        pack.setup.workload.notify_probability = 0.2;
        pack.setup.workload.mean_listens_per_day = 16.0;
        pack.arms = standard_arms(base);
        return pack;
    }
    if (name == "regional_outage") {
        // Whole regions lose their links together (plus flaky partial
        // transfers), so backlogs build and drain in synchronized herds.
        pack.description =
            "correlated regional network outages + flaky links (faults::fault_plan)";
        faults::fault_plan_params fp;
        fp.seed = 11;
        fp.regional_outage_prob = 0.03;
        fp.regions = 8;
        fp.regional_outage_rounds = 6;
        fp.partial_transfer_prob = 0.05;
        base.faults = fp;
        base.retry.max_attempts = 8;
        base.retry.backoff_base_sec = 0.0;
        pack.arms = standard_arms(base);
        return pack;
    }
    if (name == "battery_trace") {
        // The paper's real input mode: per-user timestamped battery-status
        // traces replayed open-loop (download load does not feed back).
        pack.description = "per-user battery-status trace replay (paper input mode)";
        base.battery_traces = true;
        pack.arms = standard_arms(base);
        return pack;
    }
    if (name == "cold_start") {
        // Cold-start cohort: can a policy that learns U_c from its own
        // delivery feedback catch the pretrained model within a week?
        pack.description =
            "cold-start cohort: online-learned content utility vs pretrained vs UTIL";
        core::experiment_params online = base;
        online.online_learning = true;
        pack.arms = {make_arm("richnote_online", core::scheduler_kind::richnote, online),
                     make_arm("richnote", core::scheduler_kind::richnote, base),
                     make_arm("util", core::scheduler_kind::util, base)};
        return pack;
    }

    std::string known;
    for (const auto& n : scenario_names()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    RICHNOTE_REQUIRE(false, "unknown scenario: " + name + " (known: " + known + ")");
    return pack; // unreachable
}

} // namespace richnote::eval

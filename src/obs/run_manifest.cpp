#include "obs/run_manifest.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/build_info.hpp"
#include "obs/json_util.hpp"

namespace richnote::obs {

run_manifest::run_manifest(std::string tool)
    : tool_(std::move(tool)),
      git_describe_(build_info::git_describe),
      build_type_(build_info::build_type),
      compiler_(build_info::compiler) {}

void run_manifest::add_config(std::string_view key, std::string_view value) {
    config_.emplace_back(std::string(key), std::string(value));
}

void run_manifest::add_config(std::string_view key, std::uint64_t value) {
    std::string s;
    json_number(s, value);
    config_.emplace_back(std::string(key), std::move(s));
}

void run_manifest::add_config(std::string_view key, double value) {
    std::string s;
    json_number(s, value);
    config_.emplace_back(std::string(key), std::move(s));
}

void run_manifest::add_timing(std::string_view name, double value) {
    timings_.emplace_back(std::string(name), value);
}

void run_manifest::set_build(std::string git_describe, std::string build_type,
                             std::string compiler) {
    git_describe_ = std::move(git_describe);
    build_type_ = std::move(build_type);
    compiler_ = std::move(compiler);
}

void run_manifest::write_json(std::ostream& out) const {
    std::string buf = "{\n  \"schema\": \"richnote-manifest-v1\",\n  \"tool\": ";
    json_string(buf, tool_);
    buf += ",\n  \"seed\": ";
    json_number(buf, seed_);
    buf += ",\n  \"build\": {\"git_describe\": ";
    json_string(buf, git_describe_);
    buf += ", \"build_type\": ";
    json_string(buf, build_type_);
    buf += ", \"compiler\": ";
    json_string(buf, compiler_);
    buf += "},\n  \"config\": {";
    bool first = true;
    for (const auto& [key, value] : config_) {
        buf += first ? "\n    " : ",\n    ";
        first = false;
        json_string(buf, key);
        buf += ": ";
        json_string(buf, value);
    }
    buf += first ? "},\n" : "\n  },\n";
    buf += "  \"timings\": {";
    first = true;
    for (const auto& [name, value] : timings_) {
        buf += first ? "\n    " : ",\n    ";
        first = false;
        json_string(buf, name);
        buf += ": ";
        json_number(buf, value);
    }
    buf += first ? "}\n" : "\n  }\n";
    buf += "}\n";
    out << buf;
}

void run_manifest::write_file(const std::string& path) const {
    std::ofstream out(path);
    RICHNOTE_REQUIRE(out.good(), "cannot open manifest file: " + path);
    write_json(out);
    RICHNOTE_REQUIRE(out.good(), "failed writing manifest file: " + path);
}

} // namespace richnote::obs

#include "obs/trace_sink.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace richnote::obs {

trace_event::trace_event(trace_sink& sink, std::uint32_t user, std::uint64_t round,
                         std::string_view type)
    : sink_(&sink), user_(user), round_(round) {
    line_ += "{\"type\":";
    json_string(line_, type);
    line_ += ",\"user\":";
    json_number(line_, static_cast<std::uint64_t>(user));
    line_ += ",\"round\":";
    json_number(line_, round);
}

trace_event::trace_event(trace_event&& other) noexcept
    : sink_(other.sink_),
      user_(other.user_),
      round_(other.round_),
      line_(std::move(other.line_)) {
    other.sink_ = nullptr;
}

trace_event::~trace_event() {
    if (sink_ == nullptr) return;
    line_ += '}';
    sink_->store(user_, round_, std::move(line_));
}

trace_sink::trace_sink(std::size_t user_count) : buckets_(user_count) {
    RICHNOTE_REQUIRE(user_count > 0, "trace sink needs at least one user bucket");
}

trace_event trace_sink::event(std::uint32_t user, std::uint64_t round,
                              std::string_view type) {
    RICHNOTE_REQUIRE(user < buckets_.size(), "trace event for an unknown user");
    return trace_event(*this, user, round, type);
}

void trace_sink::store(std::uint32_t user, std::uint64_t round, std::string line) {
    auto& bucket = buckets_[user];
    stored_event ev;
    ev.round = round;
    ev.seq = static_cast<std::uint32_t>(bucket.size());
    ev.json = std::move(line);
    bucket.push_back(std::move(ev));
}

const std::vector<trace_sink::stored_event>& trace_sink::events_of(
    std::uint32_t user) const {
    RICHNOTE_REQUIRE(user < buckets_.size(), "unknown user");
    return buckets_[user];
}

std::size_t trace_sink::event_count() const noexcept {
    std::size_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.size();
    return total;
}

void trace_sink::write_ndjson(std::ostream& out) const {
    // Merge the per-user buckets by (round, user, seq). Each bucket is
    // already round-ordered (a user's rounds are emitted in order), so a
    // global sort of lightweight keys is simple and deterministic.
    struct key {
        std::uint64_t round;
        std::uint32_t user;
        std::uint32_t seq;
    };
    std::vector<key> keys;
    keys.reserve(event_count());
    for (std::uint32_t u = 0; u < buckets_.size(); ++u) {
        for (const stored_event& ev : buckets_[u]) keys.push_back({ev.round, u, ev.seq});
    }
    std::sort(keys.begin(), keys.end(), [](const key& a, const key& b) {
        if (a.round != b.round) return a.round < b.round;
        if (a.user != b.user) return a.user < b.user;
        return a.seq < b.seq;
    });
    for (const key& k : keys) out << buckets_[k.user][k.seq].json << '\n';
}

} // namespace richnote::obs

#include "obs/trace_sink.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

#include "common/error.hpp"

namespace richnote::obs {

namespace {

// Process-wide registry of sinks with an attached file, flushed from an
// atexit handler so an exit() mid-sweep (e.g. a CLI error path) still
// leaves everything emitted so far on disk. Destruction unregisters, so
// the normal path never double-finalizes.
std::mutex g_guard_mutex;
std::vector<trace_sink*>& guarded_sinks() {
    static std::vector<trace_sink*> sinks;
    return sinks;
}

void flush_guarded_sinks() {
    std::vector<trace_sink*> snapshot;
    {
        std::lock_guard<std::mutex> lock(g_guard_mutex);
        snapshot = guarded_sinks();
    }
    for (trace_sink* sink : snapshot) sink->finalize();
}

void guard_register(trace_sink* sink) {
    std::lock_guard<std::mutex> lock(g_guard_mutex);
    // Construct the registry vector BEFORE registering the atexit handler:
    // exit-time teardown runs in reverse order, so the handler must come
    // later than anything it touches or it would read a destroyed vector.
    auto& sinks = guarded_sinks();
    static bool atexit_installed = [] {
        std::atexit(flush_guarded_sinks);
        return true;
    }();
    (void)atexit_installed;
    sinks.push_back(sink);
}

void guard_unregister(trace_sink* sink) noexcept {
    std::lock_guard<std::mutex> lock(g_guard_mutex);
    auto& sinks = guarded_sinks();
    sinks.erase(std::remove(sinks.begin(), sinks.end(), sink), sinks.end());
}

} // namespace

trace_event::trace_event(trace_sink& sink, std::uint32_t user, std::uint64_t round,
                         std::string_view type)
    : sink_(&sink), user_(user), round_(round) {
    line_ += "{\"type\":";
    json_string(line_, type);
    line_ += ",\"user\":";
    json_number(line_, static_cast<std::uint64_t>(user));
    line_ += ",\"round\":";
    json_number(line_, round);
}

trace_event::trace_event(trace_event&& other) noexcept
    : sink_(other.sink_),
      user_(other.user_),
      round_(other.round_),
      line_(std::move(other.line_)) {
    other.sink_ = nullptr;
}

trace_event::~trace_event() {
    if (sink_ == nullptr) return;
    line_ += '}';
    sink_->store(user_, round_, std::move(line_));
}

trace_sink::trace_sink(std::size_t user_count) : buckets_(user_count) {
    RICHNOTE_REQUIRE(user_count > 0, "trace sink needs at least one user bucket");
}

trace_sink::~trace_sink() {
    if (streaming()) finalize();
}

trace_event trace_sink::event(std::uint32_t user, std::uint64_t round,
                              std::string_view type) {
    RICHNOTE_REQUIRE(user < buckets_.size(), "trace event for an unknown user");
    return trace_event(*this, user, round, type);
}

void trace_sink::store(std::uint32_t user, std::uint64_t round, std::string line) {
    auto& bucket = buckets_[user];
    stored_event ev;
    ev.round = round;
    ev.seq = static_cast<std::uint32_t>(bucket.size());
    ev.json = std::move(line);
    bucket.push_back(std::move(ev));
}

const std::vector<trace_sink::stored_event>& trace_sink::events_of(
    std::uint32_t user) const {
    RICHNOTE_REQUIRE(user < buckets_.size(), "unknown user");
    return buckets_[user];
}

std::size_t trace_sink::event_count() const noexcept {
    std::size_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.size();
    return total;
}

void trace_sink::write_ndjson(std::ostream& out) const {
    // Merge the per-user buckets by (round, user, seq). Each bucket is
    // already round-ordered (a user's rounds are emitted in order), so a
    // global sort of lightweight keys is simple and deterministic.
    struct key {
        std::uint64_t round;
        std::uint32_t user;
        std::uint32_t seq;
    };
    std::vector<key> keys;
    keys.reserve(event_count());
    for (std::uint32_t u = 0; u < buckets_.size(); ++u) {
        for (const stored_event& ev : buckets_[u]) keys.push_back({ev.round, u, ev.seq});
    }
    std::sort(keys.begin(), keys.end(), [](const key& a, const key& b) {
        if (a.round != b.round) return a.round < b.round;
        if (a.user != b.user) return a.user < b.user;
        return a.seq < b.seq;
    });
    for (const key& k : keys) out << buckets_[k.user][k.seq].json << '\n';
}

void trace_sink::attach_file(const std::string& path) {
    RICHNOTE_REQUIRE(out_ == nullptr, "trace sink already streaming to a file");
    auto stream = std::make_unique<std::ofstream>(path, std::ios::trunc);
    RICHNOTE_REQUIRE(stream->is_open(),
                     "trace sink cannot open trace file: " + path);
    out_ = std::move(stream);
    written_.assign(buckets_.size(), 0);
    guard_register(this);
}

void trace_sink::flush_through(std::uint64_t round) {
    if (out_ == nullptr) return;
    // Same merge order as write_ndjson, restricted to the not-yet-written
    // suffix of each bucket with event.round <= round. Emission for those
    // rounds has finished by contract, so the cut is stable: later flushes
    // only ever append events with strictly greater rounds.
    struct key {
        std::uint64_t round;
        std::uint32_t user;
        std::uint32_t seq;
    };
    std::vector<key> keys;
    for (std::uint32_t u = 0; u < buckets_.size(); ++u) {
        const auto& bucket = buckets_[u];
        std::size_t next = written_[u];
        while (next < bucket.size() && bucket[next].round <= round) {
            keys.push_back({bucket[next].round, u, bucket[next].seq});
            ++next;
        }
        written_[u] = next;
    }
    std::sort(keys.begin(), keys.end(), [](const key& a, const key& b) {
        if (a.round != b.round) return a.round < b.round;
        if (a.user != b.user) return a.user < b.user;
        return a.seq < b.seq;
    });
    for (const key& k : keys) *out_ << buckets_[k.user][k.seq].json << '\n';
    out_->flush();
}

void trace_sink::finalize() {
    if (out_ == nullptr) return;
    flush_through(UINT64_MAX);
    out_->close();
    out_.reset();
    guard_unregister(this);
}

} // namespace richnote::obs

// Deterministic JSON fragment formatting shared by the observability
// layer (trace_sink NDJSON, metrics_registry / run_manifest exporters).
//
// Determinism is the design constraint: the same double value must always
// produce the same bytes, so a fixed-seed run emits a byte-identical event
// stream no matter when or on how many worker threads it executes. %.17g
// round-trips every finite double exactly and is locale-independent via
// snprintf with the "C" numeric formatting of the printf family.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace richnote::obs {

/// Appends `s` JSON-escaped (quotes, backslash, control characters).
inline void json_escape(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

/// Appends a quoted, escaped JSON string.
inline void json_string(std::string& out, std::string_view s) {
    out += '"';
    json_escape(out, s);
    out += '"';
}

/// Appends a double as a deterministic JSON number. Non-finite values have
/// no JSON representation; they are emitted as null so a stray NaN cannot
/// silently corrupt the stream (the schema validator flags it).
inline void json_number(std::string& out, double v) {
    if (v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

inline void json_number(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

inline void json_number(std::string& out, std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out += buf;
}

} // namespace richnote::obs

// Offline analysis of decision-trace NDJSON (DESIGN.md §10).
//
// `richnote_cli trace-report` feeds a trace file (DESIGN.md §9 schema)
// through build_trace_report() and prints the result: per-event-type
// counts, percentile tables over every numeric field each type carries
// (delay_sec / utility / bytes / attempts / ...), and a top-N per-user
// rollup. The report is a pure function of the file bytes, and the trace
// of a fixed-seed run is byte-identical across reruns and thread counts,
// so the report is too — the CLI pipeline test pins that.
//
// The parser accepts exactly what trace_sink emits: one flat JSON object
// per line, string/number/bool values, no nesting. A truncated final line
// (a run killed mid-write) is skipped, not an error, so the report works
// on crash-recovered prefixes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace richnote::obs {

/// One parsed scalar off an NDJSON line.
struct trace_value {
    enum class kind { string, number, boolean } type = kind::number;
    std::string str;
    double num = 0.0;
    bool flag = false;
};

/// Parses one flat JSON object line into (key, value) pairs in document
/// order. Returns false on malformed input (e.g. a truncated line).
bool parse_flat_json(std::string_view line,
                     std::vector<std::pair<std::string, trace_value>>& out);

/// Exact sample percentiles (nearest-rank) over one numeric field.
struct field_stats {
    std::uint64_t count = 0;
    double min = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0, mean = 0.0;
};

struct event_type_stats {
    std::uint64_t count = 0;
    std::map<std::string, field_stats> fields; ///< numeric fields only
};

struct user_rollup {
    std::uint32_t user = 0;
    std::uint64_t events = 0;
    std::uint64_t delivers = 0;
    double utility = 0.0;    ///< summed over this user's deliver events
    double delay_sec = 0.0;  ///< mean delivery delay (0 when no delivers)
};

struct trace_report {
    std::uint64_t total_events = 0;
    std::uint64_t skipped_lines = 0; ///< malformed/truncated lines ignored
    std::uint64_t rounds = 0;        ///< max round seen + 1
    std::uint64_t users = 0;         ///< distinct users seen
    std::map<std::string, event_type_stats> by_type;
    std::vector<user_rollup> top_users; ///< by events desc, user asc
};

/// Aggregates an NDJSON stream. `top_n` caps the per-user rollup table.
trace_report build_trace_report(std::istream& ndjson, std::size_t top_n = 10);

/// Renders the report as aligned text tables.
void write_trace_report(const trace_report& report, std::ostream& out);

} // namespace richnote::obs

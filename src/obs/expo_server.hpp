// Embedded, dependency-free HTTP exposition + ingest server (DESIGN.md
// §10/§11).
//
// Read side (unchanged contract): three read-only documents over HTTP/1.1,
// so a multi-hour sweep — or a long-lived `richnote serve` — can be watched
// while it runs:
//
//   GET /metrics   Prometheus text rendering of the last published
//                  metrics_registry (obs/prom_text.hpp)
//   GET /progress  JSON progress_snapshot refreshed each broker round
//   GET /healthz   {"status":"ok",...} liveness probe
//
// Write side: POST handlers registered per path (richnote serve mounts its
// NDJSON ingest at POST /ingest). The server stays type-agnostic — a
// handler takes the raw body string and returns (status, body), so obs
// keeps linking only richnote_common and the service types never leak in.
//
// Connections are handled by a small pool of handler threads fed from an
// accepted-fd queue, so a slow or stalled client never blocks other
// scrapers or the ingest stream. Requests are bounded end to end:
//   - request head capped (8 KB) ............ 400 Bad Request
//   - POST without Content-Length ........... 411 Length Required
//   - body above max_body_bytes ............. 413 Payload Too Large
//   - per-socket recv timeout ............... connection dropped
//
// Publication and serving are decoupled: publish_* renders the document
// into a string under a mutex; handler threads only ever copy the latest
// strings, so a slow scraper never blocks the round loop and the round
// loop never blocks a scrape for longer than one string swap.
//
// The server binds 127.0.0.1 (scrapes are expected from the same host or
// via a forwarder) and supports port 0 for an ephemeral port — tests bind
// 0 and read the chosen port back with port(). Implemented on plain POSIX
// sockets; no third-party dependency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/progress.hpp"

namespace richnote::obs {

class metrics_registry;

class expo_server final : public progress_listener {
public:
    /// A POST handler's verdict: HTTP status code plus response body
    /// (served as application/json).
    struct post_result {
        int status = 200;
        std::string body;
    };
    using post_handler = std::function<post_result(const std::string& body)>;

    /// Binds and starts serving immediately; throws on bind failure.
    /// `port` 0 picks an ephemeral port (see port()). `handler_threads`
    /// sizes the connection-handling pool (>= 1).
    explicit expo_server(std::uint16_t port, std::size_t handler_threads = 4);
    ~expo_server() override;

    expo_server(const expo_server&) = delete;
    expo_server& operator=(const expo_server&) = delete;

    /// The actually bound port (== constructor arg unless that was 0).
    std::uint16_t port() const noexcept { return port_; }

    /// Mounts `fn` at `POST <path>` (replacing any previous handler). The
    /// handler runs on a connection-handler thread and must be safe to call
    /// from several of them concurrently.
    void set_post_handler(const std::string& path, post_handler fn);

    /// Largest accepted POST body; anything bigger gets 413. Applies to
    /// requests that arrive after the call.
    void set_max_body_bytes(std::size_t bytes);

    /// Renders and installs a new /metrics document (Prometheus text).
    /// Quantile summary gauges are derived from the registry's histograms
    /// on a copy, so the caller's registry is not mutated.
    void publish_metrics(const metrics_registry& registry);

    /// Renders and installs a new /progress document.
    void publish_progress(const progress_snapshot& p);

    /// Installs (or replaces) an extra read-only document served at
    /// `GET <path>` — `richnote serve` mounts its slow-exemplar timelines
    /// at /exemplars this way. The path joins the 404 listing. Built-in
    /// paths (/metrics, /progress, /healthz) cannot be shadowed.
    void publish_document(const std::string& path, const std::string& content_type,
                          std::string body);

    /// Records the dispatch microarchitecture reported by /healthz (the
    /// server itself cannot see ml::simd — obs links only richnote_common,
    /// so the embedding tool passes the resolved name in).
    void set_uarch(std::string uarch);

    /// progress_listener: refresh both documents from the live run.
    void on_round(const progress_snapshot& p, const metrics_registry& live) override;

    /// Requests served so far (all paths, including 404s) — test hook.
    std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Stops the accept loop, drains the handler pool and joins every
    /// thread (idempotent; the destructor calls it).
    void stop();

private:
    void accept_loop();
    void handler_loop();
    void handle_connection(int fd);
    std::string respond_get(const std::string& path) const;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic_bool stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::size_t> max_body_bytes_{1 << 20};

    mutable std::mutex content_mutex_;
    std::string metrics_text_;  ///< latest Prometheus document
    std::string progress_json_; ///< latest progress document
    std::string uarch_ = "unknown"; ///< /healthz uarch field
    /// Extra GET documents: path -> (content type, body).
    std::map<std::string, std::pair<std::string, std::string>> documents_;

    mutable std::mutex handlers_mutex_;
    std::map<std::string, post_handler> post_handlers_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_fds_;

    std::thread accept_thread_;
    std::vector<std::thread> handler_threads_;
};

} // namespace richnote::obs

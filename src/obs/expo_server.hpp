// Embedded, dependency-free HTTP exposition server (DESIGN.md §10).
//
// Serves three read-only documents over HTTP/1.1 from a single background
// thread, so a multi-hour sweep can be watched while it runs:
//
//   GET /metrics   Prometheus text rendering of the last published
//                  metrics_registry (obs/prom_text.hpp)
//   GET /progress  JSON progress_snapshot refreshed each broker round
//   GET /healthz   {"status":"ok",...} liveness probe
//
// Publication and serving are decoupled: publish_* renders the document
// into a string under a mutex; the serving thread only ever copies the
// latest strings, so a slow scraper never blocks the round loop and the
// round loop never blocks a scrape for longer than one string swap.
//
// The server binds 127.0.0.1 (scrapes are expected from the same host or
// via a forwarder) and supports port 0 for an ephemeral port — tests bind
// 0 and read the chosen port back with port(). Implemented on plain POSIX
// sockets; no third-party dependency.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/progress.hpp"

namespace richnote::obs {

class metrics_registry;

class expo_server final : public progress_listener {
public:
    /// Binds and starts serving immediately; throws on bind failure.
    /// `port` 0 picks an ephemeral port (see port()).
    explicit expo_server(std::uint16_t port);
    ~expo_server() override;

    expo_server(const expo_server&) = delete;
    expo_server& operator=(const expo_server&) = delete;

    /// The actually bound port (== constructor arg unless that was 0).
    std::uint16_t port() const noexcept { return port_; }

    /// Renders and installs a new /metrics document (Prometheus text).
    /// Quantile summary gauges are derived from the registry's histograms
    /// on a copy, so the caller's registry is not mutated.
    void publish_metrics(const metrics_registry& registry);

    /// Renders and installs a new /progress document.
    void publish_progress(const progress_snapshot& p);

    /// progress_listener: refresh both documents from the live run.
    void on_round(const progress_snapshot& p, const metrics_registry& live) override;

    /// Requests served so far (all paths, including 404s) — test hook.
    std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Stops the accept loop and joins the serving thread (idempotent;
    /// the destructor calls it).
    void stop();

private:
    void serve_loop();
    std::string respond(const std::string& request_line) const;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic_bool stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
    mutable std::mutex content_mutex_;
    std::string metrics_text_;  ///< latest Prometheus document
    std::string progress_json_; ///< latest progress document
    std::thread thread_;
};

} // namespace richnote::obs

// Run manifests (DESIGN.md §9): one small JSON document per harness / CLI
// run recording WHAT ran (tool, schema version), ON WHAT (config key=value
// pairs, seed), FROM WHICH BUILD (git describe, build type, compiler) and
// HOW IT WENT (BENCH-style named timings and result scalars). Every fig/
// perf harness and the CLI write one, so two result CSVs can always be
// compared by diffing their manifests (scripts/manifest_diff.py).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace richnote::obs {

class run_manifest {
public:
    /// `tool` names the producing binary / subcommand (e.g.
    /// "fig3_performance", "richnote simulate"). Build identity fields
    /// default to the configure-time stamps in obs/build_info.hpp.
    explicit run_manifest(std::string tool);

    const std::string& tool() const noexcept { return tool_; }

    void set_seed(std::uint64_t seed) { seed_ = seed; }
    std::uint64_t seed() const noexcept { return seed_; }

    /// Effective configuration, echoed in insertion order. All values are
    /// stored as strings — the manifest records what the run was told, not
    /// a typed re-interpretation of it.
    void add_config(std::string_view key, std::string_view value);
    void add_config(std::string_view key, std::uint64_t value);
    void add_config(std::string_view key, double value);
    const std::vector<std::pair<std::string, std::string>>& config() const noexcept {
        return config_;
    }

    /// Named result scalar (wall seconds, rounds/sec, rows written, ...).
    void add_timing(std::string_view name, double value);
    const std::vector<std::pair<std::string, double>>& timings() const noexcept {
        return timings_;
    }

    /// Overrides the configure-time build identity (tests).
    void set_build(std::string git_describe, std::string build_type, std::string compiler);

    /// JSON document with schema tag "richnote-manifest-v1".
    void write_json(std::ostream& out) const;

    /// Writes write_json() to `path`; throws on I/O failure.
    void write_file(const std::string& path) const;

private:
    std::string tool_;
    std::uint64_t seed_ = 0;
    std::string git_describe_;
    std::string build_type_;
    std::string compiler_;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<std::pair<std::string, double>> timings_;
};

} // namespace richnote::obs

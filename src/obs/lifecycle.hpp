// Per-notification lifecycle observability for service mode (DESIGN.md §13).
//
// A notification flows through a fixed causal chain:
//
//   ingested -> enqueued(ring) -> admitted -> planned(round, Eq.7 terms,
//   MCKP slot/fidelity) -> attempt{n}(retry/backoff) -> delivered
//                                                     | dead_lettered
//
// The chain is recorded on two planes with deliberately different clocks:
//
//   1. The DETERMINISTIC plane: NDJSON stage events (`lc_ingest`,
//      `lc_admit`) emitted through the run's trace_sink from
//      single-owner call sites (the ring drain on the round driver, the
//      canonical admission loop on the owning worker shard). They carry
//      only round indices and ids — never wall-clock time — so the merged
//      stream stays byte-identical across worker counts and reruns, and
//      `richnote explain` can rebuild a notification's full causal chain
//      from the file alone. The planned/attempt/delivered stages reuse the
//      existing decision/transfer_cut/retry_backoff/deliver/dead_letter
//      event vocabulary (DESIGN.md §9) rather than duplicating it.
//
//   2. The WALL-CLOCK plane: this file's lifecycle_tracker, a side table of
//      steady_clock stamps keyed by notification id. It feeds the
//      richnote.svc.* stage-latency histograms (ingest->admit,
//      admit->plan, plan->deliver, e2e) and the slow-exemplar ring served
//      at /exemplars. Wall time never enters the NDJSON stream, which is
//      how monotonic stamps coexist with byte-determinism.
//
// Cost model: every hook site guards on a nullable pointer, so a run with
// no tracker attached pays one predictable branch (zero allocations). An
// attached tracker pays one striped-mutex buffered APPEND per stage
// transition (a clock read plus a vector push, ~tens of ns); the id-keyed
// record map and the histograms are only touched when buffered events fold
// — lazily, at accessor/scrape time, off the round loop. Folding a stage
// event costs a cold map probe (~hundreds of ns), which is exactly the
// cost the round loop no longer pays per transition.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace richnote::obs {

/// Wall-clock stage tracker: id -> monotonic stage stamps, aggregated into
/// stage-latency histograms and a top-K worst-e2e exemplar ring. All
/// methods are thread-safe: on_ingested runs on ingest handler threads,
/// the rest on whichever worker shard owns the user that round.
class lifecycle_tracker {
public:
    /// One completed timeline kept because its e2e latency ranked among
    /// the worst seen. Rounds are deterministic; the *_us stamps are wall
    /// clock (monotonic within the process).
    struct exemplar {
        std::uint64_t id = 0;
        std::uint32_t user = 0;
        std::uint64_t admit_round = 0;
        std::uint64_t plan_round = 0;
        std::uint64_t final_round = 0;
        std::uint32_t level = 0;        ///< first-planned MCKP fidelity
        std::uint64_t attempts = 0;     ///< transfers cut mid-flight
        double ingest_to_admit_us = 0.0;
        double admit_to_plan_us = 0.0;
        double plan_to_deliver_us = 0.0;
        double e2e_us = 0.0;
    };

    explicit lifecycle_tracker(std::size_t exemplar_capacity = 8);

    // ----- stage hooks (causal order; unknown ids are ignored except
    // on_ingested, which creates the record) -----

    /// Wire acceptance, before the ring push (handler thread).
    void on_ingested(std::uint64_t id, std::uint32_t user);
    /// The ring push failed (backpressure): forget the stamp.
    void abandon(std::uint64_t id);
    /// Canonical admission into the user's broker at `round`.
    void on_admitted(std::uint64_t id, std::uint64_t round);
    /// First appearance in a delivery plan, with the chosen fidelity.
    void on_planned(std::uint64_t id, std::uint64_t round, std::uint32_t level);
    /// A transfer of the item was cut mid-flight (retry or dead-letter
    /// follows).
    void on_attempt(std::uint64_t id, std::uint64_t round);
    /// Terminal stages: fold the timeline into the histograms (delivered
    /// only) and drop the record.
    void on_delivered(std::uint64_t id, std::uint64_t round);
    void on_dead_lettered(std::uint64_t id, std::uint64_t round);

    /// Records still in flight (ingested, not yet delivered/dead-lettered).
    std::uint64_t tracked() const;
    std::uint64_t delivered() const;
    std::uint64_t dead_lettered() const;

    /// Installs the stage-latency histograms and lifecycle counters into
    /// `registry` under richnote.svc.* names (with {stage=...} labelled
    /// observation counters), plus HELP texts for the Prometheus render.
    void export_metrics(metrics_registry& registry) const;

    /// Worst-first copy of the exemplar ring (e2e desc, id asc on ties).
    std::vector<exemplar> exemplars() const;

    /// The /exemplars document: {"exemplars":[...]} with one object per
    /// kept timeline, worst e2e first.
    std::string exemplars_json() const;

private:
    using clock = std::chrono::steady_clock;

    struct record {
        std::uint32_t user = 0;
        std::uint32_t level = 0;
        std::uint64_t admit_round = 0;
        std::uint64_t plan_round = 0;
        std::uint64_t attempts = 0;
        bool admitted = false;
        bool planned = false;
        clock::time_point ingested{};
        clock::time_point admitted_at{};
        clock::time_point planned_at{};
    };

    /// One buffered stage transition. Hooks append these under the id's
    /// stripe mutex; fold() replays them against the record map later. A
    /// notification's events land in one stripe in causal order: every
    /// stage of an id runs on its single owner thread (or is ordered
    /// before it by the ingest ring handoff), so replay order is append
    /// order.
    struct stage_event {
        enum class kind : std::uint8_t {
            ingest,
            abandon,
            admit,
            plan,
            attempt,
            deliver,
            dead_letter,
        };
        std::uint64_t id = 0;
        std::uint64_t round = 0;
        std::uint32_t extra = 0; ///< user (ingest) or fidelity level (plan)
        kind what = kind::ingest;
        clock::time_point at{};
    };

    /// Backstop fold threshold per stripe: a serve loop nobody scrapes
    /// must not grow buffers without bound, so an append that finds this
    /// many pending events folds its own stripe inline (an amortized,
    /// per-stripe spike instead of a per-event map probe).
    static constexpr std::size_t fold_backstop = 8192;

    static constexpr std::size_t shard_count = 64;
    struct shard {
        mutable std::mutex mutex;
        std::unordered_map<std::uint64_t, record> live;
        std::vector<stage_event> pending; ///< cleared (not shrunk) by fold
    };

    shard& shard_of(std::uint64_t id) const noexcept;
    void append(std::uint64_t id, stage_event::kind what, std::uint64_t round,
                std::uint32_t extra, bool stamp);
    /// Replays `s.pending` against `s.live` and clears it. Caller holds
    /// `s.mutex`; terminal events additionally take stats_mutex_ (lock
    /// order: shard -> stats, everywhere).
    void fold_shard_locked(shard& s) const;
    /// Drains every stripe's pending buffer. Called by all accessors, so
    /// reads always observe every hook that happened-before them.
    void fold() const;
    void apply(shard& s, const stage_event& e) const;
    void finish(record r, const stage_event& e) const;

    /// Logically const: fold() only moves already-recorded transitions
    /// from the append buffers into the aggregated view, hence the
    /// mutable storage below.
    mutable shard shards_[shard_count];

    mutable std::mutex stats_mutex_;
    std::size_t exemplar_capacity_;
    mutable std::uint64_t delivered_ = 0;
    mutable std::uint64_t dead_lettered_ = 0;
    mutable histogram ingest_to_admit_;
    mutable histogram admit_to_plan_;
    mutable histogram plan_to_deliver_;
    mutable histogram e2e_;
    mutable std::vector<exemplar> exemplars_; ///< unordered; worst-K by e2e
};

/// Per-endpoint RED (rate / errors / duration) recorder for the service's
/// HTTP surface. Thread-safe; handlers observe, the publisher exports.
/// Exported names carry an {endpoint=...} label rendered by prom_text:
///   richnote.svc.http.requests_total{endpoint=ingest}   (counter)
///   richnote.svc.http.errors_total{endpoint=ingest}     (counter, 5xx)
///   richnote.svc.http.duration_us{endpoint=ingest}      (histogram)
class red_recorder {
public:
    void observe(std::string_view endpoint, int status, double duration_us);
    void export_metrics(metrics_registry& registry) const;

private:
    struct series {
        std::uint64_t requests = 0;
        std::uint64_t errors = 0; ///< responses with status >= 500
        histogram duration;
    };

    mutable std::mutex mutex_;
    std::map<std::string, series, std::less<>> series_;
};

/// Reconstructs notification `id`'s causal chain from an NDJSON decision
/// trace and pretty-prints it — every stage, every retry, the Eq.7 term
/// breakdown behind each planned fidelity. A pure function of the file
/// bytes (the trace of a fixed seed is byte-identical across worker
/// counts, so this output is too). Returns false when the trace holds no
/// events for `id`; malformed or truncated lines are skipped like
/// build_trace_report does.
bool write_explain(std::istream& ndjson, std::uint64_t id, std::ostream& out);

} // namespace richnote::obs

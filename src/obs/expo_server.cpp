#include "obs/expo_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <string_view>
#include <sstream>

#include "common/error.hpp"
#include "obs/build_info.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prom_text.hpp"

namespace richnote::obs {

namespace {

constexpr std::size_t max_head_bytes = 8192;

const char* reason_phrase(int status) noexcept {
    switch (status) {
        case 200: return "200 OK";
        case 202: return "202 Accepted";
        case 400: return "400 Bad Request";
        case 404: return "404 Not Found";
        case 405: return "405 Method Not Allowed";
        case 411: return "411 Length Required";
        case 413: return "413 Payload Too Large";
        case 503: return "503 Service Unavailable";
        default: return "500 Internal Server Error";
    }
}

std::string http_response(int status, const char* content_type, const std::string& body) {
    std::string out = "HTTP/1.1 ";
    out += reason_phrase(status);
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

void close_quietly(int fd) noexcept {
    if (fd >= 0) ::close(fd);
}

void send_all(int fd, const std::string& reply) noexcept {
    std::size_t sent = 0;
    while (sent < reply.size()) {
        const ssize_t n =
            ::send(fd, reply.data() + sent, reply.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
}

/// Case-insensitive Content-Length lookup over the raw head. Returns false
/// when absent; `value` false-positive guards (non-numeric) map to 400 at
/// the caller.
bool find_content_length(const std::string& head, std::size_t& value, bool& malformed) {
    malformed = false;
    std::size_t pos = 0;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos) eol = head.size();
        const std::string_view line(head.data() + pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
            std::string name(line.substr(0, colon));
            std::transform(name.begin(), name.end(), name.begin(),
                           [](unsigned char c) { return std::tolower(c); });
            if (name == "content-length") {
                std::string_view v = line.substr(colon + 1);
                while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
                while (!v.empty() && (v.back() == ' ' || v.back() == '\r'))
                    v.remove_suffix(1);
                value = 0;
                if (v.empty()) {
                    malformed = true;
                    return false;
                }
                for (const char c : v) {
                    if (c < '0' || c > '9') {
                        malformed = true;
                        return false;
                    }
                    if (value > (std::size_t(-1) - 9) / 10) { // overflow: huge
                        value = std::size_t(-1);
                        return true;
                    }
                    value = value * 10 + static_cast<std::size_t>(c - '0');
                }
                return true;
            }
        }
        pos = eol + 2;
        if (eol == head.size()) break;
    }
    return false;
}

} // namespace

expo_server::expo_server(std::uint16_t port, std::size_t handler_threads) {
    RICHNOTE_REQUIRE(handler_threads >= 1, "expo_server needs at least one handler");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    RICHNOTE_REQUIRE(listen_fd_ >= 0, "expo_server: socket() failed");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        close_quietly(listen_fd_);
        RICHNOTE_REQUIRE(false, std::string("expo_server: cannot bind port ") +
                                    std::to_string(port) + ": " + std::strerror(err));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_, 64) != 0) {
        close_quietly(listen_fd_);
        RICHNOTE_REQUIRE(false, "expo_server: listen() failed");
    }

    progress_json_ = "{\"round\":0,\"done\":false}\n";
    accept_thread_ = std::thread([this] { accept_loop(); });
    handler_threads_.reserve(handler_threads);
    for (std::size_t i = 0; i < handler_threads; ++i) {
        handler_threads_.emplace_back([this] { handler_loop(); });
    }
}

expo_server::~expo_server() { stop(); }

void expo_server::stop() {
    if (stopping_.exchange(true)) return; // already stopped (or stopping)
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& t : handler_threads_) {
        if (t.joinable()) t.join();
    }
    // Drain any fds accepted but never handled.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const int fd : pending_fds_) close_quietly(fd);
    pending_fds_.clear();
    close_quietly(listen_fd_);
    listen_fd_ = -1;
}

void expo_server::set_post_handler(const std::string& path, post_handler fn) {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    post_handlers_[path] = std::move(fn);
}

void expo_server::set_max_body_bytes(std::size_t bytes) {
    max_body_bytes_.store(bytes, std::memory_order_relaxed);
}

void expo_server::publish_metrics(const metrics_registry& registry) {
    // Derive the p50/p95/p99 summary gauges on a copy so publishing never
    // mutates the caller's registry.
    metrics_registry snapshot = registry;
    snapshot.export_quantile_gauges();
    std::ostringstream text;
    write_prometheus_text(snapshot, text);
    std::lock_guard<std::mutex> lock(content_mutex_);
    metrics_text_ = text.str();
}

void expo_server::publish_progress(const progress_snapshot& p) {
    std::string body = "{";
    auto field_u64 = [&body](const char* key, std::uint64_t v, bool first = false) {
        if (!first) body += ',';
        json_string(body, key);
        body += ':';
        json_number(body, v);
    };
    auto field_dbl = [&body](const char* key, double v) {
        body += ',';
        json_string(body, key);
        body += ':';
        json_number(body, v);
    };
    field_u64("round", p.round, true);
    field_u64("total_rounds", p.total_rounds);
    field_u64("users", static_cast<std::uint64_t>(p.users));
    field_dbl("wall_sec", p.wall_sec);
    field_dbl("rounds_per_sec", p.rounds_per_sec);
    field_dbl("queue_items_total", p.queue_items_total);
    field_dbl("queue_bytes_total", p.queue_bytes_total);
    field_dbl("energy_credit_joules_total", p.energy_credit_joules_total);
    field_u64("arrived_total", p.arrived_total);
    field_u64("delivered_total", p.delivered_total);
    field_u64("faults_injected", p.faults_injected);
    field_u64("transfer_retries", p.transfer_retries);
    field_u64("dead_lettered", p.dead_lettered);
    field_u64("duplicates_suppressed", p.duplicates_suppressed);
    field_u64("crash_restarts", p.crash_restarts);
    body += ",\"done\":";
    body += p.done ? "true" : "false";
    body += "}\n";
    std::lock_guard<std::mutex> lock(content_mutex_);
    progress_json_ = std::move(body);
}

void expo_server::on_round(const progress_snapshot& p, const metrics_registry& live) {
    publish_progress(p);
    publish_metrics(live);
}

void expo_server::publish_document(const std::string& path,
                                   const std::string& content_type,
                                   std::string body) {
    RICHNOTE_REQUIRE(!path.empty() && path.front() == '/',
                     "publish_document paths start with '/'");
    RICHNOTE_REQUIRE(path != "/metrics" && path != "/progress" && path != "/healthz",
                     "publish_document cannot shadow a built-in path");
    std::lock_guard<std::mutex> lock(content_mutex_);
    documents_[path] = {content_type, std::move(body)};
}

void expo_server::set_uarch(std::string uarch) {
    std::lock_guard<std::mutex> lock(content_mutex_);
    uarch_ = std::move(uarch);
}

std::string expo_server::respond_get(const std::string& path) const {
    if (path == "/metrics") {
        std::lock_guard<std::mutex> lock(content_mutex_);
        return http_response(200, "text/plain; version=0.0.4", metrics_text_);
    }
    if (path == "/progress") {
        std::lock_guard<std::mutex> lock(content_mutex_);
        return http_response(200, "application/json", progress_json_);
    }
    if (path == "/healthz") {
        // Build identity from the run manifest's source of truth, so a
        // probe can tell WHICH build answered, not just that one did.
        std::string body = "{\"status\":\"ok\",\"git_describe\":";
        json_string(body, build_info::git_describe);
        body += ",\"build_type\":";
        json_string(body, build_info::build_type);
        body += ",\"compiler\":";
        json_string(body, build_info::compiler);
        body += ",\"uarch\":";
        {
            std::lock_guard<std::mutex> lock(content_mutex_);
            json_string(body, uarch_);
        }
        body += "}\n";
        return http_response(200, "application/json", body);
    }
    {
        std::lock_guard<std::mutex> lock(content_mutex_);
        if (const auto it = documents_.find(path); it != documents_.end()) {
            return http_response(200, it->second.first.c_str(), it->second.second);
        }
    }
    // 404 lists every path actually served right now, GET and POST alike.
    std::string listing = "see /healthz, /metrics, /progress";
    {
        std::lock_guard<std::mutex> lock(content_mutex_);
        for (const auto& [doc_path, unused] : documents_) {
            (void)unused;
            listing += ", " + doc_path;
        }
    }
    {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        bool first = true;
        for (const auto& [post_path, unused] : post_handlers_) {
            (void)unused;
            listing += first ? "; POST " : ", POST ";
            first = false;
            listing += post_path;
        }
    }
    listing += '\n';
    return http_response(404, "text/plain", listing);
}

void expo_server::accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
        if (ready <= 0) continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        // A stalled client may block one handler for at most the recv
        // timeout, never the accept loop or the other handlers.
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            pending_fds_.push_back(client);
        }
        queue_cv_.notify_one();
    }
}

void expo_server::handler_loop() {
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [&] {
                return stopping_.load(std::memory_order_relaxed) || !pending_fds_.empty();
            });
            if (pending_fds_.empty()) return; // stopping and drained
            fd = pending_fds_.front();
            pending_fds_.pop_front();
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        handle_connection(fd);
        close_quietly(fd);
    }
}

void expo_server::handle_connection(int fd) {
    // Read the request head, bounded. Anything that cannot fit its head in
    // max_head_bytes is rejected outright — the documents and ingest lines
    // this server deals in never need jumbo headers.
    std::string buffer;
    std::size_t head_end = std::string::npos;
    char chunk[2048];
    while (head_end == std::string::npos) {
        if (buffer.size() >= max_head_bytes) {
            send_all(fd, http_response(400, "text/plain", "request head too large\n"));
            return;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) return; // disconnect or timeout mid-head: drop quietly
        buffer.append(chunk, static_cast<std::size_t>(n));
        head_end = buffer.find("\r\n\r\n");
    }

    const std::string head = buffer.substr(0, head_end);
    std::istringstream parse(head.substr(0, head.find("\r\n")));
    std::string method;
    std::string path;
    parse >> method >> path;
    if (method.empty() || path.empty() || path.front() != '/') {
        send_all(fd, http_response(400, "text/plain", "malformed request line\n"));
        return;
    }
    // Strip any query string; scrapers sometimes append one.
    if (const auto q = path.find('?'); q != std::string::npos) path.resize(q);

    if (method == "GET") {
        send_all(fd, respond_get(path));
        return;
    }
    if (method != "POST") {
        send_all(fd,
                 http_response(405, "text/plain", "only GET and POST are supported\n"));
        return;
    }

    post_handler handler;
    {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        if (const auto it = post_handlers_.find(path); it != post_handlers_.end())
            handler = it->second;
    }
    if (!handler) {
        send_all(fd, http_response(404, "text/plain", "no handler mounted here\n"));
        return;
    }

    std::size_t content_length = 0;
    bool malformed = false;
    if (!find_content_length(head, content_length, malformed)) {
        send_all(fd, malformed
                         ? http_response(400, "text/plain", "bad Content-Length\n")
                         : http_response(411, "text/plain", "Content-Length required\n"));
        return;
    }
    const std::size_t max_body = max_body_bytes_.load(std::memory_order_relaxed);
    if (content_length > max_body) {
        send_all(fd, http_response(413, "text/plain",
                                   "body exceeds " + std::to_string(max_body) +
                                       " bytes\n"));
        return;
    }

    std::string body = buffer.substr(head_end + 4);
    while (body.size() < content_length) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) return; // disconnect or timeout mid-body: drop quietly
        body.append(chunk, static_cast<std::size_t>(n));
    }
    body.resize(content_length); // ignore pipelined bytes past the request

    const post_result result = handler(body);
    send_all(fd, http_response(result.status, "application/json", result.body));
}

} // namespace richnote::obs

#include "obs/expo_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prom_text.hpp"

namespace richnote::obs {

namespace {

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

void close_quietly(int fd) noexcept {
    if (fd >= 0) ::close(fd);
}

} // namespace

expo_server::expo_server(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    RICHNOTE_REQUIRE(listen_fd_ >= 0, "expo_server: socket() failed");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        close_quietly(listen_fd_);
        RICHNOTE_REQUIRE(false, std::string("expo_server: cannot bind port ") +
                                    std::to_string(port) + ": " + std::strerror(err));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_, 16) != 0) {
        close_quietly(listen_fd_);
        RICHNOTE_REQUIRE(false, "expo_server: listen() failed");
    }

    progress_json_ = "{\"round\":0,\"done\":false}\n";
    thread_ = std::thread([this] { serve_loop(); });
}

expo_server::~expo_server() { stop(); }

void expo_server::stop() {
    if (stopping_.exchange(true)) return; // already stopped (or stopping)
    if (thread_.joinable()) thread_.join();
    close_quietly(listen_fd_);
    listen_fd_ = -1;
}

void expo_server::publish_metrics(const metrics_registry& registry) {
    // Derive the p50/p95/p99 summary gauges on a copy so publishing never
    // mutates the caller's registry.
    metrics_registry snapshot = registry;
    snapshot.export_quantile_gauges();
    std::ostringstream text;
    write_prometheus_text(snapshot, text);
    std::lock_guard<std::mutex> lock(content_mutex_);
    metrics_text_ = text.str();
}

void expo_server::publish_progress(const progress_snapshot& p) {
    std::string body = "{";
    auto field_u64 = [&body](const char* key, std::uint64_t v, bool first = false) {
        if (!first) body += ',';
        json_string(body, key);
        body += ':';
        json_number(body, v);
    };
    auto field_dbl = [&body](const char* key, double v) {
        body += ',';
        json_string(body, key);
        body += ':';
        json_number(body, v);
    };
    field_u64("round", p.round, true);
    field_u64("total_rounds", p.total_rounds);
    field_u64("users", static_cast<std::uint64_t>(p.users));
    field_dbl("wall_sec", p.wall_sec);
    field_dbl("rounds_per_sec", p.rounds_per_sec);
    field_dbl("queue_items_total", p.queue_items_total);
    field_dbl("queue_bytes_total", p.queue_bytes_total);
    field_dbl("energy_credit_joules_total", p.energy_credit_joules_total);
    field_u64("arrived_total", p.arrived_total);
    field_u64("delivered_total", p.delivered_total);
    field_u64("faults_injected", p.faults_injected);
    field_u64("transfer_retries", p.transfer_retries);
    field_u64("dead_lettered", p.dead_lettered);
    field_u64("duplicates_suppressed", p.duplicates_suppressed);
    field_u64("crash_restarts", p.crash_restarts);
    body += ",\"done\":";
    body += p.done ? "true" : "false";
    body += "}\n";
    std::lock_guard<std::mutex> lock(content_mutex_);
    progress_json_ = std::move(body);
}

void expo_server::on_round(const progress_snapshot& p, const metrics_registry& live) {
    publish_progress(p);
    publish_metrics(live);
}

std::string expo_server::respond(const std::string& request_line) const {
    // "GET <path> HTTP/1.x" — anything else is a 400/404.
    std::istringstream parse(request_line);
    std::string method;
    std::string path;
    parse >> method >> path;
    if (method != "GET") {
        return http_response("405 Method Not Allowed", "text/plain",
                             "only GET is supported\n");
    }
    // Strip any query string; scrapers sometimes append one.
    if (const auto q = path.find('?'); q != std::string::npos) path.resize(q);
    if (path == "/metrics") {
        std::lock_guard<std::mutex> lock(content_mutex_);
        return http_response("200 OK", "text/plain; version=0.0.4", metrics_text_);
    }
    if (path == "/progress") {
        std::lock_guard<std::mutex> lock(content_mutex_);
        return http_response("200 OK", "application/json", progress_json_);
    }
    if (path == "/healthz") {
        return http_response("200 OK", "application/json", "{\"status\":\"ok\"}\n");
    }
    return http_response("404 Not Found", "text/plain",
                         "see /metrics, /progress, /healthz\n");
}

void expo_server::serve_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
        if (ready <= 0) continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        requests_.fetch_add(1, std::memory_order_relaxed);

        // Read until the end of the request head (or a small cap) — the
        // request line is all we use.
        std::string request;
        char chunk[1024];
        while (request.size() < 8192) {
            const ssize_t n = ::recv(client, chunk, sizeof chunk, 0);
            if (n <= 0) break;
            request.append(chunk, static_cast<std::size_t>(n));
            if (request.find("\r\n\r\n") != std::string::npos) break;
        }
        const std::string reply =
            respond(request.substr(0, request.find("\r\n")));
        std::size_t sent = 0;
        while (sent < reply.size()) {
            const ssize_t n = ::send(client, reply.data() + sent, reply.size() - sent,
                                     MSG_NOSIGNAL);
            if (n <= 0) break;
            sent += static_cast<std::size_t>(n);
        }
        close_quietly(client);
    }
}

} // namespace richnote::obs

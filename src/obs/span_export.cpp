#include "obs/span_export.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>

#include "obs/json_util.hpp"

namespace richnote::obs {

namespace {

/// Canonical span order: by rebased start, then lane, then longest first so
/// a parent precedes its children at equal starts.
std::vector<span_record> canonical_order(const std::vector<span_record>& spans) {
    std::vector<span_record> sorted = spans;
    std::sort(sorted.begin(), sorted.end(),
              [](const span_record& a, const span_record& b) {
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  if (a.lane != b.lane) return a.lane < b.lane;
                  if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;
                  return static_cast<int>(a.slot) < static_cast<int>(b.slot);
              });
    return sorted;
}

std::uint64_t min_start(const std::vector<span_record>& spans) {
    std::uint64_t base = UINT64_MAX;
    for (const span_record& s : spans) base = std::min(base, s.start_ns);
    return base == UINT64_MAX ? 0 : base;
}

} // namespace

void write_chrome_trace(const std::vector<span_record>& spans, std::ostream& out) {
    const std::vector<span_record> sorted = canonical_order(spans);
    const std::uint64_t base = min_start(sorted);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::string line;
    for (const span_record& s : sorted) {
        line.clear();
        if (!first) line += ',';
        first = false;
        // Complete ("X") events; ts/dur are microseconds. Nanosecond
        // precision survives as fractional microseconds.
        line += "\n{\"name\":";
        json_string(line, profile_slot_label(s.slot));
        line += ",\"cat\":\"richnote\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        json_number(line, static_cast<std::uint64_t>(s.lane));
        line += ",\"ts\":";
        json_number(line, static_cast<double>(s.start_ns - base) / 1000.0);
        line += ",\"dur\":";
        json_number(line, static_cast<double>(s.end_ns - s.start_ns) / 1000.0);
        line += '}';
        out << line;
    }
    out << "\n]}\n";
}

void write_collapsed_stacks(const std::vector<span_record>& spans, std::ostream& out) {
    const std::vector<span_record> sorted = canonical_order(spans);

    // Reconstruct nesting per lane by containment: walking spans in start
    // order, a span that starts before the lane's innermost open span ends
    // is its child. Each span credits its full duration to its stack path,
    // then debits it from the parent's path — what remains on every path is
    // self-time. Children on a lane are sequential and contained, so the
    // debits never exceed the parent's credit.
    struct open_span {
        std::uint64_t end_ns;
        std::string path; ///< "parent;child;..." frames
    };
    std::map<std::uint32_t, std::vector<open_span>> lane_stacks;
    std::map<std::string, std::uint64_t> self_ns; ///< sorted output for free

    for (const span_record& s : sorted) {
        auto& stack = lane_stacks[s.lane];
        while (!stack.empty() && stack.back().end_ns <= s.start_ns) stack.pop_back();
        const std::uint64_t duration = s.end_ns - s.start_ns;
        std::string path;
        if (!stack.empty()) {
            self_ns[stack.back().path] -= std::min(self_ns[stack.back().path], duration);
            path = stack.back().path + ";";
        }
        path += profile_slot_label(s.slot);
        self_ns[path] += duration;
        stack.push_back(open_span{s.end_ns, path});
    }

    for (const auto& [path, nanos] : self_ns) {
        if (nanos == 0) continue;
        out << path << ' ' << nanos << '\n';
    }
}

} // namespace richnote::obs

#include "obs/profile.hpp"

#include <array>
#include <chrono>
#include <memory>
#include <mutex>

namespace richnote::obs {

namespace detail {
std::atomic_bool g_profile_on{false};
} // namespace detail

namespace {

const char* const slot_names[profile_slot_count] = {
    "richnote.profile.broker_round",  "richnote.profile.scheduler_plan",
    "richnote.profile.mckp_solve",    "richnote.profile.forest_predict",
    "richnote.profile.forest_fit",    "richnote.profile.sim_tick",
};

const char* const slot_labels[profile_slot_count] = {
    "broker_round", "scheduler_plan", "mckp_solve",
    "forest_predict", "forest_fit", "sim_tick",
};

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// Sampling period, read only when a lane's countdown reloads.
std::atomic<std::uint32_t> g_sample_every{16};
std::atomic<std::uint32_t> g_ring_capacity{1u << 13};

std::uint32_t round_up_pow2(std::uint32_t v) noexcept {
    std::uint32_t p = 1;
    while (p < v && p < (1u << 30)) p <<= 1;
    return p;
}

/// Bounded single-producer single-consumer span queue. The owning thread
/// pushes; the drainer pops. head/tail are monotonically increasing, so
/// "full" is head - tail == capacity and no index ever wraps ambiguously.
struct span_ring {
    explicit span_ring(std::uint32_t capacity)
        : buf(round_up_pow2(capacity)), mask(static_cast<std::uint32_t>(buf.size()) - 1) {}

    std::vector<span_record> buf;
    std::uint32_t mask;
    std::atomic<std::uint64_t> head{0}; ///< written by the producer only
    std::atomic<std::uint64_t> tail{0}; ///< written by the consumer only

    bool push(const span_record& r) noexcept {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        if (h - tail.load(std::memory_order_acquire) > mask) return false;
        buf[h & mask] = r;
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    std::size_t drain(std::vector<span_record>& out) {
        const std::uint64_t h = head.load(std::memory_order_acquire);
        std::uint64_t t = tail.load(std::memory_order_relaxed);
        const auto n = static_cast<std::size_t>(h - t);
        for (; t < h; ++t) out.push_back(buf[t & mask]);
        tail.store(t, std::memory_order_release);
        return n;
    }
};

/// Sole-writer counter: only the owning thread increments, drainers read
/// concurrently, so a relaxed load/store pair (no RMW) is race-free.
inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t delta = 1) noexcept {
    c.store(c.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

} // namespace

namespace detail {

struct thread_state {
    explicit thread_state(std::uint32_t lane_index, std::uint32_t ring_capacity)
        : lane(lane_index), ring(std::make_unique<span_ring>(ring_capacity)) {}

    std::uint32_t lane;
    std::uint32_t countdown = 1; ///< entries until the next timed sample
    std::unique_ptr<span_ring> ring; ///< replaced on reacquire if reconfigured
    std::array<std::atomic<std::uint64_t>, profile_slot_count> calls{};
    std::array<std::atomic<std::uint64_t>, profile_slot_count> sampled_calls{};
    std::array<std::atomic<std::uint64_t>, profile_slot_count> sampled_nanos{};
    std::atomic<std::uint64_t> dropped{0};
    bool in_use = false; ///< guarded by the lane registry mutex
};

namespace {

/// All lanes ever created, never destroyed: a lane released by an exiting
/// thread is handed to the next thread that needs one, so the per-round
/// worker pools reuse a bounded set instead of growing the registry.
struct lane_registry {
    std::mutex mutex;
    std::vector<std::unique_ptr<thread_state>> lanes;

    thread_state* acquire() {
        std::lock_guard<std::mutex> lock(mutex);
        const std::uint32_t capacity =
            round_up_pow2(g_ring_capacity.load(std::memory_order_relaxed));
        for (auto& lane : lanes) {
            if (!lane->in_use) {
                lane->in_use = true;
                lane->countdown = 1;
                // Honour a reconfigured ring size on reuse; undrained spans
                // from the previous owner are stale by then (configure is
                // documented quiescent-only).
                if (lane->ring->buf.size() != capacity)
                    lane->ring = std::make_unique<span_ring>(capacity);
                return lane.get();
            }
        }
        lanes.push_back(std::make_unique<thread_state>(
            static_cast<std::uint32_t>(lanes.size()),
            g_ring_capacity.load(std::memory_order_relaxed)));
        lanes.back()->in_use = true;
        return lanes.back().get();
    }

    void release(thread_state* state) {
        std::lock_guard<std::mutex> lock(mutex);
        state->in_use = false;
    }
};

lane_registry& lanes() {
    static lane_registry instance;
    return instance;
}

/// Thread-local handle: releases the lane back to the registry when the
/// thread exits (totals and undrained spans survive in the registry).
struct tls_lane {
    thread_state* state = nullptr;
    ~tls_lane() {
        if (state != nullptr) lanes().release(state);
    }
};

thread_local tls_lane t_lane;

} // namespace

thread_state& profile_enter(profile_slot slot, std::uint64_t& start_ns) noexcept {
    if (t_lane.state == nullptr) t_lane.state = lanes().acquire();
    thread_state& state = *t_lane.state;
    bump(state.calls[static_cast<std::size_t>(slot)]);
    if (--state.countdown == 0) {
        state.countdown = g_sample_every.load(std::memory_order_relaxed);
        start_ns = now_ns();
    } else {
        start_ns = 0;
    }
    return state;
}

void profile_leave(thread_state& state, profile_slot slot,
                   std::uint64_t start_ns) noexcept {
    const std::uint64_t end_ns = now_ns();
    const auto s = static_cast<std::size_t>(slot);
    bump(state.sampled_calls[s]);
    bump(state.sampled_nanos[s], end_ns - start_ns);
    span_record span;
    span.start_ns = start_ns;
    span.end_ns = end_ns;
    span.lane = state.lane;
    span.slot = slot;
    if (!state.ring->push(span)) bump(state.dropped);
}

} // namespace detail

const char* profile_slot_name(profile_slot slot) noexcept {
    return slot_names[static_cast<std::size_t>(slot)];
}

const char* profile_slot_label(profile_slot slot) noexcept {
    return slot_labels[static_cast<std::size_t>(slot)];
}

void profile_configure(const profile_config& cfg) {
    g_sample_every.store(cfg.sample_every == 0 ? 1 : cfg.sample_every,
                         std::memory_order_relaxed);
    g_ring_capacity.store(cfg.ring_capacity == 0 ? 1 : cfg.ring_capacity,
                          std::memory_order_relaxed);
}

profile_config profile_configuration() {
    profile_config cfg;
    cfg.sample_every = g_sample_every.load(std::memory_order_relaxed);
    cfg.ring_capacity = g_ring_capacity.load(std::memory_order_relaxed);
    return cfg;
}

void profile_set_enabled(bool enabled) {
    detail::g_profile_on.store(enabled, std::memory_order_relaxed);
}

bool profile_enabled() noexcept {
    return detail::g_profile_on.load(std::memory_order_relaxed);
}

profile_totals profile_read(profile_slot slot) noexcept {
    const auto s = static_cast<std::size_t>(slot);
    profile_totals totals;
    auto& registry = detail::lanes();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& lane : registry.lanes) {
        totals.calls += lane->calls[s].load(std::memory_order_relaxed);
        totals.sampled_calls += lane->sampled_calls[s].load(std::memory_order_relaxed);
        totals.sampled_nanos += lane->sampled_nanos[s].load(std::memory_order_relaxed);
    }
    if (totals.sampled_calls > 0) {
        totals.nanos = static_cast<std::uint64_t>(
            static_cast<double>(totals.sampled_nanos) *
            static_cast<double>(totals.calls) /
            static_cast<double>(totals.sampled_calls));
    }
    return totals;
}

void profile_reset() noexcept {
    auto& registry = detail::lanes();
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::vector<span_record> discard;
    for (auto& lane : registry.lanes) {
        for (std::size_t s = 0; s < profile_slot_count; ++s) {
            lane->calls[s].store(0, std::memory_order_relaxed);
            lane->sampled_calls[s].store(0, std::memory_order_relaxed);
            lane->sampled_nanos[s].store(0, std::memory_order_relaxed);
        }
        lane->dropped.store(0, std::memory_order_relaxed);
        discard.clear();
        lane->ring->drain(discard);
    }
}

std::size_t profile_drain(std::vector<span_record>& out) {
    auto& registry = detail::lanes();
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::size_t total = 0;
    for (auto& lane : registry.lanes) total += lane->ring->drain(out);
    return total;
}

std::uint64_t profile_dropped() noexcept {
    auto& registry = detail::lanes();
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::uint64_t total = 0;
    for (const auto& lane : registry.lanes)
        total += lane->dropped.load(std::memory_order_relaxed);
    return total;
}

void profile_export(metrics_registry& registry) {
    for (std::size_t i = 0; i < profile_slot_count; ++i) {
        const auto totals = profile_read(static_cast<profile_slot>(i));
        if (totals.calls == 0) continue;
        const std::string stem = slot_names[i];
        registry.count(stem + ".calls_total", totals.calls);
        registry.count(stem + ".nanos_total", totals.nanos);
        registry.count(stem + ".sampled_calls_total", totals.sampled_calls);
        registry.gauge_set(stem + ".mean_us",
                           totals.sampled_calls > 0
                               ? static_cast<double>(totals.sampled_nanos) /
                                     static_cast<double>(totals.sampled_calls) / 1000.0
                               : 0.0);
    }
    if (const std::uint64_t dropped = profile_dropped(); dropped > 0) {
        registry.count("richnote.profile.dropped_spans_total", dropped);
    }
}

} // namespace richnote::obs

#include "obs/profile.hpp"

#include <array>
#include <atomic>
#include <chrono>

namespace richnote::obs {

namespace {

const char* const slot_names[profile_slot_count] = {
    "richnote.profile.broker_round",  "richnote.profile.scheduler_plan",
    "richnote.profile.mckp_solve",    "richnote.profile.forest_predict",
    "richnote.profile.forest_fit",    "richnote.profile.sim_tick",
};

struct slot_cell {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> nanos{0};
};

std::array<slot_cell, profile_slot_count>& cells() {
    static std::array<slot_cell, profile_slot_count> instance;
    return instance;
}

} // namespace

const char* profile_slot_name(profile_slot slot) noexcept {
    return slot_names[static_cast<std::size_t>(slot)];
}

profile_totals profile_read(profile_slot slot) noexcept {
    const auto& cell = cells()[static_cast<std::size_t>(slot)];
    return {cell.calls.load(std::memory_order_relaxed),
            cell.nanos.load(std::memory_order_relaxed)};
}

void profile_reset() noexcept {
    for (auto& cell : cells()) {
        cell.calls.store(0, std::memory_order_relaxed);
        cell.nanos.store(0, std::memory_order_relaxed);
    }
}

void profile_export(metrics_registry& registry) {
    for (std::size_t i = 0; i < profile_slot_count; ++i) {
        const auto totals = profile_read(static_cast<profile_slot>(i));
        if (totals.calls == 0) continue;
        const std::string stem = slot_names[i];
        registry.count(stem + ".calls_total", totals.calls);
        registry.count(stem + ".nanos_total", totals.nanos);
        registry.gauge_set(stem + ".mean_us",
                           static_cast<double>(totals.nanos) /
                               static_cast<double>(totals.calls) / 1000.0);
    }
}

#ifdef RICHNOTE_TRACE

namespace detail {

void profile_record(profile_slot slot, std::uint64_t nanos) noexcept {
    auto& cell = cells()[static_cast<std::size_t>(slot)];
    cell.calls.fetch_add(1, std::memory_order_relaxed);
    cell.nanos.fetch_add(nanos, std::memory_order_relaxed);
}

std::uint64_t profile_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace detail

#endif // RICHNOTE_TRACE

} // namespace richnote::obs

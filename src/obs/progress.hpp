// Live run-progress plumbing between core::run_experiment and the
// telemetry plane (DESIGN.md §10).
//
// The experiment driver fills one progress_snapshot per broker round —
// aggregate Lyapunov queue state (Q/P sums over users), throughput, fault
// counters — and hands it to an optional progress_listener together with a
// registry holding the run's CURRENT aggregates under the canonical
// richnote.* names. The expo_server implements the interface to refresh
// its /progress and /metrics documents; tests implement it to observe (or
// kill) a run mid-flight at an exact round.
//
// The hook runs in the driver's single-threaded between-rounds section, so
// listeners see a consistent snapshot and need no locking against the
// worker shards.
#pragma once

#include <cstddef>
#include <cstdint>

namespace richnote::obs {

class metrics_registry;

struct progress_snapshot {
    std::uint64_t round = 0;        ///< rounds completed so far
    std::uint64_t total_rounds = 0; ///< planned rounds for the run
    std::size_t users = 0;
    double wall_sec = 0.0;        ///< wall time since the replay started
    double rounds_per_sec = 0.0;  ///< round / wall_sec (0 in round 0)
    double queue_items_total = 0; ///< scheduling-queue items summed over users
    double queue_bytes_total = 0; ///< Lyapunov Q(t) (queued bytes) summed over users
    double energy_credit_joules_total = 0; ///< Lyapunov P(t) energy credit, summed
    std::uint64_t arrived_total = 0;
    std::uint64_t delivered_total = 0;
    // Fault / recovery counters so far (zero without a fault plan).
    std::uint64_t faults_injected = 0;
    std::uint64_t transfer_retries = 0;
    std::uint64_t dead_lettered = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t crash_restarts = 0;
    bool done = false; ///< true on the final call, after the last round
};

class progress_listener {
public:
    virtual ~progress_listener() = default;

    /// Called after every completed broker round and once more with
    /// `p.done == true` when the replay finishes. `live` holds the run's
    /// current aggregate metrics (core::export_metrics naming); it is owned
    /// by the caller and valid only for the duration of the call.
    virtual void on_round(const progress_snapshot& p, const metrics_registry& live) = 0;
};

} // namespace richnote::obs

#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "obs/json_util.hpp"

namespace richnote::obs {

histogram::histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
    RICHNOTE_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
    RICHNOTE_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must ascend");
    counts_.assign(bounds_.size() + 1, 0);
}

void histogram::observe(double value) {
    RICHNOTE_REQUIRE(!counts_.empty(), "histogram was default-constructed");
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++total_;
    sum_ += value;
}

double histogram::quantile(double q) const {
    RICHNOTE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
    if (total_ == 0) return 0.0;
    // Target rank, 1-based: the smallest bucket whose cumulative count
    // reaches it holds the quantile.
    const double rank = q * static_cast<double>(total_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t in_bucket = counts_[i];
        if (in_bucket == 0) continue;
        const double below = static_cast<double>(cumulative);
        cumulative += in_bucket;
        if (static_cast<double>(cumulative) < rank) continue;
        if (i >= bounds_.size()) return bounds_.back(); // overflow: clamp
        const double upper = bounds_[i];
        const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
        const double position =
            std::clamp((rank - below) / static_cast<double>(in_bucket), 0.0, 1.0);
        return lower + position * (upper - lower);
    }
    return bounds_.back();
}

void metrics_registry::count(std::string_view name, std::uint64_t delta) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

std::uint64_t metrics_registry::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void metrics_registry::gauge_set(std::string_view name, double value) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        gauges_.emplace(std::string(name), value);
    } else {
        it->second = value;
    }
}

double metrics_registry::gauge(std::string_view name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

histogram& metrics_registry::make_histogram(std::string_view name,
                                            std::vector<double> upper_bounds) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        RICHNOTE_REQUIRE(it->second.upper_bounds() == upper_bounds,
                         "histogram re-registered with different buckets");
        return it->second;
    }
    return histograms_.emplace(std::string(name), histogram(std::move(upper_bounds)))
        .first->second;
}

void metrics_registry::observe(std::string_view name, double value) {
    const auto it = histograms_.find(name);
    RICHNOTE_REQUIRE(it != histograms_.end(),
                     "observe() on an unregistered histogram: " + std::string(name));
    it->second.observe(value);
}

const histogram& metrics_registry::get_histogram(std::string_view name) const {
    const auto it = histograms_.find(name);
    RICHNOTE_REQUIRE(it != histograms_.end(),
                     "unknown histogram: " + std::string(name));
    return it->second;
}

bool metrics_registry::has_histogram(std::string_view name) const noexcept {
    return histograms_.find(name) != histograms_.end();
}

void metrics_registry::set_histogram(std::string_view name, histogram h) {
    RICHNOTE_REQUIRE(!h.upper_bounds().empty(),
                     "set_histogram needs a bucketed histogram");
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        histograms_.emplace(std::string(name), std::move(h));
    } else {
        it->second = std::move(h);
    }
}

void metrics_registry::set_help(std::string_view name, std::string_view text) {
    const auto it = helps_.find(name);
    if (it == helps_.end()) {
        helps_.emplace(std::string(name), std::string(text));
    } else {
        it->second = std::string(text);
    }
}

void metrics_registry::export_quantile_gauges() {
    // gauge_set touches gauges_ only, so iterating histograms_ here is safe.
    for (const auto& [name, h] : histograms_) {
        gauge_set(name + ".p50", h.quantile(0.50));
        gauge_set(name + ".p95", h.quantile(0.95));
        gauge_set(name + ".p99", h.quantile(0.99));
    }
}

void metrics_registry::write_json(std::ostream& out) const {
    std::string buf;
    buf += "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters_) {
        buf += first ? "\n    " : ",\n    ";
        first = false;
        json_string(buf, name);
        buf += ": ";
        json_number(buf, value);
    }
    buf += first ? "},\n" : "\n  },\n";
    buf += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges_) {
        buf += first ? "\n    " : ",\n    ";
        first = false;
        json_string(buf, name);
        buf += ": ";
        json_number(buf, value);
    }
    buf += first ? "},\n" : "\n  },\n";
    buf += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        buf += first ? "\n    " : ",\n    ";
        first = false;
        json_string(buf, name);
        buf += ": {\"upper_bounds\": [";
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            if (i > 0) buf += ", ";
            json_number(buf, h.upper_bounds()[i]);
        }
        buf += "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts().size(); ++i) {
            if (i > 0) buf += ", ";
            json_number(buf, h.counts()[i]);
        }
        buf += "], \"total\": ";
        json_number(buf, h.total_count());
        buf += ", \"sum\": ";
        json_number(buf, h.sum());
        buf += "}";
    }
    buf += first ? "}\n" : "\n  }\n";
    buf += "}\n";
    out << buf;
}

void metrics_registry::write_csv(std::ostream& out) const {
    std::string buf = "kind,name,field,value\n";
    auto row = [&buf](std::string_view kind, std::string_view name,
                      std::string_view field, auto value) {
        buf += kind;
        buf += ',';
        buf += name;
        buf += ',';
        buf += field;
        buf += ',';
        json_number(buf, value);
        buf += '\n';
    };
    for (const auto& [name, value] : counters_) row("counter", name, "value", value);
    for (const auto& [name, value] : gauges_) row("gauge", name, "value", value);
    for (const auto& [name, h] : histograms_) {
        for (std::size_t i = 0; i < h.counts().size(); ++i) {
            std::string field = "le_";
            if (i < h.upper_bounds().size()) {
                json_number(field, h.upper_bounds()[i]);
            } else {
                field += "inf";
            }
            row("histogram", name, field, h.counts()[i]);
        }
        row("histogram", name, "total", h.total_count());
        row("histogram", name, "sum", h.sum());
    }
    out << buf;
}

} // namespace richnote::obs

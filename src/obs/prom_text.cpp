#include "obs/prom_text.hpp"

#include <ostream>
#include <set>
#include <string>

#include "obs/json_util.hpp"
#include "obs/metrics_registry.hpp"

namespace richnote::obs {

namespace {

bool prom_name_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_number(std::string& out, double v) { json_number(out, v); }

/// Label values per the 0.0.4 text format: backslash, double-quote and
/// newline are the only escapes.
void escape_label_value(std::string& out, std::string_view value) {
    for (const char c : value) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '"') {
            out += "\\\"";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
}

/// HELP text: backslash and newline escape; quotes pass through unescaped.
void escape_help_text(std::string& out, std::string_view text) {
    for (const char c : text) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
}

/// Label-name grammar is [a-zA-Z_][a-zA-Z0-9_]* — like metric names minus
/// the colon.
std::string prometheus_label_name(std::string_view key) {
    std::string out;
    out.reserve(key.size() + 1);
    if (!key.empty() && key.front() >= '0' && key.front() <= '9') out += '_';
    for (const char c : key) {
        out += (prom_name_char(c) && c != ':') ? c : '_';
    }
    return out;
}

/// A registry series name, split on the `base{key=value,...}suffix`
/// convention (DESIGN.md §13). `dotted_base` is the label-free registry
/// name with any post-brace suffix folded back on (quantile gauges derive
/// `name{k=v}.p50`, whose base is `name.p50`); `labels` is the rendered
/// `key="escaped",...` body, empty for plain names.
struct series_name {
    std::string dotted_base;
    std::string labels;
};

series_name split_series(std::string_view raw) {
    const std::size_t open = raw.find('{');
    if (open == std::string_view::npos) return {std::string(raw), {}};
    const std::size_t close = raw.rfind('}');
    if (close == std::string_view::npos || close < open) {
        return {std::string(raw), {}};
    }
    series_name out;
    out.dotted_base = std::string(raw.substr(0, open));
    out.dotted_base += raw.substr(close + 1); // quantile-gauge suffix, if any
    std::string_view body = raw.substr(open + 1, close - open - 1);
    while (!body.empty()) {
        const std::size_t comma = body.find(',');
        const std::string_view pair = body.substr(0, comma);
        const std::size_t eq = pair.find('=');
        const std::string_view key = eq == std::string_view::npos
                                         ? pair
                                         : pair.substr(0, eq);
        const std::string_view value =
            eq == std::string_view::npos ? std::string_view{} : pair.substr(eq + 1);
        if (!out.labels.empty()) out.labels += ',';
        out.labels += prometheus_label_name(key);
        out.labels += "=\"";
        escape_label_value(out.labels, value);
        out.labels += '"';
        body = comma == std::string_view::npos ? std::string_view{}
                                               : body.substr(comma + 1);
    }
    return out;
}

/// Emits `# HELP` (when registered) and `# TYPE` for `prom`, once per base
/// name — labeled variants of one metric share a single header pair.
void announce(std::string& buf, std::set<std::string>& announced,
              const metrics_registry& registry, const series_name& series,
              const std::string& prom, std::string_view type) {
    if (!announced.insert(prom).second) return;
    const auto& helps = registry.helps();
    if (const auto it = helps.find(series.dotted_base); it != helps.end()) {
        buf += "# HELP " + prom + ' ';
        escape_help_text(buf, it->second);
        buf += '\n';
    }
    buf += "# TYPE " + prom + ' ';
    buf += type;
    buf += '\n';
}

/// `prom` plus the rendered label body (if any): `name{k="v"}`.
void append_sample_name(std::string& buf, const std::string& prom,
                        const series_name& series) {
    buf += prom;
    if (!series.labels.empty()) {
        buf += '{';
        buf += series.labels;
        buf += '}';
    }
}

} // namespace

std::string prometheus_name(std::string_view name) {
    std::string out;
    out.reserve(name.size() + 1);
    if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
    for (const char c : name) out += prom_name_char(c) ? c : '_';
    return out;
}

void write_prometheus_text(const metrics_registry& registry, std::ostream& out) {
    std::string buf;
    std::set<std::string> announced;
    for (const auto& [name, value] : registry.counters()) {
        const series_name series = split_series(name);
        const std::string prom = prometheus_name(series.dotted_base);
        announce(buf, announced, registry, series, prom, "counter");
        append_sample_name(buf, prom, series);
        buf += ' ';
        json_number(buf, value);
        buf += '\n';
    }
    for (const auto& [name, value] : registry.gauges()) {
        const series_name series = split_series(name);
        const std::string prom = prometheus_name(series.dotted_base);
        announce(buf, announced, registry, series, prom, "gauge");
        append_sample_name(buf, prom, series);
        buf += ' ';
        append_number(buf, value);
        buf += '\n';
    }
    for (const auto& [name, h] : registry.histograms()) {
        const series_name series = split_series(name);
        const std::string prom = prometheus_name(series.dotted_base);
        announce(buf, announced, registry, series, prom, "histogram");
        // The le label joins the series' own labels inside one brace pair.
        const std::string bucket_prefix =
            prom + "_bucket{" +
            (series.labels.empty() ? std::string() : series.labels + ',') +
            "le=\"";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            cumulative += h.counts()[i];
            buf += bucket_prefix;
            append_number(buf, h.upper_bounds()[i]);
            buf += "\"} ";
            json_number(buf, cumulative);
            buf += '\n';
        }
        buf += bucket_prefix;
        buf += "+Inf\"} ";
        json_number(buf, h.total_count());
        buf += '\n';
        append_sample_name(buf, prom + "_sum", series);
        buf += ' ';
        append_number(buf, h.sum());
        buf += '\n';
        append_sample_name(buf, prom + "_count", series);
        buf += ' ';
        json_number(buf, h.total_count());
        buf += '\n';
    }
    out << buf;
}

} // namespace richnote::obs

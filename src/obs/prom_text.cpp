#include "obs/prom_text.hpp"

#include <ostream>

#include "obs/json_util.hpp"
#include "obs/metrics_registry.hpp"

namespace richnote::obs {

namespace {

bool prom_name_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_number(std::string& out, double v) { json_number(out, v); }

} // namespace

std::string prometheus_name(std::string_view name) {
    std::string out;
    out.reserve(name.size() + 1);
    if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
    for (const char c : name) out += prom_name_char(c) ? c : '_';
    return out;
}

void write_prometheus_text(const metrics_registry& registry, std::ostream& out) {
    std::string buf;
    for (const auto& [name, value] : registry.counters()) {
        const std::string prom = prometheus_name(name);
        buf += "# TYPE " + prom + " counter\n";
        buf += prom;
        buf += ' ';
        json_number(buf, value);
        buf += '\n';
    }
    for (const auto& [name, value] : registry.gauges()) {
        const std::string prom = prometheus_name(name);
        buf += "# TYPE " + prom + " gauge\n";
        buf += prom;
        buf += ' ';
        append_number(buf, value);
        buf += '\n';
    }
    for (const auto& [name, h] : registry.histograms()) {
        const std::string prom = prometheus_name(name);
        buf += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            cumulative += h.counts()[i];
            buf += prom + "_bucket{le=\"";
            append_number(buf, h.upper_bounds()[i]);
            buf += "\"} ";
            json_number(buf, cumulative);
            buf += '\n';
        }
        buf += prom + "_bucket{le=\"+Inf\"} ";
        json_number(buf, h.total_count());
        buf += '\n';
        buf += prom + "_sum ";
        append_number(buf, h.sum());
        buf += '\n';
        buf += prom + "_count ";
        json_number(buf, h.total_count());
        buf += '\n';
    }
    out << buf;
}

} // namespace richnote::obs

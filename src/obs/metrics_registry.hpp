// Named metrics registry (DESIGN.md §9): counters, gauges and fixed-bucket
// histograms behind one canonical naming scheme, with deterministic JSON /
// CSV exporters.
//
// The registry is the REPORTING surface, not the hot path: per-user tallies
// stay in core::metrics_recorder's flat per-user structs (touched once per
// event with no lookups), and a finished run exports its aggregates into a
// registry under catalog names (core::export_metrics). Harnesses add their
// own series (plan-latency histograms, rounds/sec gauges) under the same
// scheme, so every tool reports through one vocabulary instead of the
// previous per-tool ad-hoc counter plumbing.
//
// Naming convention: dot-separated lowercase paths, unit-suffixed leaves —
//   richnote.delivery.delivered_total          (counter)
//   richnote.delivery.bytes_total              (counter, bytes)
//   richnote.faults.retries_total              (counter)
//   richnote.run.delivery_ratio                (gauge)
//   richnote.sched.plan_latency_us             (histogram)
// Exports are ordered by name (std::map), so equal runs emit equal bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace richnote::obs {

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket ceilings
/// in ascending order; one implicit overflow bucket catches the rest.
class histogram {
public:
    histogram() = default;
    explicit histogram(std::vector<double> upper_bounds);

    void observe(double value);

    /// Quantile estimate from the bucket counts, q in [0, 1]: the target
    /// rank is located in its bucket and interpolated linearly between the
    /// bucket's bounds (the first bucket interpolates up from 0 for
    /// positive-bounded layouts). The overflow bucket has no upper edge, so
    /// ranks landing there clamp to the highest finite bound — the same
    /// convention Prometheus' histogram_quantile uses. Returns 0 when the
    /// histogram is empty.
    double quantile(double q) const;

    const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
    /// counts()[i] pairs with upper_bounds()[i]; counts().back() overflows.
    const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
    std::uint64_t total_count() const noexcept { return total_; }
    double sum() const noexcept { return sum_; }
    double mean() const noexcept {
        return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
    }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

class metrics_registry {
public:
    /// Adds `delta` to the named counter (created at zero on first touch).
    void count(std::string_view name, std::uint64_t delta = 1);

    /// Current counter value; 0 for a name never counted.
    std::uint64_t counter(std::string_view name) const;

    /// Sets the named gauge (last write wins).
    void gauge_set(std::string_view name, double value);

    /// Current gauge value; 0 for a name never set.
    double gauge(std::string_view name) const;

    /// Registers (or fetches) the named histogram. The bounds of an already
    /// registered histogram must match — one name, one bucket layout.
    histogram& make_histogram(std::string_view name, std::vector<double> upper_bounds);

    /// Records into a histogram registered earlier; throws on unknown name
    /// (bucket layout is part of the contract, not implied by the sample).
    void observe(std::string_view name, double value);

    const histogram& get_histogram(std::string_view name) const;
    bool has_histogram(std::string_view name) const noexcept;

    /// Installs (or replaces) a histogram snapshot under `name` — for
    /// aggregators that maintain their own histograms off the hot path
    /// (lifecycle_tracker, red_recorder) and export a copy at publish time.
    void set_histogram(std::string_view name, histogram h);

    /// Registers a HELP text for the Prometheus render. Keyed by the
    /// label-free base name; prom_text emits it (escaped) above the
    /// series' # TYPE header. Purely presentational — JSON/CSV exports
    /// ignore it.
    void set_help(std::string_view name, std::string_view text);
    const std::map<std::string, std::string, std::less<>>& helps() const noexcept {
        return helps_;
    }

    std::size_t counter_count() const noexcept { return counters_.size(); }
    std::size_t gauge_count() const noexcept { return gauges_.size(); }
    std::size_t histogram_count() const noexcept { return histograms_.size(); }

    /// Name-sorted series, for exporters (Prometheus text, quantile gauges)
    /// that need to iterate rather than look up.
    const std::map<std::string, std::uint64_t, std::less<>>& counters() const noexcept {
        return counters_;
    }
    const std::map<std::string, double, std::less<>>& gauges() const noexcept {
        return gauges_;
    }
    const std::map<std::string, histogram, std::less<>>& histograms() const noexcept {
        return histograms_;
    }

    /// Derives <name>.p50 / <name>.p95 / <name>.p99 summary gauges from
    /// every registered histogram (histogram::quantile interpolation).
    /// Last-write-wins like any gauge, so re-exporting refreshes them.
    void export_quantile_gauges();

    /// JSON document {"counters": {...}, "gauges": {...}, "histograms":
    /// {...}} with names sorted — deterministic for equal contents.
    void write_json(std::ostream& out) const;

    /// Flat CSV: kind,name,field,value — one row per counter / gauge /
    /// histogram bucket, sorted by name (spreadsheet- and diff-friendly).
    void write_csv(std::ostream& out) const;

private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, histogram, std::less<>> histograms_;
    std::map<std::string, std::string, std::less<>> helps_;
};

} // namespace richnote::obs

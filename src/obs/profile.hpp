// Scoped hot-path profiling (DESIGN.md §9).
//
// RICHNOTE_PROFILE_SCOPE(slot) drops an RAII timer into a hot function.
// In a default build the macro expands to nothing — no timer, no atomic,
// no branch — which is what keeps the scheduler/broker/forest hot paths at
// their benchmarked zero-allocation throughput (BENCH_perf.json). Configure
// with -DRICHNOTE_TRACE=ON and the same scopes accumulate call counts and
// wall nanoseconds into per-slot atomics, readable via profile_read() and
// exportable into a metrics_registry.
//
// The slot set is a fixed enum rather than string keys so an enabled scope
// costs two relaxed atomic adds, never a hash lookup.
#pragma once

#include <cstdint>

#include "obs/metrics_registry.hpp"

namespace richnote::obs {

enum class profile_slot : std::uint8_t {
    broker_round = 0,   ///< core::broker::run_round
    scheduler_plan,     ///< core::scheduler::plan (all policies)
    mckp_solve,         ///< core::select_presentations
    forest_predict,     ///< ml::flat_forest batch inference
    forest_fit,         ///< ml::random_forest::fit
    sim_tick,           ///< sim::simulator round advance
    slot_count,
};

inline constexpr std::size_t profile_slot_count =
    static_cast<std::size_t>(profile_slot::slot_count);

/// Canonical metric name stem for a slot, e.g. "richnote.profile.mckp_solve".
const char* profile_slot_name(profile_slot slot) noexcept;

struct profile_totals {
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
};

/// True when this binary was compiled with RICHNOTE_TRACE.
constexpr bool profile_enabled() noexcept {
#ifdef RICHNOTE_TRACE
    return true;
#else
    return false;
#endif
}

/// Accumulated totals for one slot (all zero when profiling is compiled out).
profile_totals profile_read(profile_slot slot) noexcept;

/// Zeroes every slot (benchmarks call this between phases).
void profile_reset() noexcept;

/// Exports every non-empty slot as <stem>.calls_total counters and
/// <stem>.nanos_total counters plus a <stem>.mean_us gauge.
void profile_export(metrics_registry& registry);

#ifdef RICHNOTE_TRACE

namespace detail {

/// Per-slot accumulators; relaxed ordering is enough because readers only
/// look after the timed work has been joined.
void profile_record(profile_slot slot, std::uint64_t nanos) noexcept;
std::uint64_t profile_now_ns() noexcept;

class profile_scope {
public:
    explicit profile_scope(profile_slot slot) noexcept
        : slot_(slot), start_(profile_now_ns()) {}
    profile_scope(const profile_scope&) = delete;
    profile_scope& operator=(const profile_scope&) = delete;
    ~profile_scope() { profile_record(slot_, profile_now_ns() - start_); }

private:
    profile_slot slot_;
    std::uint64_t start_;
};

} // namespace detail

#define RICHNOTE_PROFILE_CAT2(a, b) a##b
#define RICHNOTE_PROFILE_CAT(a, b) RICHNOTE_PROFILE_CAT2(a, b)
#define RICHNOTE_PROFILE_SCOPE(slot)                      \
    ::richnote::obs::detail::profile_scope RICHNOTE_PROFILE_CAT( \
        richnote_profile_scope_, __LINE__) {              \
        slot                                              \
    }

#else

#define RICHNOTE_PROFILE_SCOPE(slot) \
    do {                             \
    } while (false)

#endif // RICHNOTE_TRACE

} // namespace richnote::obs

// Runtime sampling profiler for the hot paths (DESIGN.md §10).
//
// RICHNOTE_PROFILE_SCOPE(slot) drops an RAII timer into a hot function. The
// scopes are ALWAYS compiled — release binaries can profile themselves —
// and gated at runtime by profile_set_enabled():
//
//   idle (the default): the scope constructor is one relaxed atomic load
//   plus a predictable branch; no clock reads, no stores, no allocation.
//   This is what keeps the benchmarked round loop at its tracked
//   BENCH_perf.json throughput with the profiler compiled in.
//
//   enabled: every entry bumps a per-thread per-slot call counter, and one
//   in every profile_config::sample_every entries is timed (two
//   steady_clock reads) and recorded as a span into that thread's
//   lock-free SPSC ring buffer. Totals are estimated from the sample
//   (nanos = sampled_nanos * calls / sampled_calls), which keeps the
//   enabled overhead in the low single-digit percent range (measured
//   numbers in DESIGN.md §10).
//
// The exporter side drains the rings (profile_drain) into span records
// (slot, lane, start/end ns) that obs/span_export.hpp turns into Chrome
// trace-event JSON and collapsed-stack flamegraph text. Aggregate totals
// remain readable via profile_read() and exportable into a
// metrics_registry via profile_export().
//
// The slot set is a fixed enum rather than string keys so an enabled scope
// costs array indexing, never a hash lookup. Threads are assigned small
// dense "lane" indices; a lane freed by an exiting thread is reused by the
// next one, so the worker pools respawned every round do not grow the
// profiler's memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace richnote::obs {

enum class profile_slot : std::uint8_t {
    broker_round = 0,   ///< core::broker::run_round
    scheduler_plan,     ///< core::scheduler::plan (all policies)
    mckp_solve,         ///< core::select_presentations
    forest_predict,     ///< ml::flat_forest batch inference
    forest_fit,         ///< ml::random_forest::fit
    sim_tick,           ///< sim::simulator round advance
    slot_count,
};

inline constexpr std::size_t profile_slot_count =
    static_cast<std::size_t>(profile_slot::slot_count);

/// Canonical metric name stem for a slot, e.g. "richnote.profile.mckp_solve".
const char* profile_slot_name(profile_slot slot) noexcept;

/// Short label for a slot (span/flamegraph frames), e.g. "mckp_solve".
const char* profile_slot_label(profile_slot slot) noexcept;

/// One timed scope entry, as drained from a thread's ring buffer.
struct span_record {
    std::uint64_t start_ns = 0; ///< steady_clock nanos at scope entry
    std::uint64_t end_ns = 0;   ///< steady_clock nanos at scope exit
    std::uint32_t lane = 0;     ///< dense thread lane index (reused across threads)
    profile_slot slot = profile_slot::broker_round;
};

struct profile_totals {
    std::uint64_t calls = 0;         ///< scope entries while enabled
    std::uint64_t sampled_calls = 0; ///< entries that were actually timed
    std::uint64_t sampled_nanos = 0; ///< wall nanos across the timed entries
    /// Estimated total wall nanos: sampled_nanos scaled by calls /
    /// sampled_calls (equal to sampled_nanos when every call is sampled).
    std::uint64_t nanos = 0;
};

struct profile_config {
    /// Time one in every `sample_every` scope entries per thread (1 = time
    /// every entry). Untimed entries still count calls.
    std::uint32_t sample_every = 16;
    /// Span-ring capacity per thread lane, rounded up to a power of two.
    /// When a ring fills between drains, new spans are dropped (counted).
    std::uint32_t ring_capacity = 1u << 13;
};

/// Installs a new sampling configuration. Call while profiling is disabled;
/// the ring capacity applies to lanes created afterwards.
void profile_configure(const profile_config& cfg);
profile_config profile_configuration();

/// Turns sampling on/off at runtime. Scopes already on the stack when the
/// flag flips finish under their entry-time decision.
void profile_set_enabled(bool enabled);

/// True when sampling is currently enabled (runtime state, not a build flag).
bool profile_enabled() noexcept;

/// Accumulated totals for one slot across all thread lanes.
profile_totals profile_read(profile_slot slot) noexcept;

/// Zeroes every slot's totals and discards buffered spans. Call while the
/// profiled threads are quiescent (benchmarks call this between phases).
void profile_reset() noexcept;

/// Drains buffered spans from every lane's ring into `out` (appended).
/// Single-consumer: have one thread drain at a time. Returns the number of
/// spans appended.
std::size_t profile_drain(std::vector<span_record>& out);

/// Spans dropped because a lane's ring was full between drains.
std::uint64_t profile_dropped() noexcept;

/// Exports every non-empty slot as <stem>.calls_total / <stem>.nanos_total
/// counters plus a <stem>.mean_us gauge, and the drop counter when nonzero.
void profile_export(metrics_registry& registry);

namespace detail {

/// The only cost of an idle scope: one relaxed load of this flag.
extern std::atomic_bool g_profile_on;

struct thread_state;

/// Registers (or reuses) this thread's lane and counts one entry for
/// `slot`. Sets `start_ns` to the entry timestamp when this entry was
/// chosen for timing, 0 otherwise. Returns the lane state for the exit.
thread_state& profile_enter(profile_slot slot, std::uint64_t& start_ns) noexcept;

/// Records the timed span / totals for an entry that had start_ns != 0.
void profile_leave(thread_state& state, profile_slot slot,
                   std::uint64_t start_ns) noexcept;

} // namespace detail

class profile_scope {
public:
    explicit profile_scope(profile_slot slot) noexcept {
        if (!detail::g_profile_on.load(std::memory_order_relaxed)) return;
        slot_ = slot;
        state_ = &detail::profile_enter(slot, start_);
    }
    profile_scope(const profile_scope&) = delete;
    profile_scope& operator=(const profile_scope&) = delete;
    ~profile_scope() {
        if (state_ != nullptr && start_ != 0)
            detail::profile_leave(*state_, slot_, start_);
    }

private:
    detail::thread_state* state_ = nullptr;
    std::uint64_t start_ = 0;
    profile_slot slot_ = profile_slot::broker_round;
};

#define RICHNOTE_PROFILE_CAT2(a, b) a##b
#define RICHNOTE_PROFILE_CAT(a, b) RICHNOTE_PROFILE_CAT2(a, b)
#define RICHNOTE_PROFILE_SCOPE(slot)                  \
    ::richnote::obs::profile_scope RICHNOTE_PROFILE_CAT( \
        richnote_profile_scope_, __LINE__) {          \
        slot                                          \
    }

} // namespace richnote::obs

// Structured per-decision tracing (DESIGN.md §9).
//
// A trace_sink collects newline-delimited JSON events — one object per
// scheduler decision, delivery, fault, retry transition or round summary —
// bucketed per user. The contract mirrors metrics_recorder: every emission
// touches only the emitting user's bucket, so the sink is safe under the
// experiment's user-sharded worker threads without a single lock, and the
// merged stream (ordered by round, then user, then per-user sequence) is a
// pure function of the run's seed: two runs at the same seed produce
// byte-identical NDJSON no matter the thread count.
//
// Cost model: a null sink pointer is the off switch. Emitting call sites
// guard with `if (sink != nullptr)`, so a run without tracing pays one
// predictable branch per round and allocates nothing.
//
// Durability: attach_file() switches the sink to incremental streaming —
// the driver calls flush_through(round) after each completed round, which
// appends that round's lines (in the same merged order) and fsync-less
// flushes the stream, so a run killed mid-sweep still leaves a valid
// NDJSON prefix of whole rounds on disk. A destructor + atexit guard
// flushes whatever is buffered on any orderly exit, including exit() from
// the middle of a sweep.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/json_util.hpp"

namespace richnote::obs {

class trace_sink;

/// Builds one event line in place. Obtained from trace_sink::event(); the
/// line is finalized and stored when the builder goes out of scope (RAII),
/// so an emitting site reads as one expression chain:
///   sink->event(user, round, "decision").field("item", id).field("level", lvl);
class trace_event {
public:
    trace_event(const trace_event&) = delete;
    trace_event& operator=(const trace_event&) = delete;
    trace_event(trace_event&& other) noexcept;
    trace_event& operator=(trace_event&&) = delete;
    ~trace_event();

    /// Appends `"key": value`. Integral types map to JSON integers, floating
    /// point to deterministic %.17g numbers, bool to true/false, everything
    /// string-like to an escaped JSON string.
    template <class T>
    trace_event& field(std::string_view key, T v) & {
        line_ += ',';
        json_string(line_, key);
        line_ += ':';
        if constexpr (std::is_same_v<T, bool>) {
            line_ += v ? "true" : "false";
        } else if constexpr (std::is_floating_point_v<T>) {
            json_number(line_, static_cast<double>(v));
        } else if constexpr (std::is_integral_v<T> && std::is_unsigned_v<T>) {
            json_number(line_, static_cast<std::uint64_t>(v));
        } else if constexpr (std::is_integral_v<T>) {
            json_number(line_, static_cast<std::int64_t>(v));
        } else {
            json_string(line_, std::string_view(v));
        }
        return *this;
    }

    template <class T>
    trace_event&& field(std::string_view key, T v) && {
        return std::move(field(key, v));
    }

private:
    friend class trace_sink;
    trace_event(trace_sink& sink, std::uint32_t user, std::uint64_t round,
                std::string_view type);

    trace_sink* sink_;
    std::uint32_t user_;
    std::uint64_t round_;
    std::string line_;
};

class trace_sink {
public:
    /// One bucket per user; emissions for users >= user_count throw.
    explicit trace_sink(std::size_t user_count);
    ~trace_sink();

    trace_sink(const trace_sink&) = delete;
    trace_sink& operator=(const trace_sink&) = delete;

    std::size_t user_count() const noexcept { return buckets_.size(); }

    /// Starts an event of `type` for (user, round). Common fields ("type",
    /// "user", "round") are written up front; chain .field(...) for the rest.
    trace_event event(std::uint32_t user, std::uint64_t round, std::string_view type);

    /// One stored event line (no trailing newline) plus its merge key.
    struct stored_event {
        std::uint64_t round = 0;
        std::uint32_t seq = 0; ///< per-user emission index
        std::string json;
    };

    /// Events of one user in emission order (tests / in-process analysis).
    const std::vector<stored_event>& events_of(std::uint32_t user) const;

    /// Total events across all users.
    std::size_t event_count() const noexcept;

    /// Writes the merged NDJSON stream ordered by (round, user, seq) — the
    /// deterministic order that makes fixed-seed runs byte-identical.
    void write_ndjson(std::ostream& out) const;

    // ----- incremental streaming (crash-durable NDJSON prefix) -----

    /// Opens `path` for incremental streaming and registers the sink with
    /// the process-wide atexit flush guard. Throws if the file cannot be
    /// opened or a file is already attached.
    void attach_file(const std::string& path);

    /// True when a file is attached and not yet finalized.
    bool streaming() const noexcept { return out_ != nullptr; }

    /// Appends every not-yet-written event with event.round <= round, in
    /// merged (round, user, seq) order, and flushes the stream. Correct as
    /// long as all emissions for rounds <= `round` have happened — i.e.
    /// call it from the driver after a round completes. The concatenation
    /// of all flushes plus finalize() is byte-identical to write_ndjson().
    void flush_through(std::uint64_t round);

    /// Flushes all remaining buffered events and closes the attached file.
    /// Idempotent; invoked by the destructor and by the atexit guard.
    void finalize();

private:
    friend class trace_event;
    void store(std::uint32_t user, std::uint64_t round, std::string line);

    std::vector<std::vector<stored_event>> buckets_;
    std::unique_ptr<std::ofstream> out_; ///< non-null while streaming
    std::vector<std::size_t> written_;   ///< per-user count of streamed events
};

} // namespace richnote::obs

// Prometheus text exposition (format 0.0.4) for a metrics_registry — what
// the embedded expo_server serves at /metrics.
//
// The registry's dot-separated catalog names are mapped onto the Prometheus
// grammar by replacing every character outside [a-zA-Z0-9_:] with '_'
// (richnote.delivery.bytes_total -> richnote_delivery_bytes_total). Fixed-
// bucket histograms become the standard cumulative _bucket{le="..."} series
// plus _sum and _count. Output is name-ordered (the registry's maps), so
// equal registries render equal bytes.
//
// Labels: a registry name of the form `base{key=value,...}` renders as the
// labeled series `base{key="value",...}` — one shared # TYPE (and # HELP,
// when registered via metrics_registry::set_help) header per base name.
// Label values are escaped per the 0.0.4 text format (backslash, newline,
// double-quote); HELP text escapes backslash and newline. Text after the
// closing brace folds back onto the base (`name{k=v}.p50` is the labeled
// `name_p50` gauge), which is what export_quantile_gauges produces for
// labeled histograms. Raw label values must not contain ',' or '}' — the
// registry-name convention has no quoting layer.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace richnote::obs {

class metrics_registry;

/// Registry name -> Prometheus metric name (invalid chars become '_'; a
/// leading digit gets a '_' prefix).
std::string prometheus_name(std::string_view name);

/// Renders the whole registry in Prometheus text format, one # TYPE header
/// per series.
void write_prometheus_text(const metrics_registry& registry, std::ostream& out);

} // namespace richnote::obs

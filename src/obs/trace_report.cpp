#include "obs/trace_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace richnote::obs {

namespace {

void skip_spaces(std::string_view s, std::size_t& i) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

bool parse_string(std::string_view s, std::size_t& i, std::string& out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size()) {
        const char c = s[i++];
        if (c == '"') return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (i >= s.size()) return false;
        const char esc = s[i++];
        switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
            // The sink only escapes control characters; decode the code
            // point as a raw byte (sub-0x80 in practice).
            if (i + 4 > s.size()) return false;
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
                const char h = s[i++];
                code <<= 4;
                if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                else return false;
            }
            out += static_cast<char>(code & 0xff);
            break;
        }
        default: return false;
        }
    }
    return false;
}

bool parse_value(std::string_view s, std::size_t& i, trace_value& out) {
    skip_spaces(s, i);
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '"') {
        out.type = trace_value::kind::string;
        return parse_string(s, i, out.str);
    }
    if (c == 't' && s.substr(i, 4) == "true") {
        out.type = trace_value::kind::boolean;
        out.flag = true;
        i += 4;
        return true;
    }
    if (c == 'f' && s.substr(i, 5) == "false") {
        out.type = trace_value::kind::boolean;
        out.flag = false;
        i += 5;
        return true;
    }
    // Number: consume the JSON number grammar's character set and let
    // strtod validate.
    const std::size_t begin = i;
    while (i < s.size() &&
           (s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || (s[i] >= '0' && s[i] <= '9')))
        ++i;
    if (i == begin) return false;
    const std::string token(s.substr(begin, i - begin));
    char* end = nullptr;
    out.type = trace_value::kind::number;
    out.num = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
}

} // namespace

bool parse_flat_json(std::string_view line,
                     std::vector<std::pair<std::string, trace_value>>& out) {
    out.clear();
    std::size_t i = 0;
    skip_spaces(line, i);
    if (i >= line.size() || line[i] != '{') return false;
    ++i;
    skip_spaces(line, i);
    if (i < line.size() && line[i] == '}') {
        ++i;
    } else {
        while (true) {
            skip_spaces(line, i);
            std::string key;
            if (!parse_string(line, i, key)) return false;
            skip_spaces(line, i);
            if (i >= line.size() || line[i] != ':') return false;
            ++i;
            trace_value value;
            if (!parse_value(line, i, value)) return false;
            out.emplace_back(std::move(key), std::move(value));
            skip_spaces(line, i);
            if (i >= line.size()) return false;
            if (line[i] == ',') {
                ++i;
                continue;
            }
            if (line[i] == '}') {
                ++i;
                break;
            }
            return false;
        }
    }
    skip_spaces(line, i);
    return i == line.size();
}

namespace {

double nearest_rank(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    return sorted[rank - 1];
}

field_stats make_stats(std::vector<double>& samples) {
    field_stats st;
    st.count = samples.size();
    if (samples.empty()) return st;
    std::sort(samples.begin(), samples.end());
    st.min = samples.front();
    st.max = samples.back();
    st.p50 = nearest_rank(samples, 0.50);
    st.p95 = nearest_rank(samples, 0.95);
    st.p99 = nearest_rank(samples, 0.99);
    double sum = 0.0;
    for (double v : samples) sum += v;
    st.mean = sum / static_cast<double>(samples.size());
    return st;
}

std::string format_number(double v) {
    // Fixed human-readable precision (the report is for eyes, not replay;
    // determinism comes from the deterministic inputs).
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
}

} // namespace

trace_report build_trace_report(std::istream& ndjson, std::size_t top_n) {
    trace_report report;
    // samples[type][field] — kept out of the report struct so the report
    // itself stays small.
    std::map<std::string, std::map<std::string, std::vector<double>>> samples;
    struct rollup_acc {
        std::uint64_t events = 0;
        std::uint64_t delivers = 0;
        double utility = 0.0;
        double delay_sum = 0.0;
    };
    std::map<std::uint32_t, rollup_acc> per_user;

    std::string line;
    std::vector<std::pair<std::string, trace_value>> fields;
    while (std::getline(ndjson, line)) {
        if (line.empty()) continue;
        if (!parse_flat_json(line, fields)) {
            ++report.skipped_lines;
            continue;
        }
        std::string type = "?";
        double user = -1.0, round = -1.0, utility = 0.0, delay = 0.0;
        bool is_deliver = false;
        for (const auto& [key, value] : fields) {
            if (key == "type" && value.type == trace_value::kind::string) {
                type = value.str;
                is_deliver = type == "deliver";
            } else if (key == "user" && value.type == trace_value::kind::number) {
                user = value.num;
            } else if (key == "round" && value.type == trace_value::kind::number) {
                round = value.num;
            } else if (key == "utility") {
                utility = value.num;
            } else if (key == "delay_sec") {
                delay = value.num;
            }
        }
        ++report.total_events;
        auto& type_stats = report.by_type[type];
        ++type_stats.count;
        auto& type_samples = samples[type];
        for (const auto& [key, value] : fields) {
            if (value.type != trace_value::kind::number) continue;
            if (key == "user" || key == "round" || key == "item") continue;
            type_samples[key].push_back(value.num);
        }
        if (round >= 0.0)
            report.rounds = std::max(report.rounds,
                                     static_cast<std::uint64_t>(round) + 1);
        if (user >= 0.0) {
            rollup_acc& acc = per_user[static_cast<std::uint32_t>(user)];
            ++acc.events;
            if (is_deliver) {
                ++acc.delivers;
                acc.utility += utility;
                acc.delay_sum += delay;
            }
        }
    }

    for (auto& [type, type_samples] : samples) {
        for (auto& [field, values] : type_samples)
            report.by_type[type].fields[field] = make_stats(values);
    }

    report.users = per_user.size();
    report.top_users.reserve(per_user.size());
    for (const auto& [user, acc] : per_user) {
        user_rollup r;
        r.user = user;
        r.events = acc.events;
        r.delivers = acc.delivers;
        r.utility = acc.utility;
        r.delay_sec = acc.delivers > 0
                          ? acc.delay_sum / static_cast<double>(acc.delivers)
                          : 0.0;
        report.top_users.push_back(r);
    }
    std::sort(report.top_users.begin(), report.top_users.end(),
              [](const user_rollup& a, const user_rollup& b) {
                  if (a.events != b.events) return a.events > b.events;
                  return a.user < b.user;
              });
    if (report.top_users.size() > top_n) report.top_users.resize(top_n);
    return report;
}

void write_trace_report(const trace_report& report, std::ostream& out) {
    out << "trace report: " << report.total_events << " events, "
        << report.rounds << " rounds, " << report.users << " users";
    if (report.skipped_lines > 0)
        out << " (" << report.skipped_lines << " malformed lines skipped)";
    out << "\n\n";

    out << "== events by type ==\n";
    for (const auto& [type, stats] : report.by_type)
        out << "  " << type << "  " << stats.count << "\n";

    for (const auto& [type, stats] : report.by_type) {
        if (stats.fields.empty()) continue;
        out << "\n== " << type << " (" << stats.count << " events) ==\n";
        out << "  field  count  min  p50  p95  p99  max  mean\n";
        for (const auto& [field, st] : stats.fields) {
            out << "  " << field << "  " << st.count << "  "
                << format_number(st.min) << "  " << format_number(st.p50) << "  "
                << format_number(st.p95) << "  " << format_number(st.p99) << "  "
                << format_number(st.max) << "  " << format_number(st.mean) << "\n";
        }
    }

    if (!report.top_users.empty()) {
        out << "\n== top users by events ==\n";
        out << "  user  events  delivers  utility_sum  mean_delay_sec\n";
        for (const user_rollup& r : report.top_users) {
            out << "  " << r.user << "  " << r.events << "  " << r.delivers << "  "
                << format_number(r.utility) << "  " << format_number(r.delay_sec)
                << "\n";
        }
    }
}

} // namespace richnote::obs

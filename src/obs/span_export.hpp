// Timeline exporters for profiler spans (DESIGN.md §10).
//
// Both exporters are pure functions of the span vector: timestamps are
// rebased to the earliest span start, spans are sorted into a canonical
// order, and numbers are printed deterministically — so a fixed input
// produces byte-identical output (golden tests feed synthetic spans).
//
//   write_chrome_trace      Chrome trace-event JSON ("X" complete events,
//                           one tid per profiler lane). Open the file at
//                           chrome://tracing or https://ui.perfetto.dev.
//   write_collapsed_stacks  Collapsed-stack flamegraph text (one line per
//                           stack, "frame;frame <self_nanos>"), the input
//                           format of Brendan Gregg's flamegraph.pl and of
//                           speedscope. Nesting is reconstructed per lane
//                           by span containment, so a sampled mckp_solve
//                           span inside a sampled broker_round span shows
//                           up as broker_round;mckp_solve.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/profile.hpp"

namespace richnote::obs {

/// Writes `spans` as a Chrome trace-event JSON document.
void write_chrome_trace(const std::vector<span_record>& spans, std::ostream& out);

/// Writes `spans` as collapsed flamegraph stacks weighted by self-time
/// nanoseconds (a span's duration minus its contained child spans).
void write_collapsed_stacks(const std::vector<span_record>& spans, std::ostream& out);

} // namespace richnote::obs

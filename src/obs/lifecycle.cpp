#include "obs/lifecycle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "obs/json_util.hpp"
#include "obs/trace_report.hpp"

namespace richnote::obs {

namespace {

/// Bucket ceilings (microseconds) shared by the four stage-latency
/// histograms: 50us .. 5min, roughly geometric. Stage gaps in a live
/// service span sub-millisecond (same-round admission) to whole timer
/// intervals, so the layout covers both ends.
std::vector<double> stage_bounds_us() {
    return {50.0,     100.0,    250.0,    500.0,  1000.0, 2500.0, 5000.0,
            10000.0,  25000.0,  50000.0,  1e5,    2.5e5,  5e5,    1e6,
            2.5e6,    5e6,      1e7,      3e7,    6e7,    3e8};
}

/// HTTP handler durations: 100us .. 10s.
std::vector<double> red_bounds_us() {
    return {100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
            25000.0, 50000.0, 1e5, 5e5, 1e6, 5e6, 1e7};
}

double micros_between(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double, std::micro>(to - from).count();
}

std::uint64_t hash_id(std::uint64_t id) noexcept {
    // Fibonacci multiplicative hash; the top bits pick the stripe so
    // sequential wire ids spread across shards.
    return (id * 0x9e3779b97f4a7c15ULL) >> 52;
}

} // namespace

lifecycle_tracker::lifecycle_tracker(std::size_t exemplar_capacity)
    : exemplar_capacity_(std::max<std::size_t>(1, exemplar_capacity)),
      ingest_to_admit_(stage_bounds_us()),
      admit_to_plan_(stage_bounds_us()),
      plan_to_deliver_(stage_bounds_us()),
      e2e_(stage_bounds_us()) {}

lifecycle_tracker::shard& lifecycle_tracker::shard_of(
    std::uint64_t id) const noexcept {
    return shards_[hash_id(id) % shard_count];
}

// ----- hot path: hooks are buffered appends, never map probes -----

void lifecycle_tracker::append(std::uint64_t id, stage_event::kind what,
                               std::uint64_t round, std::uint32_t extra,
                               bool stamp) {
    stage_event e;
    e.id = id;
    e.round = round;
    e.extra = extra;
    e.what = what;
    // One clock read per transition that needs a latency stamp; terminal
    // and bookkeeping events replay fine without one.
    if (stamp) e.at = clock::now();
    shard& s = shard_of(id);
    std::lock_guard<std::mutex> lock(s.mutex);
    s.pending.push_back(e);
    if (s.pending.size() >= fold_backstop) fold_shard_locked(s);
}

void lifecycle_tracker::on_ingested(std::uint64_t id, std::uint32_t user) {
    append(id, stage_event::kind::ingest, 0, user, /*stamp=*/true);
}

void lifecycle_tracker::abandon(std::uint64_t id) {
    append(id, stage_event::kind::abandon, 0, 0, /*stamp=*/false);
}

void lifecycle_tracker::on_admitted(std::uint64_t id, std::uint64_t round) {
    append(id, stage_event::kind::admit, round, 0, /*stamp=*/true);
}

void lifecycle_tracker::on_planned(std::uint64_t id, std::uint64_t round,
                                   std::uint32_t level) {
    append(id, stage_event::kind::plan, round, level, /*stamp=*/true);
}

void lifecycle_tracker::on_attempt(std::uint64_t id, std::uint64_t round) {
    append(id, stage_event::kind::attempt, round, 0, /*stamp=*/false);
}

void lifecycle_tracker::on_delivered(std::uint64_t id, std::uint64_t round) {
    append(id, stage_event::kind::deliver, round, 0, /*stamp=*/true);
}

void lifecycle_tracker::on_dead_lettered(std::uint64_t id, std::uint64_t round) {
    append(id, stage_event::kind::dead_letter, round, 0, /*stamp=*/false);
}

// ----- fold: replay buffered transitions into the aggregated view -----

void lifecycle_tracker::apply(shard& s, const stage_event& e) const {
    switch (e.what) {
    case stage_event::kind::ingest: {
        record& r = s.live[e.id];
        if (r.ingested == clock::time_point{}) {
            // A re-published id keeps the first stamp: the original is
            // still the in-flight timeline; the duplicate is suppressed
            // downstream.
            r.user = e.extra;
            r.ingested = e.at;
        }
        return;
    }
    case stage_event::kind::abandon:
        s.live.erase(e.id);
        return;
    case stage_event::kind::admit: {
        const auto it = s.live.find(e.id);
        if (it == s.live.end() || it->second.admitted) return;
        it->second.admitted = true;
        it->second.admit_round = e.round;
        it->second.admitted_at = e.at;
        return;
    }
    case stage_event::kind::plan: {
        const auto it = s.live.find(e.id);
        if (it == s.live.end() || it->second.planned) return;
        it->second.planned = true;
        it->second.plan_round = e.round;
        it->second.level = e.extra;
        it->second.planned_at = e.at;
        return;
    }
    case stage_event::kind::attempt: {
        const auto it = s.live.find(e.id);
        if (it != s.live.end()) ++it->second.attempts;
        return;
    }
    case stage_event::kind::deliver:
    case stage_event::kind::dead_letter: {
        const auto it = s.live.find(e.id);
        if (it == s.live.end()) return;
        record r = it->second;
        s.live.erase(it);
        finish(std::move(r), e);
        return;
    }
    }
}

void lifecycle_tracker::finish(record r, const stage_event& e) const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (e.what == stage_event::kind::dead_letter) {
        ++dead_lettered_;
        return;
    }
    ++delivered_;
    // Stages a timeline never reached collapse onto the previous stamp, so
    // the four latencies always telescope to e2e.
    const clock::time_point admit_t = r.admitted ? r.admitted_at : r.ingested;
    const clock::time_point plan_t = r.planned ? r.planned_at : admit_t;
    const double i2a = micros_between(r.ingested, admit_t);
    const double a2p = micros_between(admit_t, plan_t);
    const double p2d = micros_between(plan_t, e.at);
    const double e2e = micros_between(r.ingested, e.at);
    ingest_to_admit_.observe(i2a);
    admit_to_plan_.observe(a2p);
    plan_to_deliver_.observe(p2d);
    e2e_.observe(e2e);

    exemplar ex;
    ex.id = e.id;
    ex.user = r.user;
    ex.admit_round = r.admit_round;
    ex.plan_round = r.plan_round;
    ex.final_round = e.round;
    ex.level = r.level;
    ex.attempts = r.attempts;
    ex.ingest_to_admit_us = i2a;
    ex.admit_to_plan_us = a2p;
    ex.plan_to_deliver_us = p2d;
    ex.e2e_us = e2e;
    if (exemplars_.size() < exemplar_capacity_) {
        exemplars_.push_back(ex);
        return;
    }
    // Full ring: displace the least-bad kept timeline if this one is worse.
    std::size_t weakest = 0;
    for (std::size_t i = 1; i < exemplars_.size(); ++i) {
        if (exemplars_[i].e2e_us < exemplars_[weakest].e2e_us) weakest = i;
    }
    if (ex.e2e_us > exemplars_[weakest].e2e_us) exemplars_[weakest] = ex;
}

void lifecycle_tracker::fold_shard_locked(shard& s) const {
    // Replay in append order: per id that IS causal order (single owner
    // thread per id, ring handoff orders ingest before the rest). clear()
    // keeps capacity, so steady-state appends never reallocate.
    for (const stage_event& e : s.pending) apply(s, e);
    s.pending.clear();
}

void lifecycle_tracker::fold() const {
    for (shard& s : shards_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.pending.empty()) fold_shard_locked(s);
    }
}

std::uint64_t lifecycle_tracker::tracked() const {
    fold();
    std::uint64_t total = 0;
    for (const shard& s : shards_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        total += s.live.size();
    }
    return total;
}

std::uint64_t lifecycle_tracker::delivered() const {
    fold();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return delivered_;
}

std::uint64_t lifecycle_tracker::dead_lettered() const {
    fold();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return dead_lettered_;
}

void lifecycle_tracker::export_metrics(metrics_registry& registry) const {
    const std::uint64_t in_flight = tracked(); // folds pending events first
    std::lock_guard<std::mutex> lock(stats_mutex_);
    registry.set_histogram("richnote.svc.ingest_to_admit_us", ingest_to_admit_);
    registry.set_histogram("richnote.svc.admit_to_plan_us", admit_to_plan_);
    registry.set_histogram("richnote.svc.plan_to_deliver_us", plan_to_deliver_);
    registry.set_histogram("richnote.svc.e2e_us", e2e_);
    registry.count("richnote.svc.lifecycle.delivered_total", delivered_);
    registry.count("richnote.svc.lifecycle.dead_lettered_total", dead_lettered_);
    registry.gauge_set("richnote.svc.lifecycle.in_flight",
                       static_cast<double>(in_flight));
    registry.count("richnote.svc.stage_observations_total{stage=ingest_to_admit}",
                   ingest_to_admit_.total_count());
    registry.count("richnote.svc.stage_observations_total{stage=admit_to_plan}",
                   admit_to_plan_.total_count());
    registry.count("richnote.svc.stage_observations_total{stage=plan_to_deliver}",
                   plan_to_deliver_.total_count());
    registry.count("richnote.svc.stage_observations_total{stage=e2e}",
                   e2e_.total_count());
    registry.set_help("richnote.svc.ingest_to_admit_us",
                      "Wall-clock latency from wire ingest to broker admission "
                      "(microseconds)");
    registry.set_help("richnote.svc.admit_to_plan_us",
                      "Wall-clock latency from admission to first delivery plan "
                      "(microseconds)");
    registry.set_help("richnote.svc.plan_to_deliver_us",
                      "Wall-clock latency from first plan to completed delivery "
                      "(microseconds)");
    registry.set_help("richnote.svc.e2e_us",
                      "End-to-end wall-clock latency, ingest to delivery "
                      "(microseconds)");
    registry.set_help("richnote.svc.stage_observations_total",
                      "Completed-delivery samples folded into each lifecycle "
                      "stage histogram");
    registry.set_help("richnote.svc.lifecycle.in_flight",
                      "Notifications ingested but not yet delivered or "
                      "dead-lettered");
}

std::vector<lifecycle_tracker::exemplar> lifecycle_tracker::exemplars() const {
    fold();
    std::vector<exemplar> out;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        out = exemplars_;
    }
    std::sort(out.begin(), out.end(), [](const exemplar& a, const exemplar& b) {
        if (a.e2e_us != b.e2e_us) return a.e2e_us > b.e2e_us;
        return a.id < b.id;
    });
    return out;
}

std::string lifecycle_tracker::exemplars_json() const {
    const std::vector<exemplar> worst = exemplars();
    std::string out = "{\"exemplars\":[";
    bool first = true;
    for (const exemplar& ex : worst) {
        if (!first) out += ',';
        first = false;
        out += "{\"id\":";
        json_number(out, ex.id);
        out += ",\"user\":";
        json_number(out, static_cast<std::uint64_t>(ex.user));
        out += ",\"admit_round\":";
        json_number(out, ex.admit_round);
        out += ",\"plan_round\":";
        json_number(out, ex.plan_round);
        out += ",\"final_round\":";
        json_number(out, ex.final_round);
        out += ",\"level\":";
        json_number(out, static_cast<std::uint64_t>(ex.level));
        out += ",\"attempts\":";
        json_number(out, ex.attempts);
        out += ",\"ingest_to_admit_us\":";
        json_number(out, ex.ingest_to_admit_us);
        out += ",\"admit_to_plan_us\":";
        json_number(out, ex.admit_to_plan_us);
        out += ",\"plan_to_deliver_us\":";
        json_number(out, ex.plan_to_deliver_us);
        out += ",\"e2e_us\":";
        json_number(out, ex.e2e_us);
        out += '}';
    }
    out += "]}\n";
    return out;
}

// ------------------------------------------------------------------ RED ----

void red_recorder::observe(std::string_view endpoint, int status,
                           double duration_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(endpoint);
    if (it == series_.end()) {
        series s;
        s.duration = histogram(red_bounds_us());
        it = series_.emplace(std::string(endpoint), std::move(s)).first;
    }
    ++it->second.requests;
    if (status >= 500) ++it->second.errors;
    it->second.duration.observe(duration_us);
}

void red_recorder::export_metrics(metrics_registry& registry) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [endpoint, s] : series_) {
        const std::string label = "{endpoint=" + endpoint + "}";
        registry.count("richnote.svc.http.requests_total" + label, s.requests);
        registry.count("richnote.svc.http.errors_total" + label, s.errors);
        registry.set_histogram("richnote.svc.http.duration_us" + label, s.duration);
    }
    if (!series_.empty()) {
        registry.set_help("richnote.svc.http.requests_total",
                          "HTTP requests handled, by service endpoint");
        registry.set_help("richnote.svc.http.errors_total",
                          "HTTP 5xx responses, by service endpoint");
        registry.set_help("richnote.svc.http.duration_us",
                          "HTTP handler duration by service endpoint "
                          "(microseconds)");
    }
}

// -------------------------------------------------------------- explain ----

namespace {

const trace_value* find_field(
    const std::vector<std::pair<std::string, trace_value>>& fields,
    std::string_view key) {
    for (const auto& [name, value] : fields) {
        if (name == key) return &value;
    }
    return nullptr;
}

/// Deterministic human-friendly number: integers print exactly, the rest
/// at %.6g. Pure function of the parsed double, so explain output is as
/// byte-stable as the trace it reads.
std::string fmt_num(double v) {
    char buf[40];
    if (std::floor(v) == v && std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
}

/// " key=value" when the field exists, "" otherwise (truncation-tolerant:
/// a crash-recovered trace prefix may lack fields).
std::string num_kv(const std::vector<std::pair<std::string, trace_value>>& fields,
                   std::string_view key) {
    const trace_value* v = find_field(fields, key);
    if (v == nullptr || v->type != trace_value::kind::number) return "";
    std::string out = " ";
    out += key;
    out += '=';
    out += fmt_num(v->num);
    return out;
}

std::string stage_row(std::string_view stage, double round, std::string detail) {
    std::string row = "  ";
    row += stage;
    if (stage.size() < 14) row.append(14 - stage.size(), ' ');
    row += "round ";
    row += fmt_num(round);
    if (!detail.empty()) {
        row += "  ";
        row += detail;
    }
    return row;
}

} // namespace

bool write_explain(std::istream& ndjson, std::uint64_t id, std::ostream& out) {
    std::string line;
    std::vector<std::pair<std::string, trace_value>> fields;
    std::vector<std::string> rows;
    bool have_user = false;
    double user = 0.0;
    std::uint64_t attempts = 0;
    std::string outcome = "in_flight";
    double outcome_round = 0.0;

    while (std::getline(ndjson, line)) {
        if (line.empty()) continue;
        fields.clear();
        if (!parse_flat_json(line, fields)) continue; // truncated tail etc.
        const trace_value* type = find_field(fields, "type");
        const trace_value* round = find_field(fields, "round");
        const trace_value* item = find_field(fields, "item");
        if (type == nullptr || type->type != trace_value::kind::string) continue;
        if (round == nullptr || round->type != trace_value::kind::number) continue;
        if (item == nullptr || item->type != trace_value::kind::number ||
            item->num != static_cast<double>(id)) {
            continue;
        }
        if (const trace_value* u = find_field(fields, "user");
            u != nullptr && u->type == trace_value::kind::number && !have_user) {
            have_user = true;
            user = u->num;
        }
        const double r = round->num;
        const std::string& kind = type->str;
        if (kind == "lc_ingest") {
            rows.push_back(stage_row("ingested", r,
                                     num_kv(fields, "created_at").substr(1)));
        } else if (kind == "lc_admit") {
            rows.push_back(stage_row("admitted", r,
                                     num_kv(fields, "wait_rounds").substr(1)));
        } else if (kind == "decision") {
            std::string detail = "level";
            detail += num_kv(fields, "level").substr(6); // "=N" -> value only
            if (const trace_value* lv = find_field(fields, "levels");
                lv != nullptr && lv->type == trace_value::kind::number) {
                detail += '/';
                detail += fmt_num(lv->num);
            }
            detail += num_kv(fields, "size_bytes");
            rows.push_back(stage_row("planned", r, detail));
            std::string eq7 = "  "; // continuation line under the stage row
            eq7.append(14, ' ');
            eq7 += "eq7:";
            eq7 += num_kv(fields, "term_queue");
            eq7 += num_kv(fields, "term_energy");
            eq7 += num_kv(fields, "term_value");
            eq7 += num_kv(fields, "adjusted");
            eq7 += num_kv(fields, "utility");
            rows.push_back(std::move(eq7));
        } else if (kind == "transfer_cut") {
            ++attempts;
            std::string detail = "cut mid-flight:";
            detail += num_kv(fields, "moved_bytes");
            detail += num_kv(fields, "high_water_bytes");
            detail += num_kv(fields, "fraction");
            rows.push_back(stage_row("attempt " + fmt_num(static_cast<double>(attempts)),
                                     r, std::move(detail)));
        } else if (kind == "retry_backoff") {
            std::string detail;
            detail += num_kv(fields, "attempts").substr(1);
            detail += num_kv(fields, "not_before");
            rows.push_back(stage_row("retry", r, std::move(detail)));
        } else if (kind == "dead_letter") {
            outcome = "dead_lettered";
            outcome_round = r;
            rows.push_back(stage_row("dead_lettered", r,
                                     num_kv(fields, "attempts").substr(1)));
        } else if (kind == "deliver") {
            outcome = "delivered";
            outcome_round = r;
            std::string detail = "level";
            detail += num_kv(fields, "level").substr(6);
            detail += num_kv(fields, "bytes");
            detail += num_kv(fields, "resumed_bytes");
            detail += num_kv(fields, "rho_joules");
            detail += num_kv(fields, "utility");
            detail += num_kv(fields, "delay_sec");
            rows.push_back(stage_row("delivered", r, std::move(detail)));
        } else if (kind == "duplicate") {
            rows.push_back(
                stage_row("duplicate", r, "suppressed by idempotent admission"));
        } else {
            // Unknown item-bearing event type: keep the chain complete.
            rows.push_back(stage_row(kind, r, ""));
        }
        if (outcome == "in_flight") outcome_round = r;
    }

    if (rows.empty()) {
        out << "notification " << id << ": no events in trace\n";
        return false;
    }
    out << "notification " << id;
    if (have_user) out << " (user " << fmt_num(user) << ")";
    out << '\n';
    for (const std::string& row : rows) out << row << '\n';
    out << "  outcome: " << outcome << " (round " << fmt_num(outcome_round) << ", "
        << rows.size() << " trace rows)\n";
    return true;
}

} // namespace richnote::obs

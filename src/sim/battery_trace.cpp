#include "sim/battery_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace richnote::sim {

battery_trace::battery_trace(std::vector<battery_sample> samples)
    : samples_(std::move(samples)) {
    RICHNOTE_REQUIRE(!samples_.empty(), "battery trace needs at least one sample");
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        RICHNOTE_REQUIRE(samples_[i].level >= 0.0 && samples_[i].level <= 1.0,
                         "battery level must be in [0,1]");
        if (i > 0)
            RICHNOTE_REQUIRE(samples_[i - 1].at <= samples_[i].at,
                             "battery samples must be time-sorted");
    }
}

namespace {
const battery_sample& sample_at(const std::vector<battery_sample>& samples, sim_time t) {
    // Last sample with at <= t; the first sample before its own timestamp.
    const auto it = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](sim_time value, const battery_sample& s) { return value < s.at; });
    if (it == samples.begin()) return samples.front();
    return *(it - 1);
}
} // namespace

double battery_trace::level_at(sim_time t) const noexcept {
    return sample_at(samples_, t).level;
}

bool battery_trace::charging_at(sim_time t) const noexcept {
    return sample_at(samples_, t).charging;
}

battery_trace battery_trace::synthesize(const battery_params& params, sim_time horizon,
                                        sim_time step, richnote::rng& gen) {
    RICHNOTE_REQUIRE(horizon > 0 && step > 0, "horizon and step must be positive");
    battery_model model(params, gen);
    std::vector<battery_sample> samples;
    samples.reserve(static_cast<std::size_t>(horizon / step) + 1);
    for (sim_time t = 0; t <= horizon; t += step) {
        model.step(t, step, 0.0);
        samples.push_back(battery_sample{t, model.level(), model.charging()});
    }
    return battery_trace(std::move(samples));
}

void battery_trace::write_csv(std::ostream& out) const {
    out << "at,level,charging\n";
    out.precision(17);
    for (const battery_sample& s : samples_) {
        out << s.at << ',' << s.level << ',' << (s.charging ? 1 : 0) << '\n';
    }
}

battery_trace battery_trace::read_csv(std::istream& in) {
    std::string line;
    RICHNOTE_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty battery trace");
    RICHNOTE_REQUIRE(line == "at,level,charging", "battery trace header mismatch");
    std::vector<battery_sample> samples;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream row(line);
        battery_sample s;
        char comma1 = 0, comma2 = 0;
        int charging = 0;
        row >> s.at >> comma1 >> s.level >> comma2 >> charging;
        RICHNOTE_REQUIRE(!row.fail() && comma1 == ',' && comma2 == ',' &&
                             (charging == 0 || charging == 1),
                         "malformed battery trace row: " + line);
        s.charging = charging == 1;
        samples.push_back(s);
    }
    return battery_trace(std::move(samples));
}

void battery_trace::save(const std::string& path) const {
    std::ofstream out(path);
    RICHNOTE_REQUIRE(out.good(), "cannot open battery trace for writing: " + path);
    write_csv(out);
    RICHNOTE_REQUIRE(out.good(), "write failure on battery trace: " + path);
}

battery_trace battery_trace::load(const std::string& path) {
    std::ifstream in(path);
    RICHNOTE_REQUIRE(in.good(), "cannot open battery trace for reading: " + path);
    return read_csv(in);
}

traced_battery::traced_battery(battery_trace trace) : trace_(std::move(trace)) {}

double traced_battery::level() const noexcept { return trace_.level_at(now_); }

bool traced_battery::charging() const noexcept { return trace_.charging_at(now_); }

void traced_battery::step(sim_time t, sim_time dt, double extra_joules) noexcept {
    (void)extra_joules; // exogenous recording: load is already in the trace
    now_ = t + dt;
}

} // namespace richnote::sim

#include "sim/simulator.hpp"

#include "common/error.hpp"
#include "obs/profile.hpp"

namespace richnote::sim {

event_handle simulator::schedule_at(sim_time when, callback fn) {
    RICHNOTE_REQUIRE(when >= now_, "cannot schedule in the past");
    return queue_.schedule(when, std::move(fn));
}

event_handle simulator::schedule_in(sim_time delay, callback fn) {
    RICHNOTE_REQUIRE(delay >= 0, "delay must be non-negative");
    return queue_.schedule(now_ + delay, std::move(fn));
}

std::uint64_t simulator::schedule_periodic(sim_time start, sim_time period,
                                           periodic_callback fn) {
    RICHNOTE_REQUIRE(start >= now_, "cannot schedule in the past");
    RICHNOTE_REQUIRE(period > 0, "period must be positive");
    RICHNOTE_REQUIRE(fn != nullptr, "cannot schedule a null callback");
    const std::uint64_t series_id = series_.size();
    series_.push_back(periodic_series{std::move(fn), period, 0, false, {}});
    arm_periodic(series_id, start);
    return series_id;
}

void simulator::arm_periodic(std::uint64_t series_id, sim_time when) {
    periodic_series& series = series_[series_id];
    series.next = queue_.schedule(when, [this, series_id] {
        periodic_series& s = series_[series_id];
        if (s.cancelled) return;
        const std::uint64_t tick = s.tick++;
        // Re-arm before invoking so the callback can cancel the series.
        arm_periodic(series_id, now_ + s.period);
        RICHNOTE_PROFILE_SCOPE(richnote::obs::profile_slot::sim_tick);
        s.fn(tick);
    });
}

void simulator::cancel_periodic(std::uint64_t series_id) noexcept {
    if (series_id >= series_.size()) return;
    periodic_series& series = series_[series_id];
    series.cancelled = true;
    queue_.cancel(series.next);
}

std::uint64_t simulator::run_until(sim_time until) {
    RICHNOTE_REQUIRE(until >= now_, "cannot run backwards");
    std::uint64_t executed = 0;
    stopping_ = false;
    while (!queue_.empty() && !stopping_) {
        const sim_time next = queue_.next_time();
        if (next > until) break;
        auto [when, fn] = queue_.pop();
        now_ = when;
        fn();
        ++executed;
        ++executed_;
    }
    if (now_ < until && !stopping_) now_ = until;
    return executed;
}

std::uint64_t simulator::run() {
    std::uint64_t executed = 0;
    stopping_ = false;
    while (!queue_.empty() && !stopping_) {
        auto [when, fn] = queue_.pop();
        now_ = when;
        fn();
        ++executed;
        ++executed_;
    }
    return executed;
}

} // namespace richnote::sim

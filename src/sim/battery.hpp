// Per-user battery model.
//
// The paper drives energy-budget replenishment e(t) from "a separate trace
// (obtained from [6]) of timestamped battery status per user ... to mimic
// energy drain and battery recharge patterns". We do not have that trace, so
// this module synthesizes an equivalent diurnal process (DESIGN.md §2):
// background drain that is heavier during the day, plus overnight charging
// sessions with some user-to-user phase jitter. The scheduler only observes
// the battery *level* and the derived per-round replenishment allowance
// e(t), which is exactly what the trace provided in the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace richnote::sim {

/// What the scheduler/broker observe about a device's battery. Two
/// implementations: battery_model (closed-loop simulation) and
/// traced_battery (replay of a timestamped battery-status trace, the
/// paper's actual input — see sim/battery_trace.hpp).
class battery_source {
public:
    virtual ~battery_source() = default;

    /// State of charge in [0, 1].
    virtual double level() const noexcept = 0;
    virtual bool charging() const noexcept = 0;

    /// Advances by `dt` starting at absolute time `t`; `extra_joules` is
    /// additional load (ignored by trace replays — their levels are
    /// exogenous recordings).
    virtual void step(sim_time t, sim_time dt, double extra_joules) noexcept = 0;

    /// Drains energy immediately (no-op for trace replays).
    virtual void drain(double joules) noexcept = 0;

    /// Deep copy, preserving the full mutable state (checkpoint/restore for
    /// crash-restart recovery).
    virtual std::unique_ptr<battery_source> clone() const = 0;
};

struct battery_params {
    double capacity_joules = 20'000.0;      ///< ~1500 mAh @ 3.7 V
    double day_drain_watts = 0.55;          ///< screen-on-ish average daytime draw
    double night_drain_watts = 0.12;        ///< idle overnight draw
    double charge_watts = 7.5;              ///< 5 V / 1.5 A charger
    double charge_start_hour = 23.0;        ///< nominal plug-in time
    double charge_end_hour = 7.0;           ///< nominal unplug time
    double phase_jitter_hours = 2.0;        ///< per-user plug-in offset
    double initial_level = 0.9;             ///< state of charge in [0,1]
};

/// Simple state-of-charge integrator stepped once per round.
class battery_model final : public battery_source {
public:
    /// `gen` supplies the per-user phase jitter (consumed at construction).
    battery_model(battery_params params, richnote::rng& gen);

    /// State of charge in [0, 1].
    double level() const noexcept override { return level_; }

    bool charging() const noexcept override { return charging_; }

    /// Advances the battery by `dt` starting at absolute time `t`,
    /// additionally draining `extra_joules` (e.g. notification downloads).
    void step(sim_time t, sim_time dt, double extra_joules) noexcept override;

    /// Drains energy immediately (clamped at empty).
    void drain(double joules) noexcept override;

    std::unique_ptr<battery_source> clone() const override {
        return std::make_unique<battery_model>(*this);
    }

    const battery_params& params() const noexcept { return params_; }

private:
    bool in_charge_window(sim_time t) const noexcept;

    battery_params params_;
    double level_;
    double phase_offset_hours_;
    bool charging_ = false;
};

/// Policy mapping battery state to the per-round energy-budget replenishment
/// e(t) used by the Lyapunov virtual queue (§IV, Algorithm 2 step 2):
/// "Energy budget is also replenished ... at a variable rate, e(t),
/// depending on the current battery status of the device."
struct energy_budget_policy {
    double kappa_joules_per_round = 3'000.0; ///< paper: 3 KJ per hour (§V-C)
    double full_level = 0.5;                 ///< >= this (or charging): full kappa
    double cutoff_level = 0.1;               ///< below this: no replenishment

    /// Replenishment for the coming round given the battery state.
    double replenishment(const battery_source& battery) const noexcept;
};

} // namespace richnote::sim

// Simulation time base. RichNote operates in rounds (the paper uses 1-hour
// rounds, §V-C); the simulator itself is continuous-time with double-precision
// seconds so sub-round delivery events and queuing delays are exact.
#pragma once

namespace richnote::sim {

/// Simulated seconds since the start of the run.
using sim_time = double;

inline constexpr sim_time seconds = 1.0;
inline constexpr sim_time minutes = 60.0;
inline constexpr sim_time hours = 3600.0;
inline constexpr sim_time days = 24.0 * hours;
inline constexpr sim_time weeks = 7.0 * days;

/// The paper's round length: 1 hour (§V-C).
inline constexpr sim_time default_round = hours;

/// Hour-of-day in [0, 24) for diurnal models.
inline double hour_of_day(sim_time t) noexcept {
    double h = t / hours;
    h -= static_cast<double>(static_cast<long long>(h / 24.0)) * 24.0;
    return h < 0 ? h + 24.0 : h;
}

/// True on Saturday/Sunday assuming t = 0 is Monday 00:00.
inline bool is_weekend(sim_time t) noexcept {
    const auto day = static_cast<long long>(t / days) % 7;
    return day == 5 || day == 6;
}

/// True between 08:00 and 22:00 (the paper's day/night feature, §V-A).
inline bool is_daytime(sim_time t) noexcept {
    const double h = hour_of_day(t);
    return h >= 8.0 && h < 22.0;
}

} // namespace richnote::sim

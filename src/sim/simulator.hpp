// Discrete-event simulation engine.
//
// The paper evaluates RichNote on "a custom event-based simulator written in
// Java" [6]; this is the C++ equivalent substrate. Single-threaded,
// deterministic: the run loop pops events in (time, scheduling-order) order
// and advances a virtual clock. Periodic tasks (rounds) are supported
// directly.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace richnote::sim {

class simulator {
public:
    using callback = std::function<void()>;
    /// Periodic callback; receives the tick index (0-based).
    using periodic_callback = std::function<void(std::uint64_t tick)>;

    simulator() = default;

    /// Current simulated time. Starts at 0.
    sim_time now() const noexcept { return now_; }

    /// Number of events executed so far.
    std::uint64_t events_executed() const noexcept { return executed_; }

    /// Schedules at an absolute time, which must be >= now().
    event_handle schedule_at(sim_time when, callback fn);

    /// Schedules after a non-negative delay from now().
    event_handle schedule_in(sim_time delay, callback fn);

    /// Schedules `fn(tick)` at start, start+period, start+2*period, ...
    /// Returns a handle to the *first* occurrence; cancel_periodic stops the
    /// whole series.
    std::uint64_t schedule_periodic(sim_time start, sim_time period, periodic_callback fn);

    /// Stops a periodic series created by schedule_periodic.
    void cancel_periodic(std::uint64_t series_id) noexcept;

    bool cancel(event_handle handle) noexcept { return queue_.cancel(handle); }

    /// Runs until the queue is empty or `until` is passed (events at exactly
    /// `until` still execute). Returns the number of events executed.
    std::uint64_t run_until(sim_time until);

    /// Runs until the queue drains completely.
    std::uint64_t run();

    /// Requests the run loop to return after the current event.
    void stop() noexcept { stopping_ = true; }

    bool idle() const noexcept { return queue_.empty(); }

private:
    struct periodic_series {
        periodic_callback fn;
        sim_time period = 0;
        std::uint64_t tick = 0;
        bool cancelled = false;
        event_handle next;
    };

    void arm_periodic(std::uint64_t series_id, sim_time when);

    event_queue queue_;
    sim_time now_ = 0;
    std::uint64_t executed_ = 0;
    bool stopping_ = false;
    std::vector<periodic_series> series_;
};

} // namespace richnote::sim

// Markov-chain connectivity model (§V-D3).
//
// The paper simulates network condition with a Markov transition model among
// three states — WIFI, CELL and OFF — using 50% probability of remaining in
// the current state and equal probability of transitioning to cell or wifi
// when off. The model is sampled once per round per user.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/rng.hpp"

namespace richnote::sim {

enum class net_state : std::uint8_t { off = 0, cell = 1, wifi = 2 };

inline constexpr std::size_t net_state_count = 3;

const char* to_string(net_state state) noexcept;

/// Row-stochastic 3x3 transition matrix indexed by [from][to].
using net_transition_matrix = std::array<std::array<double, net_state_count>, net_state_count>;

/// Link properties per state, used by the delivery engine.
struct link_profile {
    bool connected = false;          ///< can any bytes flow this round?
    double bytes_per_second = 0.0;   ///< downlink rate while connected
    bool metered = true;             ///< does traffic count against the data budget?
};

class markov_network_model {
public:
    /// `initial` is the state before the first step.
    markov_network_model(net_transition_matrix matrix, net_state initial);

    /// Paper default (§V-D3): CELL-only world — the device alternates
    /// between CELL and OFF with 50% self-transition (used for Figs. 3, 4,
    /// 5(a,b,d): "users ... connected sporadically through a cellular
    /// connection").
    static markov_network_model cellular_only(net_state initial = net_state::cell);

    /// CELL/OFF chain whose stationary connected fraction is
    /// `connected_fraction` (rows: from either state, go to CELL with that
    /// probability). connected_fraction = 0.5 reproduces cellular_only()'s
    /// stationary behaviour; sweeping it models better or worse coverage.
    static markov_network_model cellular_with_coverage(double connected_fraction,
                                                       net_state initial = net_state::cell);

    /// Paper §V-D3 (Fig. 5(c)): WIFI/CELL/OFF with 50% self-transition and
    /// equal probability of transitioning to cell or wifi when off.
    static markov_network_model with_wifi(net_state initial = net_state::cell);

    /// Degenerate model that never leaves `state` (useful in tests).
    static markov_network_model fixed(net_state state);

    net_state state() const noexcept { return state_; }

    /// Advances one round and returns the new state. Inline: every broker
    /// steps its chain once per round.
    net_state step(richnote::rng& gen) noexcept {
        const auto& row = matrix_[static_cast<std::size_t>(state_)];
        const double u = gen.uniform();
        double acc = 0.0;
        for (std::size_t to = 0; to < net_state_count; ++to) {
            acc += row[to];
            if (u < acc) {
                state_ = static_cast<net_state>(to);
                return state_;
            }
        }
        state_ = static_cast<net_state>(net_state_count - 1); // rounding slack
        return state_;
    }

    const net_transition_matrix& matrix() const noexcept { return matrix_; }

    /// Stationary distribution by power iteration (reporting / tests).
    std::array<double, net_state_count> stationary(std::size_t iterations = 200) const noexcept;

private:
    net_transition_matrix matrix_;
    net_state state_;
};

/// Default link profiles: OFF carries nothing; CELL is metered at 3G-class
/// rates; WIFI is unmetered and faster. Inline: queried at least once per
/// broker round and again inside every scheduler plan().
inline link_profile default_link_profile(net_state state) noexcept {
    switch (state) {
        case net_state::off:
            return link_profile{false, 0.0, true};
        case net_state::cell:
            // 3G-class downlink; metered against the data plan.
            return link_profile{true, 200.0 * 1024.0, true};
        case net_state::wifi:
            // Home/office WiFi; not billed against the cellular budget.
            return link_profile{true, 2.0 * 1024.0 * 1024.0, false};
    }
    return {};
}

} // namespace richnote::sim

#include "sim/battery.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace richnote::sim {

battery_model::battery_model(battery_params params, richnote::rng& gen)
    : params_(params), level_(params.initial_level) {
    RICHNOTE_REQUIRE(params.capacity_joules > 0, "battery capacity must be positive");
    RICHNOTE_REQUIRE(params.initial_level >= 0 && params.initial_level <= 1,
                     "initial level must be in [0,1]");
    phase_offset_hours_ = gen.uniform(-params.phase_jitter_hours, params.phase_jitter_hours);
}

bool battery_model::in_charge_window(sim_time t) const noexcept {
    double h = hour_of_day(t) - phase_offset_hours_;
    if (h < 0) h += 24.0;
    if (h >= 24.0) h -= 24.0;
    const double start = params_.charge_start_hour;
    const double end = params_.charge_end_hour;
    if (start <= end) return h >= start && h < end;
    return h >= start || h < end; // window wraps midnight
}

void battery_model::step(sim_time t, sim_time dt, double extra_joules) noexcept {
    charging_ = in_charge_window(t);
    const double drain_watts = charging_ ? 0.0
                               : is_daytime(t) ? params_.day_drain_watts
                                               : params_.night_drain_watts;
    const double charge_watts = charging_ ? params_.charge_watts : 0.0;
    const double delta_joules = (charge_watts - drain_watts) * dt - extra_joules;
    level_ = std::clamp(level_ + delta_joules / params_.capacity_joules, 0.0, 1.0);
}

void battery_model::drain(double joules) noexcept {
    level_ = std::clamp(level_ - joules / params_.capacity_joules, 0.0, 1.0);
}

double energy_budget_policy::replenishment(const battery_source& battery) const noexcept {
    if (battery.charging()) return kappa_joules_per_round;
    const double level = battery.level();
    if (level >= full_level) return kappa_joules_per_round;
    if (level <= cutoff_level) return 0.0;
    // Linear taper between the cutoff and the comfortable level.
    const double frac = (level - cutoff_level) / (full_level - cutoff_level);
    return kappa_joules_per_round * frac;
}

} // namespace richnote::sim

#include "sim/network.hpp"

#include <cmath>

#include "common/error.hpp"

namespace richnote::sim {

const char* to_string(net_state state) noexcept {
    switch (state) {
        case net_state::off: return "OFF";
        case net_state::cell: return "CELL";
        case net_state::wifi: return "WIFI";
    }
    return "?";
}

namespace {
void validate_matrix(const net_transition_matrix& matrix) {
    for (const auto& row : matrix) {
        double total = 0.0;
        for (double p : row) {
            RICHNOTE_REQUIRE(p >= 0.0 && p <= 1.0, "transition probability out of range");
            total += p;
        }
        RICHNOTE_REQUIRE(std::abs(total - 1.0) < 1e-9, "transition row must sum to 1");
    }
}
} // namespace

markov_network_model::markov_network_model(net_transition_matrix matrix, net_state initial)
    : matrix_(matrix), state_(initial) {
    validate_matrix(matrix_);
}

markov_network_model markov_network_model::cellular_only(net_state initial) {
    RICHNOTE_REQUIRE(initial != net_state::wifi, "cellular-only model cannot start on wifi");
    //              to:   OFF   CELL  WIFI
    net_transition_matrix m{{
        /* from OFF  */ {{0.5, 0.5, 0.0}},
        /* from CELL */ {{0.5, 0.5, 0.0}},
        /* from WIFI */ {{0.5, 0.5, 0.0}}, // unreachable; kept stochastic
    }};
    return markov_network_model(m, initial);
}

markov_network_model markov_network_model::cellular_with_coverage(double connected_fraction,
                                                                  net_state initial) {
    RICHNOTE_REQUIRE(connected_fraction >= 0.0 && connected_fraction <= 1.0,
                     "connected fraction must be in [0,1]");
    RICHNOTE_REQUIRE(initial != net_state::wifi,
                     "cellular-only model cannot start on wifi");
    const double p = connected_fraction;
    //              to:   OFF      CELL  WIFI
    net_transition_matrix m{{
        /* from OFF  */ {{1.0 - p, p, 0.0}},
        /* from CELL */ {{1.0 - p, p, 0.0}},
        /* from WIFI */ {{1.0 - p, p, 0.0}}, // unreachable; kept stochastic
    }};
    return markov_network_model(m, initial);
}

markov_network_model markov_network_model::with_wifi(net_state initial) {
    //              to:   OFF    CELL   WIFI
    net_transition_matrix m{{
        /* from OFF  */ {{0.50, 0.25, 0.25}},
        /* from CELL */ {{0.25, 0.50, 0.25}},
        /* from WIFI */ {{0.25, 0.25, 0.50}},
    }};
    return markov_network_model(m, initial);
}

markov_network_model markov_network_model::fixed(net_state state) {
    net_transition_matrix m{};
    for (std::size_t from = 0; from < net_state_count; ++from)
        m[from][static_cast<std::size_t>(state)] = 1.0;
    return markov_network_model(m, state);
}

std::array<double, net_state_count> markov_network_model::stationary(
    std::size_t iterations) const noexcept {
    std::array<double, net_state_count> pi{};
    pi[static_cast<std::size_t>(state_)] = 1.0;
    for (std::size_t it = 0; it < iterations; ++it) {
        std::array<double, net_state_count> next{};
        for (std::size_t from = 0; from < net_state_count; ++from)
            for (std::size_t to = 0; to < net_state_count; ++to)
                next[to] += pi[from] * matrix_[from][to];
        pi = next;
    }
    return pi;
}


} // namespace richnote::sim

// Priority queue of timed events with stable FIFO ordering among ties and
// O(log n) cancellation, built on the shared indexed binary heap.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/indexed_heap.hpp"
#include "sim/time.hpp"

namespace richnote::sim {

/// Handle to a scheduled event; valid until the event fires or is cancelled.
struct event_handle {
    std::size_t slot = static_cast<std::size_t>(-1);
    std::uint64_t generation = 0;

    bool valid() const noexcept { return slot != static_cast<std::size_t>(-1); }
};

class event_queue {
public:
    using callback = std::function<void()>;

    event_queue() = default;

    std::size_t size() const noexcept { return heap_.size(); }
    bool empty() const noexcept { return heap_.empty(); }

    /// Schedules `fn` at absolute time `when`. Events at equal times fire in
    /// scheduling order.
    event_handle schedule(sim_time when, callback fn);

    /// Cancels a pending event; returns false if it already fired or was
    /// cancelled (safe to call with stale handles).
    bool cancel(event_handle handle) noexcept;

    /// True if the handle refers to a still-pending event.
    bool pending(event_handle handle) const noexcept;

    /// Time of the earliest pending event; queue must be non-empty.
    sim_time next_time() const;

    /// Removes the earliest event and returns its callback and time.
    std::pair<sim_time, callback> pop();

    void clear() noexcept;

private:
    struct key {
        sim_time when;
        std::uint64_t seq;

        /// Min-ordering: earlier time first, then lower sequence. The heap
        /// treats "less" as lower priority, so invert.
        bool operator<(const key& other) const noexcept {
            if (when != other.when) return when > other.when;
            return seq > other.seq;
        }
    };

    struct slot_data {
        callback fn;
        std::uint64_t generation = 0;
        sim_time when = 0;
    };

    indexed_heap<key> heap_;
    std::vector<slot_data> slots_;
    std::vector<std::size_t> free_slots_;
    std::uint64_t next_seq_ = 0;

    std::size_t acquire_slot();
};

} // namespace richnote::sim

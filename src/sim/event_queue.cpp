#include "sim/event_queue.hpp"

#include <utility>

#include "common/error.hpp"

namespace richnote::sim {

std::size_t event_queue::acquire_slot() {
    if (!free_slots_.empty()) {
        const std::size_t slot = free_slots_.back();
        free_slots_.pop_back();
        return slot;
    }
    slots_.emplace_back();
    heap_.reserve_ids(slots_.size());
    return slots_.size() - 1;
}

event_handle event_queue::schedule(sim_time when, callback fn) {
    RICHNOTE_REQUIRE(fn != nullptr, "cannot schedule a null callback");
    const std::size_t slot = acquire_slot();
    slot_data& data = slots_[slot];
    data.fn = std::move(fn);
    data.when = when;
    ++data.generation;
    heap_.push(slot, key{when, next_seq_++});
    return event_handle{slot, data.generation};
}

bool event_queue::pending(event_handle handle) const noexcept {
    return handle.valid() && handle.slot < slots_.size() &&
           slots_[handle.slot].generation == handle.generation && heap_.contains(handle.slot);
}

bool event_queue::cancel(event_handle handle) noexcept {
    if (!pending(handle)) return false;
    heap_.erase(handle.slot);
    slots_[handle.slot].fn = nullptr;
    free_slots_.push_back(handle.slot);
    return true;
}

sim_time event_queue::next_time() const {
    RICHNOTE_REQUIRE(!heap_.empty(), "next_time on an empty event queue");
    return slots_[heap_.top_id()].when;
}

std::pair<sim_time, event_queue::callback> event_queue::pop() {
    RICHNOTE_REQUIRE(!heap_.empty(), "pop on an empty event queue");
    const std::size_t slot = heap_.pop();
    slot_data& data = slots_[slot];
    std::pair<sim_time, callback> out{data.when, std::move(data.fn)};
    data.fn = nullptr;
    free_slots_.push_back(slot);
    return out;
}

void event_queue::clear() noexcept {
    heap_.clear();
    free_slots_.clear();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        slots_[i].fn = nullptr;
        free_slots_.push_back(i);
    }
}

} // namespace richnote::sim

// Timestamped battery-status traces.
//
// The paper's evaluation consumes "a separate trace (obtained from [6]) of
// timestamped battery status per user ... to mimic energy drain and battery
// recharge patterns of the devices". This module provides that input
// format: a per-user sequence of (time, level, charging) samples, a replay
// adapter (traced_battery) implementing battery_source, CSV import/export,
// and a synthesizer that records a battery_model run into a trace — so the
// replay path is exercised even without external data (DESIGN.md §2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/battery.hpp"
#include "sim/time.hpp"

namespace richnote::sim {

struct battery_sample {
    sim_time at = 0;
    double level = 0.0; ///< state of charge [0, 1]
    bool charging = false;
};

/// Immutable, time-sorted sequence of samples. The state at time t is the
/// last sample with at <= t (the first sample before its own timestamp).
class battery_trace {
public:
    explicit battery_trace(std::vector<battery_sample> samples);

    std::size_t size() const noexcept { return samples_.size(); }
    const std::vector<battery_sample>& samples() const noexcept { return samples_; }

    double level_at(sim_time t) const noexcept;
    bool charging_at(sim_time t) const noexcept;

    /// Records a battery_model run: one sample per `step` over `horizon`.
    static battery_trace synthesize(const battery_params& params, sim_time horizon,
                                    sim_time step, richnote::rng& gen);

    /// CSV round-trip (header: at,level,charging).
    void write_csv(std::ostream& out) const;
    static battery_trace read_csv(std::istream& in);
    void save(const std::string& path) const;
    static battery_trace load(const std::string& path);

private:
    std::vector<battery_sample> samples_;
};

/// battery_source replaying a trace. The trace is exogenous — a recording
/// of the device, downloads included — so step() only advances the clock
/// and drain() is a no-op (matching how the paper consumed its traces).
class traced_battery final : public battery_source {
public:
    explicit traced_battery(battery_trace trace);

    double level() const noexcept override;
    bool charging() const noexcept override;
    void step(sim_time t, sim_time dt, double extra_joules) noexcept override;
    void drain(double joules) noexcept override { (void)joules; }

    std::unique_ptr<battery_source> clone() const override {
        return std::make_unique<traced_battery>(*this);
    }

    const battery_trace& trace() const noexcept { return trace_; }

private:
    battery_trace trace_;
    sim_time now_ = 0;
};

} // namespace richnote::sim

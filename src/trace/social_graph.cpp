#include "trace/social_graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace richnote::trace {

social_graph::social_graph(const social_graph_params& params, richnote::rng& gen) {
    RICHNOTE_REQUIRE(params.user_count >= 2, "social graph needs at least two users");
    RICHNOTE_REQUIRE(params.attachment_edges >= 1, "attachment_edges must be >= 1");
    RICHNOTE_REQUIRE(params.tie_decay > 0 && params.tie_decay <= 1, "tie_decay must be in (0,1]");

    adjacency_.resize(params.user_count);

    // Barabási–Albert: each new node attaches to m existing nodes picked
    // proportionally to degree. `endpoints` holds one entry per half-edge,
    // so a uniform draw from it IS the preferential-attachment draw.
    std::vector<user_id> endpoints;
    const std::size_t m = std::min(params.attachment_edges, params.user_count - 1);

    // Seed clique over the first m+1 users.
    for (user_id a = 0; a <= m; ++a) {
        for (user_id b = a + 1; b <= m; ++b) {
            adjacency_[a].push_back({b, 0.0});
            adjacency_[b].push_back({a, 0.0});
            endpoints.push_back(a);
            endpoints.push_back(b);
            ++edge_count_;
        }
    }

    for (user_id node = static_cast<user_id>(m + 1); node < params.user_count; ++node) {
        std::vector<user_id> chosen;
        while (chosen.size() < m) {
            const user_id target = endpoints[gen.index(endpoints.size())];
            if (target == node ||
                std::find(chosen.begin(), chosen.end(), target) != chosen.end())
                continue;
            chosen.push_back(target);
        }
        for (user_id target : chosen) {
            adjacency_[node].push_back({target, 0.0});
            adjacency_[target].push_back({node, 0.0});
            endpoints.push_back(node);
            endpoints.push_back(target);
            ++edge_count_;
        }
    }

    // Tie strengths: shuffle each adjacency list, then decay by rank so each
    // user has a few strong ties and a long tail of weak ones. Ties are
    // directional (how much *I* care about *them*), matching the paper's
    // sender→recipient tie feature.
    for (auto& friends : adjacency_) {
        gen.shuffle(friends);
        double strength = 1.0;
        for (auto& f : friends) {
            f.tie_strength = std::max(params.min_tie, strength);
            strength *= params.tie_decay;
        }
        std::sort(friends.begin(), friends.end(),
                  [](const friendship& a, const friendship& b) {
                      if (a.tie_strength != b.tie_strength)
                          return a.tie_strength > b.tie_strength;
                      return a.friend_user < b.friend_user;
                  });
    }
}

const std::vector<friendship>& social_graph::friends_of(user_id user) const {
    RICHNOTE_REQUIRE(user < adjacency_.size(), "user id out of range");
    return adjacency_[user];
}

double social_graph::tie(user_id user, user_id other) const {
    for (const auto& f : friends_of(user)) {
        if (f.friend_user == other) return f.tie_strength;
    }
    return 0.0;
}

std::size_t social_graph::degree(user_id user) const { return friends_of(user).size(); }

std::size_t social_graph::max_degree() const noexcept {
    std::size_t best = 0;
    for (const auto& friends : adjacency_) best = std::max(best, friends.size());
    return best;
}

} // namespace richnote::trace

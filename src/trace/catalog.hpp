// Synthetic music catalog: artists, albums and tracks with Zipf-distributed
// popularity.
//
// Substitutes for the Spotify public-API metadata the paper joins against
// its notification logs (§V-A): "Popularity of the music track, album and
// artist ... a normalized score between 1 and 100 obtained via Spotify
// public APIs based on their streaming frequencies." The generator produces
// the same normalized 1–100 popularity semantics with a heavy-tailed
// (Zipf) rank distribution, and track durations near the paper's observed
// 276-second average (§V-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace richnote::trace {

using artist_id = std::uint32_t;
using album_id = std::uint32_t;
using track_id = std::uint32_t;

enum class genre : std::uint8_t {
    pop = 0,
    rock,
    hiphop,
    electronic,
    jazz,
    classical,
    count // sentinel
};

inline constexpr std::size_t genre_count = static_cast<std::size_t>(genre::count);

const char* to_string(genre g) noexcept;

struct artist {
    artist_id id = 0;
    genre main_genre = genre::pop;
    double popularity = 0.0; ///< normalized 1–100
};

struct album {
    album_id id = 0;
    artist_id by = 0;
    double popularity = 0.0; ///< 1–100, correlated with the artist's
    std::uint32_t first_track = 0;
    std::uint32_t track_count = 0;
};

struct track {
    track_id id = 0;
    album_id on = 0;
    artist_id by = 0;
    genre track_genre = genre::pop;
    double popularity = 0.0;   ///< 1–100, correlated with the album's
    double duration_sec = 0.0; ///< full track length
};

struct catalog_params {
    std::size_t artist_count = 1'000;
    std::size_t min_albums_per_artist = 1;
    std::size_t max_albums_per_artist = 4;
    std::size_t min_tracks_per_album = 6;
    std::size_t max_tracks_per_album = 14;
    double popularity_zipf_exponent = 1.0; ///< artist rank-popularity skew
    double mean_track_duration_sec = 276.0; ///< paper §V-B average
    double track_duration_jitter_sec = 60.0;
};

/// Immutable generated catalog with O(1) id lookups.
class catalog {
public:
    catalog(const catalog_params& params, richnote::rng& gen);

    std::size_t artist_count() const noexcept { return artists_.size(); }
    std::size_t album_count() const noexcept { return albums_.size(); }
    std::size_t track_count() const noexcept { return tracks_.size(); }

    const artist& artist_at(artist_id id) const;
    const album& album_at(album_id id) const;
    /// Inline: admission resolves every notification's track through here.
    const track& track_at(track_id id) const {
        RICHNOTE_REQUIRE(id < tracks_.size(), "track id out of range");
        return tracks_[id];
    }

    const std::vector<track>& tracks() const noexcept { return tracks_; }
    const std::vector<artist>& artists() const noexcept { return artists_; }

    /// Samples a track with probability proportional to its popularity
    /// (what a "streaming" event picks).
    track_id sample_track_by_popularity(richnote::rng& gen) const noexcept;

    /// Samples an artist by popularity (what a "follow" picks).
    artist_id sample_artist_by_popularity(richnote::rng& gen) const noexcept;

    /// A uniformly random track of the given artist.
    track_id sample_track_of_artist(artist_id id, richnote::rng& gen) const;

private:
    std::vector<artist> artists_;
    std::vector<album> albums_;
    std::vector<track> tracks_;
    std::vector<double> track_popularity_cdf_;
    std::vector<double> artist_popularity_cdf_;
    std::vector<std::vector<track_id>> artist_tracks_;
};

} // namespace richnote::trace

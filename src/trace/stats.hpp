// Descriptive statistics over a notification trace.
//
// The paper characterizes its input ("top 10k users with maximum number of
// delivered notifications", friend feeds "frequent and large in number
// compared to other publications", diurnal mouse activity). This module
// computes the same characterization for any trace — generated or imported
// — so a user can check that their data has the shape the scheduler's
// defaults assume (and `richnote inspect` can print it).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/notification.hpp"

namespace richnote::trace {

struct trace_stats {
    // Volume.
    std::uint64_t total = 0;
    std::uint64_t attended = 0;
    std::uint64_t clicked = 0;
    std::size_t users = 0;
    std::size_t active_users = 0; ///< users with at least one notification

    // Per-user load distribution (over active users).
    double items_per_user_mean = 0.0;
    double items_per_user_p50 = 0.0;
    double items_per_user_p90 = 0.0;
    double items_per_user_max = 0.0;

    // Topic mix (§II: friend feeds dominate).
    std::array<std::uint64_t, 3> by_type{}; ///< indexed by notification_type

    // Engagement.
    double attention_rate = 0.0;     ///< attended / total
    double click_through_rate = 0.0; ///< clicked / attended

    // Temporal shape.
    std::array<double, 24> hourly_fraction{}; ///< arrival share per hour-of-day
    double weekend_fraction = 0.0;
    richnote::sim::sim_time span = 0.0; ///< last minus first timestamp

    // Feature ranges (sanity for imported traces).
    double social_tie_mean = 0.0;
    double track_popularity_mean = 0.0;

    double type_fraction(notification_type type) const noexcept {
        return total == 0 ? 0.0
                          : static_cast<double>(by_type[static_cast<std::size_t>(type)]) /
                                static_cast<double>(total);
    }
};

/// Single pass plus one percentile sort over per-user counts.
trace_stats analyze(const notification_trace& trace);

/// Ids of the `count` users with the most notifications, descending (the
/// paper's "top 10k users" selection).
std::vector<user_id> heaviest_users(const notification_trace& trace, std::size_t count);

/// A copy of the trace restricted to the given users (other users' streams
/// become empty; ids and labels are preserved). Mirrors the paper's
/// focus-on-heavy-users preprocessing.
notification_trace restrict_to_users(const notification_trace& trace,
                                     const std::vector<user_id>& users);

} // namespace richnote::trace

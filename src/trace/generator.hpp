// End-to-end synthetic workload generation.
//
// Assembles the full substitute for the paper's de-identified Spotify traces
// (§V-A, DESIGN.md §2): a music catalog, a social graph, per-user listening
// activity, and the three notification topic classes of §II — friend feeds
// (friends listening to tracks), album releases (from followed artists) and
// playlist updates (to followed playlists) — all labeled by the ground-truth
// click model. The output is a per-user, time-ordered notification stream
// that the scheduling experiments replay.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "pubsub/engine.hpp"
#include "sim/time.hpp"
#include "trace/catalog.hpp"
#include "trace/click_model.hpp"
#include "trace/notification.hpp"
#include "trace/social_graph.hpp"

namespace richnote::trace {

using playlist_id = std::uint32_t;

/// An artist or playlist subscription with a per-user affinity in (0, 1]
/// that plays the role of the social-tie feature for non-friend senders.
struct subscription {
    std::uint32_t target = 0;
    double affinity = 0.0;
};

struct user_profile {
    user_id id = 0;
    double listens_per_day = 0.0;
    std::vector<subscription> followed_artists;
    std::vector<subscription> followed_playlists;
};

struct playlist {
    playlist_id id = 0;
    double popularity = 0.0; ///< 1–100
};

struct workload_params {
    std::size_t user_count = 500;
    catalog_params catalog;
    social_graph_params graph; ///< user_count is overwritten from above
    click_model_params clicks;

    richnote::sim::sim_time horizon = richnote::sim::weeks; ///< trace length

    // Listening activity (drives friend feeds). Defaults target ~60–90
    // notifications per user per week, which puts the paper's 1–100 MB/week
    // budget sweep in the interesting regime: the full six-level menu of a
    // week's items weighs ~50–70 MB, so low budgets force level adaptation
    // and high budgets allow mostly 40 s previews (cf. Figs. 3 and 5).
    double mean_listens_per_day = 12.0;
    double activity_lognormal_sigma = 0.8; ///< user heterogeneity
    double notify_probability = 0.1;       ///< P(friend gets a feed item per listen)

    // Diurnal listening intensity multipliers.
    double night_activity = 0.3;   ///< 00:00–08:00
    double day_activity = 1.0;     ///< 08:00–18:00
    double evening_activity = 1.6; ///< 18:00–24:00

    // Album releases.
    double album_releases_per_artist_per_week = 0.05;
    double mean_followed_artists = 5.0;

    // Playlists.
    std::size_t playlist_count = 100;
    double mean_followed_playlists = 3.0;
    double playlist_updates_per_week = 2.0;
};

/// The fully generated world: immutable after construction.
class workload {
public:
    workload(const workload_params& params, std::uint64_t seed);

    const workload_params& params() const noexcept { return params_; }
    const trace::catalog& catalog() const noexcept { return *catalog_; }
    const trace::social_graph& graph() const noexcept { return *graph_; }
    const trace::click_model& clicks() const noexcept { return *clicks_; }
    const richnote::pubsub::engine& pubsub() const noexcept { return engine_; }
    const notification_trace& notifications() const noexcept { return trace_; }
    const std::vector<user_profile>& users() const noexcept { return users_; }
    const std::vector<playlist>& playlists() const noexcept { return playlists_; }

    std::size_t user_count() const noexcept { return users_.size(); }

private:
    void build_users(richnote::rng& gen);
    void generate_friend_feeds(richnote::rng& gen);
    void generate_album_releases(richnote::rng& gen);
    void generate_playlist_updates(richnote::rng& gen);
    void finalize(richnote::rng& gen);

    /// A listening/update timestamp drawn from the diurnal density.
    richnote::sim::sim_time sample_diurnal_time(richnote::sim::sim_time day_start,
                                                richnote::rng& gen) const;

    notification_features make_features(track_id track, double tie,
                                        richnote::sim::sim_time when) const;

    workload_params params_;
    std::unique_ptr<trace::catalog> catalog_;
    std::unique_ptr<trace::social_graph> graph_;
    std::unique_ptr<trace::click_model> clicks_;
    std::vector<user_profile> users_;
    std::vector<playlist> playlists_;
    richnote::pubsub::engine engine_;
    notification_trace trace_;
};

} // namespace richnote::trace

#include "trace/click_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace richnote::trace {

double sigmoid(double z) noexcept {
    if (z >= 0) {
        const double e = std::exp(-z);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(z);
    return e / (1.0 + e);
}

click_model::click_model(const click_model_params& params, std::size_t user_count,
                         richnote::rng& gen)
    : params_(params) {
    RICHNOTE_REQUIRE(user_count > 0, "click model needs at least one user");
    user_bias_.reserve(user_count);
    for (std::size_t i = 0; i < user_count; ++i)
        user_bias_.push_back(gen.normal(0.0, params.user_bias_stddev));
}

double click_model::click_probability(user_id user, const notification_features& f) const {
    RICHNOTE_REQUIRE(user < user_bias_.size(), "user id out of range");
    const double z = params_.intercept + user_bias_[user] +
                     params_.weight_social_tie * f.social_tie +
                     params_.weight_track_popularity * (f.track_popularity / 100.0) +
                     params_.weight_album_popularity * (f.album_popularity / 100.0) +
                     params_.weight_artist_popularity * (f.artist_popularity / 100.0) +
                     params_.weight_weekend * (f.weekend ? 1.0 : 0.0) +
                     params_.weight_daytime * (f.daytime ? 1.0 : 0.0);
    return sigmoid(z);
}

void click_model::label(notification& n, richnote::rng& gen) const {
    const double attention = richnote::sim::is_daytime(n.created_at)
                                 ? params_.attention_daytime
                                 : params_.attention_nighttime;
    n.attended = gen.bernoulli(attention);
    n.clicked = false;
    n.clicked_at = 0;
    if (!n.attended) return;

    // Latent noise makes the label stochastic around the logistic mean, so
    // even the Bayes-optimal classifier cannot reach perfect accuracy.
    const double z_mean = std::log(click_probability(n.recipient, n.features) /
                                   (1.0 - click_probability(n.recipient, n.features)));
    const double z = z_mean + gen.normal(0.0, params_.noise_stddev);
    n.clicked = gen.bernoulli(sigmoid(z));
    if (n.clicked)
        n.clicked_at = n.created_at + gen.exponential(1.0 / params_.mean_click_delay_sec);
}

} // namespace richnote::trace

#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace richnote::trace {

using richnote::sim::sim_time;

workload::workload(const workload_params& params, std::uint64_t seed) : params_(params) {
    RICHNOTE_REQUIRE(params.user_count >= 2, "workload needs at least two users");
    RICHNOTE_REQUIRE(params.horizon > 0, "horizon must be positive");
    RICHNOTE_REQUIRE(params.notify_probability >= 0 && params.notify_probability <= 1,
                     "notify_probability must be a probability");

    richnote::rng gen(seed);
    richnote::rng catalog_gen = gen.split();
    richnote::rng graph_gen = gen.split();
    richnote::rng clicks_gen = gen.split();
    richnote::rng users_gen = gen.split();
    richnote::rng events_gen = gen.split();
    richnote::rng label_gen = gen.split();

    catalog_ = std::make_unique<trace::catalog>(params.catalog, catalog_gen);

    social_graph_params graph_params = params.graph;
    graph_params.user_count = params.user_count;
    graph_ = std::make_unique<trace::social_graph>(graph_params, graph_gen);

    clicks_ = std::make_unique<trace::click_model>(params.clicks, params.user_count, clicks_gen);

    build_users(users_gen);
    trace_.per_user.resize(params.user_count);
    generate_friend_feeds(events_gen);
    generate_album_releases(events_gen);
    generate_playlist_updates(events_gen);
    finalize(label_gen);
}

void workload::build_users(richnote::rng& gen) {
    users_.resize(params_.user_count);

    // Playlists with heavy-tailed popularity.
    playlists_.resize(params_.playlist_count);
    for (std::size_t p = 0; p < params_.playlist_count; ++p) {
        playlists_[p].id = static_cast<playlist_id>(p);
        playlists_[p].popularity =
            std::clamp(100.0 * std::pow(gen.uniform(), 2.0), 1.0, 100.0);
    }

    for (user_id u = 0; u < params_.user_count; ++u) {
        user_profile& profile = users_[u];
        profile.id = u;
        // Log-normal activity: median listens/day scaled so the mean matches
        // mean_listens_per_day (mean of lognormal = exp(mu + sigma^2/2)).
        const double sigma = params_.activity_lognormal_sigma;
        const double mu = std::log(params_.mean_listens_per_day) - sigma * sigma / 2.0;
        profile.listens_per_day = std::exp(gen.normal(mu, sigma));

        const auto artist_follows = gen.poisson(params_.mean_followed_artists);
        for (std::uint32_t k = 0; k < artist_follows; ++k) {
            const artist_id a = catalog_->sample_artist_by_popularity(gen);
            const bool already =
                std::any_of(profile.followed_artists.begin(), profile.followed_artists.end(),
                            [a](const subscription& s) { return s.target == a; });
            if (already) continue;
            // Following is deliberate — affinity skews high.
            const double affinity = gen.uniform(0.4, 1.0);
            profile.followed_artists.push_back({a, affinity});
            engine_.subscribe(u, richnote::pubsub::artist_topic(a), affinity);
        }

        if (!playlists_.empty()) {
            const auto playlist_follows = gen.poisson(params_.mean_followed_playlists);
            for (std::uint32_t k = 0; k < playlist_follows; ++k) {
                const auto p = static_cast<playlist_id>(gen.index(playlists_.size()));
                const bool already = std::any_of(
                    profile.followed_playlists.begin(), profile.followed_playlists.end(),
                    [p](const subscription& s) { return s.target == p; });
                if (already) continue;
                // Playlist interest is shallower than artist fandom.
                const double affinity = gen.uniform(0.15, 0.7);
                profile.followed_playlists.push_back({p, affinity});
                engine_.subscribe(u, richnote::pubsub::playlist_topic(p), affinity);
            }
        }
    }

    // Friend-feed topics (§II): every user follows each friend's feed with
    // their own tie strength toward that friend, so a publication on the
    // friend's feed reaches them with the recipient-side tie as affinity.
    for (const user_profile& profile : users_) {
        for (const friendship& f : graph_->friends_of(profile.id)) {
            engine_.subscribe(profile.id,
                              richnote::pubsub::user_feed_topic(f.friend_user),
                              f.tie_strength);
        }
    }
}

sim_time workload::sample_diurnal_time(sim_time day_start, richnote::rng& gen) const {
    // Piecewise-constant density over the 24 hours; sample a band by weight,
    // then uniformly within it.
    const double night_w = params_.night_activity * 8.0;   // 00–08
    const double day_w = params_.day_activity * 10.0;      // 08–18
    const double evening_w = params_.evening_activity * 6.0; // 18–24
    const double total = night_w + day_w + evening_w;
    const double u = gen.uniform() * total;
    double hour = 0.0;
    if (u < night_w) {
        hour = 8.0 * (u / night_w);
    } else if (u < night_w + day_w) {
        hour = 8.0 + 10.0 * ((u - night_w) / day_w);
    } else {
        hour = 18.0 + 6.0 * ((u - night_w - day_w) / evening_w);
    }
    return day_start + hour * richnote::sim::hours;
}

notification_features workload::make_features(track_id track, double tie, sim_time when) const {
    const auto& t = catalog_->track_at(track);
    notification_features f;
    f.social_tie = tie;
    f.track_popularity = t.popularity;
    f.album_popularity = catalog_->album_at(t.on).popularity;
    f.artist_popularity = catalog_->artist_at(t.by).popularity;
    f.weekend = richnote::sim::is_weekend(when);
    f.daytime = richnote::sim::is_daytime(when);
    return f;
}

void workload::generate_friend_feeds(richnote::rng& gen) {
    const auto total_days =
        static_cast<std::size_t>(std::ceil(params_.horizon / richnote::sim::days));
    // Not every listen becomes a notification for every follower; the
    // notify_probability thinning models Spotify's feed sampling.
    const auto sink = [&](richnote::pubsub::engine::subscriber_id subscriber,
                          double affinity, const richnote::pubsub::publication& pub) {
        if (!gen.bernoulli(params_.notify_probability)) return;
        notification n;
        n.recipient = subscriber;
        n.type = notification_type::friend_feed;
        n.track = pub.track;
        n.created_at = pub.at;
        // Affinity IS the recipient-side tie toward the listener.
        n.features = make_features(pub.track, affinity, pub.at);
        trace_.per_user[subscriber].push_back(n);
    };
    for (const user_profile& listener : users_) {
        for (std::size_t day = 0; day < total_days; ++day) {
            const sim_time day_start = static_cast<double>(day) * richnote::sim::days;
            const auto listens = gen.poisson(listener.listens_per_day);
            for (std::uint32_t k = 0; k < listens; ++k) {
                const sim_time when = sample_diurnal_time(day_start, gen);
                if (when >= params_.horizon) continue;
                richnote::pubsub::publication pub;
                pub.topic = richnote::pubsub::user_feed_topic(listener.id);
                pub.track = catalog_->sample_track_by_popularity(gen);
                pub.at = when;
                pub.publisher = listener.id;
                pub.popularity = catalog_->track_at(pub.track).popularity;
                pub.genre = static_cast<std::uint8_t>(
                    catalog_->track_at(pub.track).track_genre);
                engine_.publish(pub, sink);
            }
        }
    }
}

void workload::generate_album_releases(richnote::rng& gen) {
    const double weeks_in_horizon = params_.horizon / richnote::sim::weeks;
    const auto sink = [&](richnote::pubsub::engine::subscriber_id subscriber,
                          double affinity, const richnote::pubsub::publication& pub) {
        notification n;
        n.recipient = subscriber;
        n.type = notification_type::album_release;
        n.track = pub.track;
        n.created_at = pub.at;
        n.features = make_features(pub.track, affinity, pub.at);
        trace_.per_user[subscriber].push_back(n);
    };
    for (const artist& a : catalog_->artists()) {
        const auto releases =
            gen.poisson(params_.album_releases_per_artist_per_week * weeks_in_horizon);
        for (std::uint32_t r = 0; r < releases; ++r) {
            richnote::pubsub::publication pub;
            pub.topic = richnote::pubsub::artist_topic(a.id);
            pub.track = catalog_->sample_track_of_artist(a.id, gen);
            pub.at = gen.uniform(0.0, params_.horizon);
            pub.popularity = catalog_->track_at(pub.track).popularity;
            pub.genre =
                static_cast<std::uint8_t>(catalog_->track_at(pub.track).track_genre);
            engine_.publish(pub, sink);
        }
    }
}

void workload::generate_playlist_updates(richnote::rng& gen) {
    const double weeks_in_horizon = params_.horizon / richnote::sim::weeks;
    const auto sink = [&](richnote::pubsub::engine::subscriber_id subscriber,
                          double affinity, const richnote::pubsub::publication& pub) {
        notification n;
        n.recipient = subscriber;
        n.type = notification_type::playlist_update;
        n.track = pub.track;
        n.created_at = pub.at;
        n.features = make_features(pub.track, affinity, pub.at);
        trace_.per_user[subscriber].push_back(n);
    };
    for (const playlist& p : playlists_) {
        const auto updates =
            gen.poisson(params_.playlist_updates_per_week * weeks_in_horizon);
        for (std::uint32_t k = 0; k < updates; ++k) {
            richnote::pubsub::publication pub;
            pub.topic = richnote::pubsub::playlist_topic(p.id);
            pub.track = catalog_->sample_track_by_popularity(gen);
            pub.at = gen.uniform(0.0, params_.horizon);
            pub.popularity = catalog_->track_at(pub.track).popularity;
            pub.genre =
                static_cast<std::uint8_t>(catalog_->track_at(pub.track).track_genre);
            engine_.publish(pub, sink);
        }
    }
}

void workload::finalize(richnote::rng& gen) {
    std::uint64_t next_id = 0;
    for (auto& stream : trace_.per_user) {
        std::sort(stream.begin(), stream.end(),
                  [](const notification& a, const notification& b) {
                      return a.created_at < b.created_at;
                  });
        for (notification& n : stream) {
            n.id = next_id++;
            clicks_->label(n, gen);
            ++trace_.total_count;
            if (n.attended) ++trace_.attended_count;
            if (n.clicked) ++trace_.clicked_count;
        }
    }
}

} // namespace richnote::trace

// Synthetic social graph over the user population.
//
// Substitutes for "the Spotify de-identified social graph [1]" the paper
// joins with mouse activity (§V-A) to compute the social-tie feature. The
// generator uses Barabási–Albert preferential attachment (heavy-tailed
// degree, like real follower graphs) and assigns each directed tie a
// strength in (0, 1] that decays with the friend's attachment rank — close
// friends first, acquaintances later.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace richnote::trace {

using user_id = std::uint32_t;

struct friendship {
    user_id friend_user = 0;
    double tie_strength = 0.0; ///< in (0, 1]; 1 = closest friend
};

struct social_graph_params {
    std::size_t user_count = 1'000;
    std::size_t attachment_edges = 4;  ///< BA parameter m (edges per new node)
    double tie_decay = 0.8;            ///< per-rank multiplicative tie decay
    double min_tie = 0.05;             ///< floor so ties stay positive
};

class social_graph {
public:
    social_graph(const social_graph_params& params, richnote::rng& gen);

    std::size_t user_count() const noexcept { return adjacency_.size(); }
    std::size_t edge_count() const noexcept { return edge_count_; }

    /// Friends of `user`, strongest tie first.
    const std::vector<friendship>& friends_of(user_id user) const;

    /// Tie strength between the two users; 0 if not friends.
    double tie(user_id user, user_id other) const;

    std::size_t degree(user_id user) const;

    /// Maximum degree across users (reporting / tests).
    std::size_t max_degree() const noexcept;

private:
    std::vector<std::vector<friendship>> adjacency_;
    std::size_t edge_count_ = 0;
};

} // namespace richnote::trace

#include "trace/survey.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace richnote::trace {

double pcm_size_bytes(double rate_khz, double duration_sec) noexcept {
    // 16-bit mono PCM: rate[kHz] * 1000 samples/s * 2 bytes.
    return rate_khz * 1000.0 * 2.0 * duration_sec;
}

survey::survey(const survey_params& params, std::uint64_t seed) : params_(params) {
    RICHNOTE_REQUIRE(params.respondents >= 2, "survey needs at least two respondents");
    RICHNOTE_REQUIRE(!params.sample_rates_khz.empty() && !params.durations_sec.empty(),
                     "survey needs a non-empty presentation grid");

    richnote::rng gen(seed);

    // Survey (2): stop durations ~ lognormal(median, sigma).
    const double mu = std::log(params.median_stop_duration_sec);
    stop_durations_.reserve(params.respondents);
    for (std::size_t r = 0; r < params.respondents; ++r) {
        stop_durations_.push_back(std::exp(gen.normal(mu, params.stop_duration_sigma)));
    }

    // Survey (1): each respondent rates each (rate, duration) presentation;
    // we store the per-presentation mean, as the paper reports.
    for (double rate : params.sample_rates_khz) {
        for (double duration : params.durations_sec) {
            const double latent = latent_score(rate, duration);
            double sum = 0.0;
            for (std::size_t r = 0; r < params.respondents; ++r) {
                const double rated = std::clamp(
                    latent + gen.normal(0.0, params.rating_noise_stddev), 0.0,
                    params.max_rating);
                sum += rated;
            }
            rated_presentation p;
            p.sample_rate_khz = rate;
            p.duration_sec = duration;
            p.size_bytes = pcm_size_bytes(rate, duration);
            p.mean_score = sum / static_cast<double>(params.respondents);
            ratings_.push_back(p);
        }
    }
}

double survey::latent_score(double rate_khz, double duration_sec) const noexcept {
    // Diminishing returns in both attributes: duration satisfaction follows
    // the lognormal CDF of "enough already" (the same latent law survey (2)
    // samples), audio-quality satisfaction saturates with sampling rate.
    const double mu = std::log(params_.median_stop_duration_sec);
    const double z = (std::log(std::max(duration_sec, 1e-9)) - mu) /
                     (params_.stop_duration_sigma * std::sqrt(2.0));
    const double duration_sat = 0.5 * (1.0 + std::erf(z)); // lognormal CDF
    const double quality_sat = 1.0 - std::exp(-rate_khz / 10.0);
    // Observed paper scores ranged 0.3–3.3 on the 0–5 scale; scale to match.
    return 0.25 + 3.2 * duration_sat * quality_sat;
}

std::vector<double> survey::duration_utility(const std::vector<double>& grid) const {
    std::vector<double> sorted = stop_durations_;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> out;
    out.reserve(grid.size());
    for (double d : grid) {
        const auto below = std::upper_bound(sorted.begin(), sorted.end(), d) - sorted.begin();
        out.push_back(static_cast<double>(below) / static_cast<double>(sorted.size()));
    }
    return out;
}

} // namespace richnote::trace

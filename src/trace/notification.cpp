#include "trace/notification.hpp"

namespace richnote::trace {

const char* to_string(notification_type type) noexcept {
    switch (type) {
        case notification_type::friend_feed: return "friend_feed";
        case notification_type::album_release: return "album_release";
        case notification_type::playlist_update: return "playlist_update";
    }
    return "?";
}

const std::array<std::string, notification_features::dimension>& notification_features::names() {
    static const std::array<std::string, dimension> names = {
        "social_tie",        "track_popularity", "album_popularity",
        "artist_popularity", "weekend",          "daytime"};
    return names;
}

std::vector<notification> notification_trace::flatten() const {
    std::vector<notification> all;
    all.reserve(total_count);
    for (const auto& stream : per_user) all.insert(all.end(), stream.begin(), stream.end());
    return all;
}

} // namespace richnote::trace

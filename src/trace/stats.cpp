#include "trace/stats.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace richnote::trace {

trace_stats analyze(const notification_trace& trace) {
    trace_stats stats;
    stats.users = trace.per_user.size();

    std::vector<double> per_user_counts;
    richnote::running_stats tie;
    richnote::running_stats popularity;
    richnote::sim::sim_time first = 0;
    richnote::sim::sim_time last = 0;
    bool any = false;

    for (const auto& stream : trace.per_user) {
        if (!stream.empty()) {
            ++stats.active_users;
            per_user_counts.push_back(static_cast<double>(stream.size()));
        }
        for (const notification& n : stream) {
            ++stats.total;
            stats.attended += n.attended;
            stats.clicked += n.clicked;
            ++stats.by_type[static_cast<std::size_t>(n.type)];
            const auto hour = static_cast<std::size_t>(
                richnote::sim::hour_of_day(n.created_at));
            stats.hourly_fraction[std::min<std::size_t>(hour, 23)] += 1.0;
            if (richnote::sim::is_weekend(n.created_at)) stats.weekend_fraction += 1.0;
            tie.add(n.features.social_tie);
            popularity.add(n.features.track_popularity);
            if (!any) {
                first = last = n.created_at;
                any = true;
            } else {
                first = std::min(first, n.created_at);
                last = std::max(last, n.created_at);
            }
        }
    }

    if (stats.total > 0) {
        const double total = static_cast<double>(stats.total);
        for (auto& f : stats.hourly_fraction) f /= total;
        stats.weekend_fraction /= total;
        stats.attention_rate = static_cast<double>(stats.attended) / total;
        stats.span = last - first;
    }
    if (stats.attended > 0) {
        stats.click_through_rate =
            static_cast<double>(stats.clicked) / static_cast<double>(stats.attended);
    }
    if (!per_user_counts.empty()) {
        stats.items_per_user_mean = richnote::mean(per_user_counts);
        stats.items_per_user_p50 = richnote::percentile(per_user_counts, 0.5);
        stats.items_per_user_p90 = richnote::percentile(per_user_counts, 0.9);
        stats.items_per_user_max = *std::max_element(per_user_counts.begin(),
                                                     per_user_counts.end());
    }
    stats.social_tie_mean = tie.mean();
    stats.track_popularity_mean = popularity.mean();
    return stats;
}

std::vector<user_id> heaviest_users(const notification_trace& trace, std::size_t count) {
    RICHNOTE_REQUIRE(count > 0, "need at least one user");
    std::vector<std::pair<std::size_t, user_id>> loads;
    loads.reserve(trace.per_user.size());
    for (user_id u = 0; u < trace.per_user.size(); ++u)
        loads.emplace_back(trace.per_user[u].size(), u);
    std::sort(loads.begin(), loads.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second; // stable tie-break by id
    });
    std::vector<user_id> out;
    out.reserve(std::min(count, loads.size()));
    for (std::size_t i = 0; i < loads.size() && i < count; ++i)
        out.push_back(loads[i].second);
    return out;
}

notification_trace restrict_to_users(const notification_trace& trace,
                                     const std::vector<user_id>& users) {
    notification_trace out;
    out.per_user.resize(trace.per_user.size());
    for (user_id u : users) {
        RICHNOTE_REQUIRE(u < trace.per_user.size(), "user id out of range");
        out.per_user[u] = trace.per_user[u];
        for (const notification& n : out.per_user[u]) {
            ++out.total_count;
            if (n.attended) ++out.attended_count;
            if (n.clicked) ++out.clicked_count;
        }
    }
    return out;
}

} // namespace richnote::trace

#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace richnote::trace {

namespace {

const std::vector<std::string>& schema() {
    static const std::vector<std::string> columns = {
        "id",          "recipient",        "type",
        "track",       "created_at",       "social_tie",
        "track_popularity", "album_popularity", "artist_popularity",
        "weekend",     "daytime",          "attended",
        "clicked",     "clicked_at"};
    return columns;
}

notification_type parse_type(const std::string& token) {
    if (token == "friend_feed") return notification_type::friend_feed;
    if (token == "album_release") return notification_type::album_release;
    if (token == "playlist_update") return notification_type::playlist_update;
    RICHNOTE_REQUIRE(false, "unknown notification type: " + token);
    return notification_type::friend_feed; // unreachable
}

bool parse_bool(const std::string& token, const char* field) {
    if (token == "1") return true;
    if (token == "0") return false;
    RICHNOTE_REQUIRE(false, std::string("boolean field '") + field + "' must be 0/1, got " +
                                token);
    return false; // unreachable
}

double parse_double(const std::string& token, const char* field) {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    RICHNOTE_REQUIRE(end && *end == '\0' && !token.empty(),
                     std::string("field '") + field + "' is not a number: " + token);
    return value;
}

std::uint64_t parse_u64(const std::string& token, const char* field) {
    char* end = nullptr;
    const auto value = std::strtoull(token.c_str(), &end, 10);
    RICHNOTE_REQUIRE(end && *end == '\0' && !token.empty(),
                     std::string("field '") + field + "' is not an integer: " + token);
    return value;
}

std::vector<std::string> split_row(const std::string& line) {
    // The schema contains no quoted fields, so a plain comma split is exact.
    std::vector<std::string> cells;
    std::size_t pos = 0;
    while (true) {
        const std::size_t comma = line.find(',', pos);
        cells.push_back(line.substr(pos, comma - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return cells;
}

} // namespace

std::size_t write_trace_csv(std::ostream& out, const notification_trace& trace) {
    richnote::csv_writer writer(out, schema());
    for (const auto& stream : trace.per_user) {
        for (const notification& n : stream) {
            std::ostringstream created, clicked_at, tie, tpop, apop, arpop;
            created.precision(17);
            created << n.created_at;
            clicked_at.precision(17);
            clicked_at << n.clicked_at;
            tie.precision(17);
            tie << n.features.social_tie;
            tpop.precision(17);
            tpop << n.features.track_popularity;
            apop.precision(17);
            apop << n.features.album_popularity;
            arpop.precision(17);
            arpop << n.features.artist_popularity;
            writer.write_row(std::vector<std::string>{
                std::to_string(n.id), std::to_string(n.recipient), to_string(n.type),
                std::to_string(n.track), created.str(), tie.str(), tpop.str(),
                apop.str(), arpop.str(), n.features.weekend ? "1" : "0",
                n.features.daytime ? "1" : "0", n.attended ? "1" : "0",
                n.clicked ? "1" : "0", clicked_at.str()});
        }
    }
    return writer.rows_written();
}

notification_trace read_trace_csv(std::istream& in, std::size_t user_count) {
    RICHNOTE_REQUIRE(user_count > 0, "user_count must be positive");
    std::string line;
    RICHNOTE_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty trace file");
    {
        const auto header = split_row(line);
        RICHNOTE_REQUIRE(header == schema(), "trace header does not match the schema");
    }

    notification_trace trace;
    trace.per_user.resize(user_count);
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const auto cells = split_row(line);
        RICHNOTE_REQUIRE(cells.size() == schema().size(),
                         "trace row has wrong number of fields");
        notification n;
        n.id = parse_u64(cells[0], "id");
        const auto recipient = parse_u64(cells[1], "recipient");
        RICHNOTE_REQUIRE(recipient < user_count, "recipient out of range");
        n.recipient = static_cast<user_id>(recipient);
        n.type = parse_type(cells[2]);
        n.track = static_cast<track_id>(parse_u64(cells[3], "track"));
        n.created_at = parse_double(cells[4], "created_at");
        n.features.social_tie = parse_double(cells[5], "social_tie");
        n.features.track_popularity = parse_double(cells[6], "track_popularity");
        n.features.album_popularity = parse_double(cells[7], "album_popularity");
        n.features.artist_popularity = parse_double(cells[8], "artist_popularity");
        n.features.weekend = parse_bool(cells[9], "weekend");
        n.features.daytime = parse_bool(cells[10], "daytime");
        n.attended = parse_bool(cells[11], "attended");
        n.clicked = parse_bool(cells[12], "clicked");
        n.clicked_at = parse_double(cells[13], "clicked_at");
        RICHNOTE_REQUIRE(!n.clicked || n.attended, "clicked implies attended");

        auto& stream = trace.per_user[n.recipient];
        RICHNOTE_REQUIRE(stream.empty() || stream.back().created_at <= n.created_at,
                         "per-user rows must be time-ordered");
        stream.push_back(n);
        ++trace.total_count;
        if (n.attended) ++trace.attended_count;
        if (n.clicked) ++trace.clicked_count;
    }
    return trace;
}

std::size_t save_trace(const std::string& path, const notification_trace& trace) {
    std::ofstream out(path);
    RICHNOTE_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
    const std::size_t rows = write_trace_csv(out, trace);
    RICHNOTE_REQUIRE(out.good(), "write failure on trace file: " + path);
    return rows;
}

notification_trace load_trace(const std::string& path, std::size_t user_count) {
    std::ifstream in(path);
    RICHNOTE_REQUIRE(in.good(), "cannot open trace file for reading: " + path);
    return read_trace_csv(in, user_count);
}

} // namespace richnote::trace

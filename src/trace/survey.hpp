// Synthetic user surveys for presentation utility (§V-B).
//
// The paper derives presentation utility from two subjective surveys we
// cannot re-run: (1) ratings of 20 audio presentations spanning 4 sampling
// rates x 5 durations, which yielded six Pareto-"useful" presentations with
// scores between 0.3 and 3.3; and (2) an 80-user stop-duration study whose
// duration CDF was fit with the logarithmic and polynomial families of
// Eqs. 8–9. This module simulates both studies from a latent
// diminishing-returns satisfaction law with per-respondent noise, so the
// downstream fitting pipeline (common/regression) runs on survey-shaped
// data exactly as the paper's did.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace richnote::trace {

/// One of the 20 rated audio presentations of survey (1).
struct rated_presentation {
    double sample_rate_khz = 0.0;
    double duration_sec = 0.0;
    double size_bytes = 0.0;  ///< uncompressed mono PCM at the given rate
    double mean_score = 0.0;  ///< mean respondent rating on the 0–5 scale
};

struct survey_params {
    std::size_t respondents = 80; ///< paper: "a survey among 80 users"
    std::vector<double> sample_rates_khz = {8.0, 16.0, 32.0, 44.0};
    std::vector<double> durations_sec = {5.0, 10.0, 20.0, 30.0, 40.0};

    // Latent satisfaction law parameters (ground truth the survey "measures").
    double median_stop_duration_sec = 12.0; ///< lognormal median of survey (2)
    double stop_duration_sigma = 0.9;       ///< lognormal shape
    double rating_noise_stddev = 1.2;       ///< per-respondent rating noise
    double max_rating = 5.0;
};

/// Simulated results of both §V-B surveys.
class survey {
public:
    survey(const survey_params& params, std::uint64_t seed);

    /// Survey (1): the 4x5 rated presentations, row-major by (rate, duration).
    const std::vector<rated_presentation>& ratings() const noexcept { return ratings_; }

    /// Survey (2): each respondent's stop duration ("stop at the point when
    /// ... the duration was barely enough for a good notification").
    const std::vector<double>& stop_durations() const noexcept { return stop_durations_; }

    /// Empirical CDF of stop durations at the given grid points — this is
    /// the paper's util(d) ("CDF of duration is translated into utility").
    std::vector<double> duration_utility(const std::vector<double>& grid) const;

    const survey_params& params() const noexcept { return params_; }

    /// Latent (noise-free) satisfaction of a (rate, duration) presentation
    /// on the 0–5 scale — the ground truth the ratings scatter around.
    double latent_score(double rate_khz, double duration_sec) const noexcept;

private:
    survey_params params_;
    std::vector<rated_presentation> ratings_;
    std::vector<double> stop_durations_;
};

/// Size in bytes of an uncompressed mono 16-bit PCM sample of the given
/// rate and duration (what survey (1) presentations weigh).
double pcm_size_bytes(double rate_khz, double duration_sec) noexcept;

} // namespace richnote::trace

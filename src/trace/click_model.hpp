// Ground-truth engagement model used to label the synthetic trace.
//
// The paper's labels come from real mouse activity in the Spotify client; we
// do not have that data, so a latent logistic model generates it
// (DESIGN.md §2): P(click | attended, features) = sigmoid(w·x + user bias +
// noise). The classifier in src/ml/ never sees the latent weights — it must
// recover the signal from features alone, exactly as the paper's Random
// Forest had to. The noise scale is calibrated so a well-trained model lands
// near the paper's precision 0.700 / accuracy 0.689 band (not at 1.0, which
// would be an unrealistically easy trace).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/time.hpp"
#include "trace/notification.hpp"

namespace richnote::trace {

struct click_model_params {
    // Logistic weights over notification_features (see to_array() order).
    double weight_social_tie = 3.6;
    double weight_track_popularity = 2.0;  ///< applied to popularity / 100
    double weight_album_popularity = 0.4;  ///< applied to popularity / 100
    double weight_artist_popularity = 1.2; ///< applied to popularity / 100
    double weight_weekend = 0.25;
    double weight_daytime = 0.35;
    double intercept = -2.8;

    double user_bias_stddev = 0.4;  ///< per-user taste offset
    double noise_stddev = 0.6;      ///< per-notification latent noise

    // Attention: probability the user gives the notification any mouse
    // activity at all (clicked OR hovered). The paper filters unattended
    // notifications from the training set; we reproduce that split.
    double attention_daytime = 0.55;
    double attention_nighttime = 0.20;

    double mean_click_delay_sec = 6.0 * 3600.0; ///< exp. delay to the click
};

class click_model {
public:
    /// `user_count` sizes the per-user bias table (drawn from `gen`).
    click_model(const click_model_params& params, std::size_t user_count, richnote::rng& gen);

    /// Latent click probability (before Bernoulli sampling / noise). This is
    /// the oracle the synthetic world defines; tests compare learned models
    /// against it.
    double click_probability(user_id user, const notification_features& features) const;

    /// Samples attention, click and click time for a notification in place.
    void label(notification& n, richnote::rng& gen) const;

    const click_model_params& params() const noexcept { return params_; }

private:
    click_model_params params_;
    std::vector<double> user_bias_;
};

/// Numerically stable logistic sigmoid.
double sigmoid(double z) noexcept;

} // namespace richnote::trace

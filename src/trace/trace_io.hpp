// Notification-trace serialization.
//
// The paper's pipeline starts from log files of notifications plus mouse
// activity; this module gives the library the same boundary. A generated
// (or externally produced) trace round-trips through a simple CSV schema —
// one row per notification — so experiments can run against recorded data
// instead of the synthetic generator, and synthetic traces can be exported
// for offline analysis.
//
// Schema (header enforced on read):
//   id,recipient,type,track,created_at,social_tie,track_popularity,
//   album_popularity,artist_popularity,weekend,daytime,attended,clicked,
//   clicked_at
#pragma once

#include <iosfwd>
#include <string>

#include "trace/notification.hpp"

namespace richnote::trace {

/// Writes the trace as CSV (all users interleaved, ordered by user then
/// time). Returns the number of data rows written.
std::size_t write_trace_csv(std::ostream& out, const notification_trace& trace);

/// Parses a trace written by write_trace_csv (or produced externally with
/// the same schema). `user_count` sizes per_user; rows referencing users
/// >= user_count are rejected. Rows must be in non-decreasing created_at
/// order per user. Throws precondition_error on any malformed content.
notification_trace read_trace_csv(std::istream& in, std::size_t user_count);

/// Convenience file wrappers; throw precondition_error on I/O failure.
std::size_t save_trace(const std::string& path, const notification_trace& trace);
notification_trace load_trace(const std::string& path, std::size_t user_count);

} // namespace richnote::trace

#include "trace/catalog.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/zipf.hpp"

namespace richnote::trace {

const char* to_string(genre g) noexcept {
    switch (g) {
        case genre::pop: return "pop";
        case genre::rock: return "rock";
        case genre::hiphop: return "hiphop";
        case genre::electronic: return "electronic";
        case genre::jazz: return "jazz";
        case genre::classical: return "classical";
        case genre::count: break;
    }
    return "?";
}

namespace {

/// Maps a Zipf rank to the 1–100 popularity scale: rank 0 maps near 100,
/// the tail decays toward 1 (log-rank interpolation keeps a realistic
/// spread instead of collapsing everything to 1).
double rank_to_popularity(std::size_t rank, std::size_t count) {
    if (count <= 1) return 100.0;
    const double x = std::log(1.0 + static_cast<double>(rank)) /
                     std::log(1.0 + static_cast<double>(count - 1));
    return 100.0 - 99.0 * x;
}

std::vector<double> popularity_cdf(const std::vector<double>& weights) {
    std::vector<double> cdf(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cdf[i] = acc;
    }
    RICHNOTE_CHECK(acc > 0.0, "popularity weights must be positive");
    for (auto& c : cdf) c /= acc;
    cdf.back() = 1.0;
    return cdf;
}

std::size_t sample_cdf(const std::vector<double>& cdf, richnote::rng& gen) {
    const double u = gen.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::size_t>(it - cdf.begin());
}

} // namespace

catalog::catalog(const catalog_params& params, richnote::rng& gen) {
    RICHNOTE_REQUIRE(params.artist_count > 0, "catalog needs at least one artist");
    RICHNOTE_REQUIRE(params.min_albums_per_artist >= 1 &&
                         params.max_albums_per_artist >= params.min_albums_per_artist,
                     "invalid albums-per-artist range");
    RICHNOTE_REQUIRE(params.min_tracks_per_album >= 1 &&
                         params.max_tracks_per_album >= params.min_tracks_per_album,
                     "invalid tracks-per-album range");
    RICHNOTE_REQUIRE(params.mean_track_duration_sec > 0, "track duration must be positive");

    // Artists: popularity by Zipf rank, shuffled genre assignment.
    artists_.reserve(params.artist_count);
    for (std::size_t rank = 0; rank < params.artist_count; ++rank) {
        artist a;
        a.id = static_cast<artist_id>(rank);
        a.main_genre = static_cast<genre>(gen.index(genre_count));
        a.popularity = rank_to_popularity(rank, params.artist_count);
        artists_.push_back(a);
    }

    // Albums and tracks, popularity correlated with the parent level.
    artist_tracks_.resize(params.artist_count);
    for (const artist& a : artists_) {
        const auto albums = static_cast<std::size_t>(gen.uniform_int(
            static_cast<std::int64_t>(params.min_albums_per_artist),
            static_cast<std::int64_t>(params.max_albums_per_artist)));
        for (std::size_t bi = 0; bi < albums; ++bi) {
            album b;
            b.id = static_cast<album_id>(albums_.size());
            b.by = a.id;
            b.popularity = std::clamp(a.popularity * gen.uniform(0.6, 1.1), 1.0, 100.0);
            b.first_track = static_cast<std::uint32_t>(tracks_.size());
            const auto n_tracks = static_cast<std::size_t>(gen.uniform_int(
                static_cast<std::int64_t>(params.min_tracks_per_album),
                static_cast<std::int64_t>(params.max_tracks_per_album)));
            b.track_count = static_cast<std::uint32_t>(n_tracks);
            for (std::size_t ti = 0; ti < n_tracks; ++ti) {
                track t;
                t.id = static_cast<track_id>(tracks_.size());
                t.on = b.id;
                t.by = a.id;
                t.track_genre = a.main_genre;
                t.popularity = std::clamp(b.popularity * gen.uniform(0.5, 1.2), 1.0, 100.0);
                t.duration_sec = std::max(
                    30.0, gen.normal(params.mean_track_duration_sec,
                                     params.track_duration_jitter_sec));
                tracks_.push_back(t);
                artist_tracks_[a.id].push_back(t.id);
            }
            albums_.push_back(b);
        }
    }

    std::vector<double> track_weights(tracks_.size());
    for (std::size_t i = 0; i < tracks_.size(); ++i) track_weights[i] = tracks_[i].popularity;
    track_popularity_cdf_ = popularity_cdf(track_weights);

    std::vector<double> artist_weights(artists_.size());
    for (std::size_t i = 0; i < artists_.size(); ++i) artist_weights[i] = artists_[i].popularity;
    artist_popularity_cdf_ = popularity_cdf(artist_weights);
}

const artist& catalog::artist_at(artist_id id) const {
    RICHNOTE_REQUIRE(id < artists_.size(), "artist id out of range");
    return artists_[id];
}

const album& catalog::album_at(album_id id) const {
    RICHNOTE_REQUIRE(id < albums_.size(), "album id out of range");
    return albums_[id];
}

track_id catalog::sample_track_by_popularity(richnote::rng& gen) const noexcept {
    return static_cast<track_id>(sample_cdf(track_popularity_cdf_, gen));
}

artist_id catalog::sample_artist_by_popularity(richnote::rng& gen) const noexcept {
    return static_cast<artist_id>(sample_cdf(artist_popularity_cdf_, gen));
}

track_id catalog::sample_track_of_artist(artist_id id, richnote::rng& gen) const {
    RICHNOTE_REQUIRE(id < artist_tracks_.size(), "artist id out of range");
    const auto& tracks = artist_tracks_[id];
    RICHNOTE_CHECK(!tracks.empty(), "artist with no tracks");
    return tracks[gen.index(tracks.size())];
}

} // namespace richnote::trace

// Notification records and the feature space used for content-utility
// learning (§V-A).
//
// A trace is, per user, a time-ordered stream of notifications with ground-
// truth engagement labels ("clicked" vs "hovered" among attended
// notifications), mirroring the de-identified Spotify logs of notifications
// plus mouse activity the paper trains on.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/catalog.hpp"
#include "trace/social_graph.hpp"

namespace richnote::trace {

/// Spotify's three topic classes (§II): friends listening to tracks, new
/// album releases, updates to followed playlists.
enum class notification_type : std::uint8_t { friend_feed = 0, album_release, playlist_update };

const char* to_string(notification_type type) noexcept;

/// The classifier feature vector (§V-A): social tie between sender and
/// recipient, track/album/artist popularity, and timestamp-derived
/// weekday/weekend and day/night indicators.
struct notification_features {
    double social_tie = 0.0;        ///< (0,1]; 0 = no relationship
    double track_popularity = 0.0;  ///< 1–100
    double album_popularity = 0.0;  ///< 1–100
    double artist_popularity = 0.0; ///< 1–100
    bool weekend = false;
    bool daytime = false;

    static constexpr std::size_t dimension = 6;

    std::array<double, dimension> to_array() const noexcept {
        return {social_tie,        track_popularity, album_popularity,
                artist_popularity, weekend ? 1.0 : 0.0, daytime ? 1.0 : 0.0};
    }

    static const std::array<std::string, dimension>& names();
};

struct notification {
    std::uint64_t id = 0;
    user_id recipient = 0;
    notification_type type = notification_type::friend_feed;
    track_id track = 0;
    richnote::sim::sim_time created_at = 0;
    notification_features features;

    // Ground-truth engagement (the "mouse activity" columns of the trace).
    bool attended = false; ///< user gave the notification any attention
    bool clicked = false;  ///< attended and clicked (vs merely hovered)
    richnote::sim::sim_time clicked_at = 0; ///< valid only when clicked
};

/// Per-user, time-ordered notification streams plus the shared catalog view.
struct notification_trace {
    std::vector<std::vector<notification>> per_user; ///< indexed by user id
    std::uint64_t total_count = 0;
    std::uint64_t attended_count = 0;
    std::uint64_t clicked_count = 0;

    std::size_t user_count() const noexcept { return per_user.size(); }

    /// All notifications flattened (copy) — training-set assembly.
    std::vector<notification> flatten() const;
};

} // namespace richnote::trace

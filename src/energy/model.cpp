#include "energy/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace richnote::energy {

using richnote::sim::net_state;

radio_profile default_profile(net_state state) noexcept {
    switch (state) {
        case net_state::cell:
            return radio_profile{3.4, 0.025, 12.5, 12.5};
        case net_state::wifi:
            return radio_profile{5.9, 0.007, 0.23, 1.0};
        case net_state::off:
            return radio_profile{};
    }
    return {};
}

double energy_model::isolated_transfer_joules(net_state state, double bytes) const noexcept {
    if (state == net_state::off || bytes <= 0.0) return 0.0;
    const radio_profile& p = profile(state);
    return p.ramp_joules + p.joules_per_kb * (bytes / 1024.0) + p.tail_joules;
}

double energy_model::session_joules(net_state state, double bytes,
                                    std::size_t transfers) const noexcept {
    if (state == net_state::off || transfers == 0) return 0.0;
    const radio_profile& p = profile(state);
    // One promotion and one tail for the whole back-to-back batch.
    return p.ramp_joules + p.joules_per_kb * (bytes / 1024.0) + p.tail_joules;
}

} // namespace richnote::energy

// Radio energy model.
//
// The paper computes "energy spent in downloading notifications based on the
// energy model from [9]" (Balasubramanian et al., IMC 2009). That study
// decomposes a transfer's cost into a ramp (promotion to the high-power
// radio state), a size-proportional transfer component, and — dominant for
// small transfers on 3G — a tail: the radio lingers in the high-power state
// for a fixed window after the transfer. WiFi has a small association cost
// and a much cheaper per-byte rate. We parameterize exactly that structure
// with the IMC'09 measurements as defaults (DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/network.hpp"

namespace richnote::energy {

/// Per-technology constants, IMC'09 Table-style defaults.
struct radio_profile {
    double ramp_joules = 0.0;     ///< cost of promoting the radio
    double joules_per_kb = 0.0;   ///< size-proportional transfer cost
    double tail_joules = 0.0;     ///< energy burned in the post-transfer tail
    double tail_window_sec = 0.0; ///< tail duration; transfers closer than
                                  ///< this share one tail
};

/// IMC'09 defaults: 3G ramp ~3.4 J, ~0.025 J/KB, ~12.5 J tail over ~12.5 s;
/// WiFi ~5.9 J association (amortized into ramp), ~0.007 J/KB, negligible
/// tail. OFF carries nothing.
radio_profile default_profile(richnote::sim::net_state state) noexcept;

class energy_model {
public:
    energy_model() = default;
    energy_model(radio_profile cell, radio_profile wifi) : cell_(cell), wifi_(wifi) {}

    const radio_profile& profile(richnote::sim::net_state state) const noexcept {
        switch (state) {
            case richnote::sim::net_state::cell: return cell_;
            case richnote::sim::net_state::wifi: return wifi_;
            case richnote::sim::net_state::off: return off_;
        }
        return off_;
    }

    /// Energy of a single isolated transfer: ramp + per-byte + full tail.
    double isolated_transfer_joules(richnote::sim::net_state state,
                                    double bytes) const noexcept;

    /// Energy of a batch of `bytes` delivered back-to-back in one radio
    /// session (one ramp, one tail) — how the delivery engine accounts a
    /// round's downloads.
    double session_joules(richnote::sim::net_state state, double bytes,
                          std::size_t transfers) const noexcept;

    /// Scheduler-facing estimate rho(i, j) (§III-C): the marginal energy of
    /// one item of `bytes` inside a typical delivery batch — the
    /// size-proportional part plus the session overhead amortized over an
    /// expected batch size. Inline: called once per item-level per round
    /// from the MCKP instance build.
    double estimate_rho(richnote::sim::net_state state, double bytes,
                        double expected_batch_items = 8.0) const noexcept {
        if (state == richnote::sim::net_state::off) return 0.0;
        const radio_profile& p = profile(state);
        const double overhead =
            (p.ramp_joules + p.tail_joules) / std::max(1.0, expected_batch_items);
        return overhead + p.joules_per_kb * (bytes / 1024.0);
    }

private:
    radio_profile cell_ = default_profile(richnote::sim::net_state::cell);
    radio_profile wifi_ = default_profile(richnote::sim::net_state::wifi);
    radio_profile off_ = default_profile(richnote::sim::net_state::off);
};

} // namespace richnote::energy

#include "pubsub/engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace richnote::pubsub {

const char* to_string(topic_kind kind) noexcept {
    switch (kind) {
        case topic_kind::user_feed: return "user_feed";
        case topic_kind::artist: return "artist";
        case topic_kind::playlist: return "playlist";
    }
    return "?";
}

topic_id user_feed_topic(std::uint32_t user) noexcept {
    return topic_id{topic_kind::user_feed, user};
}

topic_id artist_topic(std::uint32_t artist) noexcept {
    return topic_id{topic_kind::artist, artist};
}

topic_id playlist_topic(std::uint32_t playlist) noexcept {
    return topic_id{topic_kind::playlist, playlist};
}

bool engine::subscribe(subscriber_id subscriber, topic_id topic, double affinity,
                       content_filter filter) {
    RICHNOTE_REQUIRE(affinity > 0.0 && affinity <= 1.0, "affinity must be in (0,1]");
    auto& entries = topics_[topic];
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [subscriber](const subscription_entry& e) { return e.subscriber == subscriber; });
    if (it != entries.end()) {
        it->affinity = affinity;
        it->filter = filter;
        return false;
    }
    entries.push_back(subscription_entry{subscriber, affinity, filter});
    ++subscriptions_;
    return true;
}

bool engine::unsubscribe(subscriber_id subscriber, topic_id topic) {
    const auto topic_it = topics_.find(topic);
    if (topic_it == topics_.end()) return false;
    auto& entries = topic_it->second;
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [subscriber](const subscription_entry& e) { return e.subscriber == subscriber; });
    if (it == entries.end()) return false;
    entries.erase(it); // preserves subscription order of the rest
    --subscriptions_;
    if (entries.empty()) topics_.erase(topic_it);
    return true;
}

std::size_t engine::unsubscribe_all(subscriber_id subscriber) {
    std::size_t removed = 0;
    for (auto it = topics_.begin(); it != topics_.end();) {
        auto& entries = it->second;
        const auto match = std::find_if(
            entries.begin(), entries.end(),
            [subscriber](const subscription_entry& e) { return e.subscriber == subscriber; });
        if (match != entries.end()) {
            entries.erase(match);
            --subscriptions_;
            ++removed;
        }
        it = entries.empty() ? topics_.erase(it) : std::next(it);
    }
    return removed;
}

bool engine::is_subscribed(subscriber_id subscriber, topic_id topic) const noexcept {
    return affinity(subscriber, topic) > 0.0;
}

double engine::affinity(subscriber_id subscriber, topic_id topic) const noexcept {
    const auto topic_it = topics_.find(topic);
    if (topic_it == topics_.end()) return 0.0;
    for (const auto& e : topic_it->second) {
        if (e.subscriber == subscriber) return e.affinity;
    }
    return 0.0;
}

std::size_t engine::subscriber_count(topic_id topic) const noexcept {
    const auto it = topics_.find(topic);
    return it == topics_.end() ? 0 : it->second.size();
}

std::uint64_t engine::publish(const publication& pub, const sink& deliver) {
    RICHNOTE_REQUIRE(deliver != nullptr, "publish needs a delivery sink");
    ++publications_;
    const auto it = topics_.find(pub.topic);
    if (it == topics_.end()) return 0;
    std::uint64_t count = 0;
    for (const auto& e : it->second) {
        if (pub.topic.kind == topic_kind::user_feed && e.subscriber == pub.publisher)
            continue; // no self-notification on one's own feed
        if (!e.filter.passes(pub)) {
            ++filtered_;
            continue;
        }
        deliver(e.subscriber, e.affinity, pub);
        ++count;
    }
    deliveries_ += count;
    return count;
}

} // namespace richnote::pubsub

// Topic-based publish/subscribe engine (§II).
//
// "Today, Spotify is known to use the topic-based pub/sub paradigm for
// delivering notifications arising from music-associated social
// interaction among its users. The topics may correspond to users friends,
// artist pages or publicly available music playlists. The publications for
// these topics are notifications about friends listening to music tracks,
// new album releases, and updates to followed playlists."
//
// This module is that substrate: a topic registry with per-topic
// subscriber lists, synchronous fan-out on publish, and per-subscription
// affinities (the tie-strength feature the recipient-side utility model
// consumes). The workload generator (trace/generator) builds its
// subscription tables here and produces every notification through
// publish(), so the delivery pipeline sits on a genuine pub/sub engine
// rather than on hand-rolled loops.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace richnote::pubsub {

/// The three topic classes of §II.
enum class topic_kind : std::uint8_t { user_feed = 0, artist = 1, playlist = 2 };

const char* to_string(topic_kind kind) noexcept;

/// Dense topic identifier: kind tag packed with the kind-specific key
/// (user id / artist id / playlist id).
struct topic_id {
    topic_kind kind = topic_kind::user_feed;
    std::uint32_t key = 0;

    friend bool operator==(const topic_id&, const topic_id&) = default;
};

topic_id user_feed_topic(std::uint32_t user) noexcept;
topic_id artist_topic(std::uint32_t artist) noexcept;
topic_id playlist_topic(std::uint32_t playlist) noexcept;

struct topic_id_hash {
    std::size_t operator()(const topic_id& id) const noexcept {
        return (static_cast<std::size_t>(id.kind) << 32) ^ id.key;
    }
};

/// One event published on a topic, carrying the content attributes that
/// content filters may predicate on.
struct publication {
    topic_id topic;
    std::uint32_t track = 0;
    richnote::sim::sim_time at = 0;
    std::uint32_t publisher = 0; ///< user id for user_feed topics; else unused
    double popularity = 0.0;     ///< track popularity, 1-100 (0 = unknown)
    std::uint8_t genre = 0;      ///< genre index (< 32)
};

/// Optional per-subscription content filter — the content-based refinement
/// the paper contrasts with in §VI ("pub/sub ... that may be content-based
/// or topic-based"). A publication is delivered only if it satisfies every
/// set predicate; the default filter passes everything, so plain topic
/// subscriptions behave exactly as before.
struct content_filter {
    double min_popularity = 0.0;           ///< require popularity >= this
    std::uint32_t genre_mask = 0xffffffffu; ///< bit per genre index

    bool passes(const publication& pub) const noexcept {
        if (pub.popularity < min_popularity) return false;
        return (genre_mask & (1u << (pub.genre & 31u))) != 0;
    }
};

/// Synchronous topic-based engine. Single-threaded by design: the trace
/// generator and simulator drive it from one thread; determinism matters
/// more than concurrency here (subscribers are fanned out in subscription
/// order).
class engine {
public:
    using subscriber_id = std::uint32_t;

    /// Delivery sink: receives (subscriber, per-subscription affinity,
    /// publication) for every match.
    using sink = std::function<void(subscriber_id, double affinity, const publication&)>;

    engine() = default;

    /// Subscribes with an affinity in (0, 1]; re-subscribing updates the
    /// affinity (and filter) in place. Returns true if the subscription was
    /// new. The optional content filter narrows which publications on the
    /// topic reach this subscriber.
    bool subscribe(subscriber_id subscriber, topic_id topic, double affinity,
                   content_filter filter = {});

    /// Removes a subscription; returns false if it did not exist.
    bool unsubscribe(subscriber_id subscriber, topic_id topic);

    /// Removes every subscription of the subscriber (account deletion /
    /// opt-out). Returns the number removed. O(total subscriptions).
    std::size_t unsubscribe_all(subscriber_id subscriber);

    bool is_subscribed(subscriber_id subscriber, topic_id topic) const noexcept;

    /// Current affinity, or 0 when not subscribed.
    double affinity(subscriber_id subscriber, topic_id topic) const noexcept;

    std::size_t subscriber_count(topic_id topic) const noexcept;
    std::size_t topic_count() const noexcept { return topics_.size(); }
    std::uint64_t subscription_count() const noexcept { return subscriptions_; }

    /// Fans the publication out to every subscriber of its topic whose
    /// content filter passes, in subscription order. The publisher itself
    /// is skipped on user_feed topics (you are not notified of your own
    /// listening). Returns the number of deliveries.
    std::uint64_t publish(const publication& pub, const sink& deliver);

    /// Deliveries suppressed by content filters so far.
    std::uint64_t filtered() const noexcept { return filtered_; }

    // ----- cumulative statistics (§II scalability discussion) -----
    std::uint64_t publications() const noexcept { return publications_; }
    std::uint64_t deliveries() const noexcept { return deliveries_; }

private:
    struct subscription_entry {
        subscriber_id subscriber;
        double affinity;
        content_filter filter;
    };

    std::unordered_map<topic_id, std::vector<subscription_entry>, topic_id_hash> topics_;
    std::uint64_t subscriptions_ = 0;
    std::uint64_t publications_ = 0;
    std::uint64_t deliveries_ = 0;
    std::uint64_t filtered_ = 0;
};

} // namespace richnote::pubsub

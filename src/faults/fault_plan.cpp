#include "faults/fault_plan.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace richnote::faults {

namespace {

// Distinct stream tags so the fault kinds draw independent randomness from
// the same seed.
enum stream : std::uint64_t {
    stream_blackout = 0x1b1ac0ed,
    stream_partial_fire = 0x2cafe001,
    stream_partial_frac = 0x2cafe002,
    stream_duplicate = 0x3d0b1e00,
    stream_reorder = 0x4e0d3700,
    stream_brownout = 0x5b0e0e00,
    stream_crash = 0x6c0a5e00,
    stream_regional = 0x7e010000,
};

std::uint64_t hash3(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                    std::uint64_t b) noexcept {
    return richnote::mix64(richnote::mix64(richnote::mix64(seed ^ tag) ^ a) ^ b);
}

/// Uniform double in [0, 1) from a hash value (same mapping as rng::uniform).
double u01(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool fires(double prob, std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
           std::uint64_t b) noexcept {
    return prob > 0.0 && u01(hash3(seed, tag, a, b)) < prob;
}

/// Is `round` covered by a window of `length` rounds whose starts fire with
/// `prob` per round? Checks the `length` candidate start rounds.
bool in_window(double prob, std::uint32_t length, std::uint64_t seed, std::uint64_t tag,
               std::uint64_t user, std::uint64_t round) noexcept {
    if (prob <= 0.0 || length == 0) return false;
    const std::uint64_t first = round >= length ? round - length + 1 : 0;
    for (std::uint64_t start = first; start <= round; ++start) {
        if (fires(prob, seed, tag, user, start)) return true;
    }
    return false;
}

} // namespace

bool fault_plan_params::any() const noexcept {
    return blackout_prob > 0.0 || partial_transfer_prob > 0.0 || duplicate_prob > 0.0 ||
           reorder_prob > 0.0 || brownout_prob > 0.0 || crash_restart_prob > 0.0 ||
           regional_outage_prob > 0.0;
}

fault_plan_params fault_plan_params::scaled(double intensity) const noexcept {
    fault_plan_params out = *this;
    auto scale = [intensity](double p) { return std::clamp(p * intensity, 0.0, 1.0); };
    out.blackout_prob = scale(blackout_prob);
    out.partial_transfer_prob = scale(partial_transfer_prob);
    out.duplicate_prob = scale(duplicate_prob);
    out.reorder_prob = scale(reorder_prob);
    out.brownout_prob = scale(brownout_prob);
    out.crash_restart_prob = scale(crash_restart_prob);
    out.regional_outage_prob = scale(regional_outage_prob);
    return out;
}

fault_plan::fault_plan(fault_plan_params params) : params_(params) {
    auto check_prob = [](double p, const char* what) {
        RICHNOTE_REQUIRE(p >= 0.0 && p <= 1.0, std::string(what) + " must be in [0,1]");
    };
    check_prob(params_.blackout_prob, "blackout_prob");
    check_prob(params_.partial_transfer_prob, "partial_transfer_prob");
    check_prob(params_.duplicate_prob, "duplicate_prob");
    check_prob(params_.reorder_prob, "reorder_prob");
    check_prob(params_.brownout_prob, "brownout_prob");
    check_prob(params_.crash_restart_prob, "crash_restart_prob");
    check_prob(params_.regional_outage_prob, "regional_outage_prob");
    RICHNOTE_REQUIRE(params_.regional_outage_prob == 0.0 || params_.regions >= 1,
                     "regional outages need regions >= 1");
    RICHNOTE_REQUIRE(params_.min_transfer_fraction >= 0.0 &&
                         params_.min_transfer_fraction < 1.0,
                     "min_transfer_fraction must be in [0,1)");
}

bool fault_plan::blackout(std::uint32_t user, std::uint64_t round) const noexcept {
    return in_window(params_.blackout_prob, params_.blackout_rounds, params_.seed,
                     stream_blackout, user, round) ||
           regional_outage(user, round);
}

std::uint32_t fault_plan::region_of(std::uint32_t user) const noexcept {
    return params_.regions > 0 ? user % params_.regions : 0;
}

bool fault_plan::regional_outage(std::uint32_t user, std::uint64_t round) const noexcept {
    // Keyed on the REGION, not the user: every user in the region sees the
    // same window, which is exactly the correlation the independent
    // per-user blackout stream cannot produce.
    return in_window(params_.regional_outage_prob, params_.regional_outage_rounds,
                     params_.seed, stream_regional, region_of(user), round);
}

bool fault_plan::brownout(std::uint32_t user, std::uint64_t round) const noexcept {
    return in_window(params_.brownout_prob, params_.brownout_rounds, params_.seed,
                     stream_brownout, user, round);
}

double fault_plan::transfer_fraction(std::uint32_t user, std::uint64_t round,
                                     std::uint64_t item) const noexcept {
    // Two independent draws keyed on (user, round, item): does the link cut,
    // and if so how many of the remaining bytes landed first.
    const std::uint64_t key = richnote::mix64(round) ^ item;
    if (!fires(params_.partial_transfer_prob, params_.seed, stream_partial_fire, user, key))
        return 1.0;
    const double span = 1.0 - params_.min_transfer_fraction;
    return params_.min_transfer_fraction +
           span * u01(hash3(params_.seed, stream_partial_frac, user, key));
}

bool fault_plan::duplicate_arrival(std::uint32_t user, std::uint64_t note_id) const noexcept {
    return fires(params_.duplicate_prob, params_.seed, stream_duplicate, user, note_id);
}

bool fault_plan::reorder_arrivals(std::uint32_t user, std::uint64_t round) const noexcept {
    return fires(params_.reorder_prob, params_.seed, stream_reorder, user, round);
}

std::uint64_t fault_plan::reorder_seed(std::uint32_t user, std::uint64_t round) const noexcept {
    return hash3(params_.seed, stream_reorder ^ 0xffff, user, round);
}

bool fault_plan::crash_restart(std::uint32_t user, std::uint64_t round) const noexcept {
    return fires(params_.crash_restart_prob, params_.seed, stream_crash, user, round);
}

} // namespace richnote::faults

// Deterministic fault-injection plan.
//
// A fault_plan schedules injectable faults per user and per round: network
// blackout windows, flaky-link partial transfers (a fraction of the bytes
// lands before the cut), duplicated and reordered trace arrivals from the
// pub/sub engine, battery brownouts, and broker crash-restart events.
//
// Every query is a PURE function of (seed, fault kind, user, round [, item]):
// the plan holds no mutable state and draws nothing from a shared stream, so
// the same seed produces the same fault schedule no matter how users are
// sharded across worker threads or in which order brokers consult it. That
// is the determinism guarantee the chaos tests and the fault-tolerance bench
// lean on: same seed + same fault_plan => identical results.
#pragma once

#include <cstdint>

namespace richnote::faults {

struct fault_plan_params {
    std::uint64_t seed = 0;

    /// Per (user, round) probability that a network blackout window STARTS;
    /// the window then covers `blackout_rounds` consecutive rounds during
    /// which the user's link is forced down regardless of the Markov state.
    double blackout_prob = 0.0;
    std::uint32_t blackout_rounds = 3;

    /// Per-transfer probability that the link cuts mid-flight: a fraction of
    /// the remaining bytes (uniform in [min_transfer_fraction, 1)) lands
    /// before the cut and is resumable from the high-water mark.
    double partial_transfer_prob = 0.0;
    double min_transfer_fraction = 0.0;

    /// Per-notification probability that the pub/sub engine replays the
    /// publish, so the broker sees the same notification id twice.
    double duplicate_prob = 0.0;

    /// Per (user, round) probability that the round's trace arrivals reach
    /// the broker out of timestamp order.
    double reorder_prob = 0.0;

    /// Per (user, round) probability that a battery brownout window STARTS:
    /// for `brownout_rounds` rounds the energy-budget replenishment e(t) is
    /// forced to zero (the device is too low to grant the radio any budget).
    double brownout_prob = 0.0;
    std::uint32_t brownout_rounds = 2;

    /// Per (user, round) probability that the user's broker crashes after
    /// the round and restarts from its last checkpoint.
    double crash_restart_prob = 0.0;

    /// Correlated regional outages (the eval harness's "regional_outage"
    /// scenario pack): users are partitioned into `regions` groups
    /// (region = user % regions) and a per (region, round) probability
    /// starts an outage window of `regional_outage_rounds` rounds during
    /// which EVERY user in the region loses its link simultaneously —
    /// unlike `blackout_prob`, whose windows are independent per user.
    double regional_outage_prob = 0.0;
    std::uint32_t regions = 8;
    std::uint32_t regional_outage_rounds = 6;

    /// True when any fault can ever fire.
    bool any() const noexcept;

    /// Copy with every probability multiplied by `intensity` (clamped to
    /// [0, 1]); window lengths and the seed are unchanged. This is the
    /// single knob the fault-tolerance bench sweeps.
    fault_plan_params scaled(double intensity) const noexcept;
};

class fault_plan {
public:
    /// Default-constructed plans are inert: no fault ever fires.
    fault_plan() = default;
    explicit fault_plan(fault_plan_params params);

    const fault_plan_params& params() const noexcept { return params_; }
    bool enabled() const noexcept { return params_.any(); }

    /// Is `round` inside a blackout window for `user`? Covers both the
    /// per-user independent windows and the correlated regional outages —
    /// the broker treats them identically (link down).
    bool blackout(std::uint32_t user, std::uint64_t round) const noexcept;

    /// Is `round` inside a correlated regional-outage window for `user`'s
    /// region? (Subset of blackout(); exposed for tests and telemetry.)
    bool regional_outage(std::uint32_t user, std::uint64_t round) const noexcept;

    /// The region `user` belongs to (user % regions; 0 when regions == 0).
    std::uint32_t region_of(std::uint32_t user) const noexcept;

    /// Is `round` inside a battery-brownout window for `user`?
    bool brownout(std::uint32_t user, std::uint64_t round) const noexcept;

    /// Fraction of the remaining bytes of `item` that land if the broker
    /// attempts the transfer in `round`: 1.0 = the transfer completes,
    /// anything below 1 is a mid-flight cut at that fraction.
    double transfer_fraction(std::uint32_t user, std::uint64_t round,
                             std::uint64_t item) const noexcept;

    /// Should the publish of notification `note_id` be replayed to `user`?
    bool duplicate_arrival(std::uint32_t user, std::uint64_t note_id) const noexcept;

    /// Should the arrivals admitted to `user` in `round` be reordered?
    bool reorder_arrivals(std::uint32_t user, std::uint64_t round) const noexcept;

    /// Deterministic permutation seed for a reordered batch (feed to an rng).
    std::uint64_t reorder_seed(std::uint32_t user, std::uint64_t round) const noexcept;

    /// Does the user's broker crash (and restart from its checkpoint)
    /// immediately before serving `round`?
    bool crash_restart(std::uint32_t user, std::uint64_t round) const noexcept;

private:
    fault_plan_params params_;
};

} // namespace richnote::faults

#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace richnote {

config config::from_args(int argc, const char* const* argv) {
    config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        const auto eq = token.find('=');
        RICHNOTE_REQUIRE(eq != std::string::npos && eq > 0,
                         "expected key=value argument, got: " + token);
        cfg.set(token.substr(0, eq), token.substr(eq + 1));
    }
    return cfg;
}

void config::set(const std::string& key, std::string value) {
    auto [it, inserted] = values_.insert_or_assign(key, std::move(value));
    (void)it;
    if (inserted) order_.push_back(key);
}

bool config::has(const std::string& key) const noexcept { return values_.count(key) > 0; }

std::string config::get_string(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t config::get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const std::int64_t parsed = std::strtoll(it->second.c_str(), &end, 10);
    RICHNOTE_REQUIRE(end && *end == '\0' && !it->second.empty(),
                     "config key '" + key + "' is not an integer: " + it->second);
    return parsed;
}

double config::get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    RICHNOTE_REQUIRE(end && *end == '\0' && !it->second.empty(),
                     "config key '" + key + "' is not a number: " + it->second);
    return parsed;
}

bool config::get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    RICHNOTE_REQUIRE(false, "config key '" + key + "' is not a boolean: " + v);
    return fallback; // unreachable
}

std::vector<std::string> config::get_string_list(const std::string& key,
                                                 std::vector<std::string> fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::vector<std::string> items;
    const std::string& list = it->second;
    std::size_t pos = 0;
    while (true) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(pos, comma - pos);
        RICHNOTE_REQUIRE(!item.empty(),
                         "config key '" + key + "' has an empty list item: " + list);
        items.push_back(item);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return items;
}

std::vector<double> config::get_double_list(const std::string& key,
                                            std::vector<double> fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::vector<double> values;
    for (const std::string& item : get_string_list(key, {})) {
        char* end = nullptr;
        const double parsed = std::strtod(item.c_str(), &end);
        RICHNOTE_REQUIRE(end && *end == '\0',
                         "config key '" + key + "' has a non-numeric list item: " + item);
        values.push_back(parsed);
    }
    return values;
}

void config::restrict_to(const std::vector<std::string>& allowed) const {
    for (const auto& key : order_) {
        const bool ok = std::find(allowed.begin(), allowed.end(), key) != allowed.end();
        RICHNOTE_REQUIRE(ok, "unknown config key: " + key);
    }
}

} // namespace richnote

// Nonparametric bootstrap confidence intervals.
//
// The paper's presentation-utility surveys are "limited in scale" (80
// respondents; §V-B closes by noting a crowdsourced survey "can give better
// results"). The bootstrap quantifies exactly how limited: resample the
// respondents with replacement, refit the statistic, and report percentile
// intervals. Used by bench/fig2b_duration_fit to put error bars on the
// Eq. 8 coefficients.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace richnote {

struct bootstrap_result {
    double estimate = 0.0; ///< statistic on the original sample
    double lo = 0.0;       ///< lower percentile bound
    double hi = 0.0;       ///< upper percentile bound
    double stderr_boot = 0.0; ///< bootstrap standard error
    std::size_t resamples = 0;
};

/// `statistic` receives a multiset of sample indices (with repetitions) in
/// [0, sample_size) and returns the statistic of that resample. `confidence`
/// in (0, 1) selects the percentile interval (e.g. 0.95).
inline bootstrap_result bootstrap_ci(
    std::size_t sample_size, std::size_t resamples, double confidence, std::uint64_t seed,
    const std::function<double(const std::vector<std::size_t>&)>& statistic) {
    RICHNOTE_REQUIRE(sample_size > 0, "bootstrap needs a non-empty sample");
    RICHNOTE_REQUIRE(resamples >= 10, "need at least 10 resamples");
    RICHNOTE_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
    RICHNOTE_REQUIRE(statistic != nullptr, "bootstrap needs a statistic");

    std::vector<std::size_t> identity(sample_size);
    std::iota(identity.begin(), identity.end(), std::size_t{0});

    bootstrap_result result;
    result.estimate = statistic(identity);
    result.resamples = resamples;

    rng gen(seed);
    std::vector<double> values;
    values.reserve(resamples);
    std::vector<std::size_t> draw(sample_size);
    running_stats spread;
    for (std::size_t b = 0; b < resamples; ++b) {
        for (auto& index : draw) index = gen.index(sample_size);
        const double value = statistic(draw);
        values.push_back(value);
        spread.add(value);
    }
    const double alpha = (1.0 - confidence) / 2.0;
    result.lo = percentile(values, alpha);
    result.hi = percentile(std::move(values), 1.0 - alpha);
    result.stderr_boot = spread.stddev();
    return result;
}

} // namespace richnote

// Zipf-distributed sampling for heavy-tailed popularity (music catalog,
// artist follow counts). Precomputes the CDF once; each draw is a binary
// search, so sampling is O(log n).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace richnote {

class zipf_distribution {
public:
    /// Ranks 1..n with P(rank k) proportional to 1 / k^exponent.
    zipf_distribution(std::size_t n, double exponent);

    /// Draws a 0-based rank (0 = most popular).
    std::size_t sample(rng& gen) const noexcept;

    /// Probability mass of the 0-based rank.
    double pmf(std::size_t rank) const noexcept;

    std::size_t size() const noexcept { return cdf_.size(); }
    double exponent() const noexcept { return exponent_; }

private:
    double exponent_;
    std::vector<double> cdf_;
};

} // namespace richnote

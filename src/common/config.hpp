// Tiny key=value configuration parsing for examples and figure harnesses.
//
// Accepts command-line tokens of the form `key=value` (e.g. `users=500
// rounds=336 seed=7`) so every bench/example can be rescaled without
// recompiling. Unknown keys are rejected when a schema is provided, catching
// typos in sweep scripts early.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace richnote {

class config {
public:
    config() = default;

    /// Parses argv-style `key=value` tokens; throws precondition_error on a
    /// token without '='.
    static config from_args(int argc, const char* const* argv);

    void set(const std::string& key, std::string value);

    bool has(const std::string& key) const noexcept;

    /// Typed getters with defaults; throw precondition_error on parse failure.
    std::string get_string(const std::string& key, const std::string& fallback) const;
    std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    double get_double(const std::string& key, double fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;

    /// Comma-separated number list ("budgets=1,5,20"). Strict: every item
    /// must be a complete number — "5x" or an empty item is a named error,
    /// where the historical std::stod call sites silently swallowed the
    /// trailing garbage. Returns `fallback` when the key is absent.
    std::vector<double> get_double_list(const std::string& key,
                                        std::vector<double> fallback) const;

    /// Comma-separated string list ("arms=richnote,fifo"); empty items are
    /// a named error. Returns `fallback` when the key is absent.
    std::vector<std::string> get_string_list(const std::string& key,
                                             std::vector<std::string> fallback) const;

    /// All keys in insertion order (for echoing the effective config).
    const std::vector<std::string>& keys() const noexcept { return order_; }

    /// Throws if any present key is not in `allowed` — typo protection.
    void restrict_to(const std::vector<std::string>& allowed) const;

private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
};

} // namespace richnote

// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed (or an
// rng&) so that simulations, trace generation and model training are fully
// reproducible. The generator is xoshiro256** (Blackman & Vigna), seeded via
// splitmix64; it satisfies std::uniform_random_bit_generator so it composes
// with <random> distributions, but we also provide the handful of
// distributions the library needs directly, with stable cross-platform
// output (libstdc++ / libc++ distributions are not bit-identical).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace richnote {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t value) noexcept;

/// xoshiro256** generator with explicit seeding and handy distributions.
class rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four lanes from `seed` via splitmix64.
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    /// Next raw 64-bit output (xoshiro256**). Inline: this is the base of
    /// every per-round random draw in the simulator.
    result_type operator()() noexcept {
        const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl_(state_[3], 45);
        return result;
    }

    /// Creates an independent child stream (useful to give each simulated
    /// user / component its own generator without correlated sequences).
    rng split() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        // 53 high-quality bits -> double in [0, 1).
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }
    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept { return uniform() < p; }
    /// Standard normal via Marsaglia polar method.
    double normal() noexcept;
    /// Normal with the given mean / stddev.
    double normal(double mean, double stddev) noexcept;
    /// Exponential with the given rate (mean 1/rate); rate must be > 0.
    double exponential(double rate) noexcept;
    /// Poisson-distributed count with the given mean (>= 0).
    std::uint32_t poisson(double mean) noexcept;

    /// Uniformly random index into a container of the given size (> 0).
    std::size_t index(std::size_t size) noexcept;

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[index(i)]);
        }
    }

    /// Sample an index according to (unnormalized, non-negative) weights.
    /// Returns weights.size() if the total weight is zero.
    std::size_t weighted_index(const std::vector<double>& weights) noexcept;

private:
    static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace richnote

// Indexed binary heap with update-key, shared by the MCKP gradient heap
// (src/core/mckp.*) and the discrete-event queue (src/sim/event_queue.*).
//
// Elements are identified by a dense external id in [0, capacity). The heap
// supports push / pop-top / update-priority / erase in O(log n), and keeps
// the paper's `O(n + k log n)` bound for SelectPresentations via bulk
// `build` (Floyd heapify, O(n)).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"

namespace richnote {

/// Compare is a strict weak ordering on priorities; the element whose
/// priority compares GREATEST (by Compare as "less") is at the top — i.e.
/// with std::less this is a max-heap.
template <typename Priority, typename Compare = std::less<Priority>>
class indexed_heap {
public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit indexed_heap(std::size_t capacity = 0, Compare cmp = Compare{})
        : cmp_(std::move(cmp)), position_(capacity, npos) {}

    std::size_t size() const noexcept { return heap_.size(); }
    bool empty() const noexcept { return heap_.empty(); }
    std::size_t capacity() const noexcept { return position_.size(); }

    bool contains(std::size_t id) const noexcept {
        return id < position_.size() && position_[id] != npos;
    }

    /// Grows the id space (existing entries keep their ids).
    void reserve_ids(std::size_t capacity) {
        if (capacity > position_.size()) position_.resize(capacity, npos);
    }

    /// O(n) bulk construction from (id, priority) pairs; replaces contents.
    void build(const std::vector<std::pair<std::size_t, Priority>>& items) {
        heap_.clear();
        std::fill(position_.begin(), position_.end(), npos);
        heap_.reserve(items.size());
        for (const auto& [id, priority] : items) {
            RICHNOTE_REQUIRE(id < position_.size(), "heap id out of range");
            RICHNOTE_REQUIRE(position_[id] == npos, "duplicate id in heap build");
            position_[id] = heap_.size();
            heap_.push_back(entry{id, priority});
        }
        if (heap_.size() > 1) {
            for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
        }
    }

    void push(std::size_t id, Priority priority) {
        RICHNOTE_REQUIRE(id < position_.size(), "heap id out of range");
        RICHNOTE_REQUIRE(position_[id] == npos, "id already in heap");
        position_[id] = heap_.size();
        heap_.push_back(entry{id, std::move(priority)});
        sift_up(heap_.size() - 1);
    }

    /// Id of the top element; heap must be non-empty.
    std::size_t top_id() const {
        RICHNOTE_REQUIRE(!heap_.empty(), "top of an empty heap");
        return heap_.front().id;
    }

    const Priority& top_priority() const {
        RICHNOTE_REQUIRE(!heap_.empty(), "top of an empty heap");
        return heap_.front().priority;
    }

    const Priority& priority_of(std::size_t id) const {
        RICHNOTE_REQUIRE(contains(id), "id not in heap");
        return heap_[position_[id]].priority;
    }

    /// Removes and returns the top id.
    std::size_t pop() {
        const std::size_t id = top_id();
        erase(id);
        return id;
    }

    /// Changes the priority of an existing element, restoring heap order.
    void update(std::size_t id, Priority priority) {
        RICHNOTE_REQUIRE(contains(id), "id not in heap");
        const std::size_t pos = position_[id];
        const bool increased = cmp_(heap_[pos].priority, priority);
        heap_[pos].priority = std::move(priority);
        if (increased)
            sift_up(pos);
        else
            sift_down(pos);
    }

    void erase(std::size_t id) {
        RICHNOTE_REQUIRE(contains(id), "id not in heap");
        const std::size_t pos = position_[id];
        const std::size_t last = heap_.size() - 1;
        if (pos != last) {
            swap_entries(pos, last);
            heap_.pop_back();
            position_[id] = npos;
            // The moved element may need to go either way.
            if (!sift_up(pos)) sift_down(pos);
        } else {
            heap_.pop_back();
            position_[id] = npos;
        }
    }

    void clear() noexcept {
        heap_.clear();
        std::fill(position_.begin(), position_.end(), npos);
    }

    /// Verifies the heap property and index consistency (test support).
    bool validate() const {
        for (std::size_t i = 0; i < heap_.size(); ++i) {
            if (position_[heap_[i].id] != i) return false;
            const std::size_t left = 2 * i + 1;
            const std::size_t right = 2 * i + 2;
            if (left < heap_.size() && cmp_(heap_[i].priority, heap_[left].priority)) return false;
            if (right < heap_.size() && cmp_(heap_[i].priority, heap_[right].priority))
                return false;
        }
        return true;
    }

private:
    struct entry {
        std::size_t id;
        Priority priority;
    };

    void swap_entries(std::size_t a, std::size_t b) noexcept {
        using std::swap;
        swap(heap_[a], heap_[b]);
        position_[heap_[a].id] = a;
        position_[heap_[b].id] = b;
    }

    /// Returns true if the element moved.
    bool sift_up(std::size_t pos) {
        bool moved = false;
        while (pos > 0) {
            const std::size_t parent = (pos - 1) / 2;
            if (!cmp_(heap_[parent].priority, heap_[pos].priority)) break;
            swap_entries(parent, pos);
            pos = parent;
            moved = true;
        }
        return moved;
    }

    void sift_down(std::size_t pos) {
        for (;;) {
            const std::size_t left = 2 * pos + 1;
            const std::size_t right = 2 * pos + 2;
            std::size_t best = pos;
            if (left < heap_.size() && cmp_(heap_[best].priority, heap_[left].priority))
                best = left;
            if (right < heap_.size() && cmp_(heap_[best].priority, heap_[right].priority))
                best = right;
            if (best == pos) return;
            swap_entries(pos, best);
            pos = best;
        }
    }

    Compare cmp_;
    std::vector<entry> heap_;
    std::vector<std::size_t> position_;
};

} // namespace richnote

// Fixed-width and categorical histograms for experiment reporting.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace richnote {

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals are preserved.
class histogram {
public:
    histogram(double lo, double hi, std::size_t bins);

    void add(double value, double weight = 1.0) noexcept;

    std::size_t bin_count() const noexcept { return counts_.size(); }
    double bin_lo(std::size_t bin) const noexcept;
    double bin_hi(std::size_t bin) const noexcept;
    double count(std::size_t bin) const noexcept { return counts_[bin]; }
    double total() const noexcept { return total_; }

    /// Fraction of total mass in the bin; 0 when empty.
    double fraction(std::size_t bin) const noexcept;

    /// Empirical CDF evaluated at bin upper edges.
    std::vector<double> cdf() const;

private:
    double lo_;
    double width_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

/// Histogram over string categories, preserving insertion order of keys.
class categorical_histogram {
public:
    void add(const std::string& key, double weight = 1.0);

    double count(const std::string& key) const noexcept;
    double total() const noexcept { return total_; }
    double fraction(const std::string& key) const noexcept;
    const std::vector<std::string>& keys() const noexcept { return order_; }

private:
    std::map<std::string, double> counts_;
    std::vector<std::string> order_;
    double total_ = 0.0;
};

} // namespace richnote

#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace richnote {

zipf_distribution::zipf_distribution(std::size_t n, double exponent)
    : exponent_(exponent), cdf_(n) {
    RICHNOTE_REQUIRE(n > 0, "zipf needs at least one rank");
    RICHNOTE_REQUIRE(exponent >= 0.0, "zipf exponent must be non-negative");
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
        cdf_[k] = acc;
    }
    for (auto& c : cdf_) c /= acc;
    cdf_.back() = 1.0; // guard against rounding drift at the tail
}

std::size_t zipf_distribution::sample(rng& gen) const noexcept {
    const double u = gen.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double zipf_distribution::pmf(std::size_t rank) const noexcept {
    if (rank >= cdf_.size()) return 0.0;
    const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
    return cdf_[rank] - lo;
}

} // namespace richnote

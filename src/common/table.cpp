#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace richnote {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    RICHNOTE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void table::add_row(std::vector<std::string> cells) {
    RICHNOTE_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
    rows_.push_back(std::move(cells));
}

void table::add_numeric_row(const std::vector<double>& cells, int precision) {
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double c : cells) formatted.push_back(format_double(c, precision));
    add_row(std::move(formatted));
}

std::string table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << " |\n";
    };
    emit_row(headers_);
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const table& t) { return os << t.render(); }

std::string format_double(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string format_bytes(double bytes) {
    static constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB"};
    int unit = 0;
    while (bytes >= 1000.0 && unit < 4) {
        bytes /= 1000.0;
        ++unit;
    }
    std::ostringstream os;
    const int precision = unit == 0 ? 0 : bytes < 10 ? 2 : 1;
    os << std::fixed << std::setprecision(precision) << bytes << units[unit];
    return os.str();
}

} // namespace richnote

// Lightweight precondition / invariant checking used across the library.
//
// RICHNOTE_REQUIRE is always on (it guards API preconditions and throws
// std::invalid_argument / std::logic_error so misuse is observable in release
// builds). RICHNOTE_ASSERT compiles away in NDEBUG builds and guards internal
// invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace richnote {

/// Thrown when an API precondition is violated.
class precondition_error : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a library bug).
class invariant_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
    std::ostringstream os;
    os << "precondition failed: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line,
                                         const std::string& msg) {
    std::ostringstream os;
    os << "invariant violated: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw invariant_error(os.str());
}
} // namespace detail

} // namespace richnote

/// Check a caller-facing precondition; throws richnote::precondition_error.
#define RICHNOTE_REQUIRE(expr, msg)                                                    \
    do {                                                                               \
        if (!(expr)) ::richnote::detail::throw_precondition(#expr, __FILE__, __LINE__, \
                                                            (msg));                    \
    } while (false)

/// Check an internal invariant; throws richnote::invariant_error.
#define RICHNOTE_CHECK(expr, msg)                                                   \
    do {                                                                            \
        if (!(expr)) ::richnote::detail::throw_invariant(#expr, __FILE__, __LINE__, \
                                                         (msg));                    \
    } while (false)

/// Run a validation statement in debug builds only. For hot paths whose
/// inputs are validated upstream: the statement (typically a call into a
/// RICHNOTE_REQUIRE-based validator) compiles away under NDEBUG.
#ifdef NDEBUG
#define RICHNOTE_ASSERT_VALID(stmt) \
    do {                            \
    } while (false)
#else
#define RICHNOTE_ASSERT_VALID(stmt) \
    do {                            \
        stmt;                       \
    } while (false)
#endif

#include "common/csv.hpp"

#include <ostream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace richnote {

std::string csv_escape(const std::string& field) {
    if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

csv_writer::csv_writer(std::ostream& out, std::vector<std::string> headers)
    : out_(&out), columns_(headers.size()) {
    RICHNOTE_REQUIRE(columns_ > 0, "csv needs at least one column");
    write_row(headers);
    rows_ = 0; // header does not count as a data row
}

void csv_writer::write_row(const std::vector<std::string>& cells) {
    RICHNOTE_REQUIRE(cells.size() == columns_, "csv row width must match header width");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) *out_ << ',';
        *out_ << csv_escape(cells[i]);
    }
    *out_ << '\n';
    ++rows_;
}

void csv_writer::write_row(const std::vector<double>& cells, int precision) {
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double c : cells) formatted.push_back(format_double(c, precision));
    write_row(formatted);
}

} // namespace richnote

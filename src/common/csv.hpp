// Minimal CSV emission (RFC-4180-style quoting) so experiment harnesses can
// dump machine-readable series alongside the human-readable tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace richnote {

class csv_writer {
public:
    /// Writes to the given stream (not owned); emits the header immediately.
    csv_writer(std::ostream& out, std::vector<std::string> headers);

    void write_row(const std::vector<std::string>& cells);
    void write_row(const std::vector<double>& cells, int precision = 6);

    std::size_t rows_written() const noexcept { return rows_; }

private:
    std::ostream* out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

/// Quotes a CSV field if it contains commas, quotes or newlines.
std::string csv_escape(const std::string& field);

} // namespace richnote

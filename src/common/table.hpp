// ASCII table rendering for benchmark / experiment output. The figure
// harnesses in bench/ print the same rows & series the paper reports; this
// keeps their formatting uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace richnote {

class table {
public:
    explicit table(std::vector<std::string> headers);

    /// Adds a row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    void add_numeric_row(const std::vector<double>& cells, int precision = 4);

    std::size_t rows() const noexcept { return rows_.size(); }
    std::size_t columns() const noexcept { return headers_.size(); }

    /// Renders with aligned columns, a header rule and outer padding.
    std::string render() const;

    friend std::ostream& operator<<(std::ostream& os, const table& t);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table rows).
std::string format_double(double value, int precision = 4);

/// Formats a byte count with binary-ish units (B / KB / MB / GB, decimal).
std::string format_bytes(double bytes);

} // namespace richnote

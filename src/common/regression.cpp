#include "common/regression.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace richnote {

namespace {

void require_paired(const std::vector<double>& x, const std::vector<double>& y) {
    RICHNOTE_REQUIRE(x.size() == y.size(), "regression needs paired samples");
    RICHNOTE_REQUIRE(x.size() >= 2, "regression needs at least two points");
}

} // namespace

double r_squared(const std::vector<double>& observed, const std::vector<double>& predicted) {
    RICHNOTE_REQUIRE(observed.size() == predicted.size(), "r_squared needs paired samples");
    const double y_bar = mean(observed);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double res = observed[i] - predicted[i];
        const double dev = observed[i] - y_bar;
        ss_res += res * res;
        ss_tot += dev * dev;
    }
    if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double rmse(const std::vector<double>& observed, const std::vector<double>& predicted) {
    RICHNOTE_REQUIRE(observed.size() == predicted.size(), "rmse needs paired samples");
    RICHNOTE_REQUIRE(!observed.empty(), "rmse of an empty sample");
    double acc = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double res = observed[i] - predicted[i];
        acc += res * res;
    }
    return std::sqrt(acc / static_cast<double>(observed.size()));
}

linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
    require_paired(x, y);
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0;
    double sxx = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
    }
    RICHNOTE_REQUIRE(sxx > 0.0, "predictor is constant; slope undefined");
    linear_fit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    std::vector<double> predicted(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) predicted[i] = fit.intercept + fit.slope * x[i];
    fit.r_squared = r_squared(y, predicted);
    fit.rmse = rmse(y, predicted);
    return fit;
}

linear_fit fit_log_law(const std::vector<double>& d, const std::vector<double>& util) {
    require_paired(d, util);
    std::vector<double> log_d(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        RICHNOTE_REQUIRE(d[i] >= 0.0, "duration must be non-negative");
        log_d[i] = std::log(1.0 + d[i]);
    }
    linear_fit fit = fit_linear(log_d, util);
    // Report goodness-of-fit against the raw durations (identical numbers,
    // but recomputed on the transformed model for clarity).
    std::vector<double> predicted(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        predicted[i] = fit.intercept + fit.slope * std::log(1.0 + d[i]);
    fit.r_squared = r_squared(util, predicted);
    fit.rmse = rmse(util, predicted);
    return fit;
}

double power_fit::evaluate(double d) const {
    const double frac = 1.0 - d / horizon;
    if (frac <= 0.0) return 0.0;
    return scale * std::pow(frac, exponent);
}

power_fit fit_power_law(const std::vector<double>& d, const std::vector<double>& util,
                        double horizon_hi, std::size_t grid_steps) {
    require_paired(d, util);
    RICHNOTE_REQUIRE(grid_steps >= 2, "need at least two grid steps");
    double d_max = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        RICHNOTE_REQUIRE(util[i] > 0.0, "power-law fit needs strictly positive utilities");
        d_max = std::max(d_max, d[i]);
    }
    RICHNOTE_REQUIRE(horizon_hi > d_max, "horizon upper bound must exceed max duration");

    // For fixed D: log(util) = log(a) + b * log(1 - d/D) is linear. Scan D.
    power_fit best;
    double best_rmse = std::numeric_limits<double>::infinity();
    std::vector<double> log_u(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) log_u[i] = std::log(util[i]);

    const double lo = d_max * 1.0001; // D must strictly exceed every duration
    for (std::size_t step = 0; step <= grid_steps; ++step) {
        const double horizon =
            lo + (horizon_hi - lo) * static_cast<double>(step) / static_cast<double>(grid_steps);
        std::vector<double> log_frac(d.size());
        for (std::size_t i = 0; i < d.size(); ++i) log_frac[i] = std::log(1.0 - d[i] / horizon);
        linear_fit lin;
        try {
            lin = fit_linear(log_frac, log_u);
        } catch (const precondition_error&) {
            continue; // degenerate (all durations equal) — skip this horizon
        }
        power_fit candidate;
        candidate.scale = std::exp(lin.intercept);
        candidate.exponent = lin.slope;
        candidate.horizon = horizon;
        std::vector<double> predicted(d.size());
        for (std::size_t i = 0; i < d.size(); ++i) predicted[i] = candidate.evaluate(d[i]);
        candidate.rmse = rmse(util, predicted);
        candidate.r_squared = r_squared(util, predicted);
        if (candidate.rmse < best_rmse) {
            best_rmse = candidate.rmse;
            best = candidate;
        }
    }
    RICHNOTE_CHECK(std::isfinite(best_rmse), "power-law grid search found no valid horizon");
    return best;
}

} // namespace richnote

#include "common/rng.hpp"

#include <cmath>

namespace richnote {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
    std::uint64_t state = value;
    return splitmix64(state);
}

rng::rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& lane : state_) lane = splitmix64(s);
}

rng rng::split() noexcept { return rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)()); // full 64-bit range
    // Lemire-style rejection-free-ish bounded draw with rejection of the
    // biased tail; unbiased and fast for any span.
    const std::uint64_t threshold = -span % span;
    for (;;) {
        const std::uint64_t r = (*this)();
        const __uint128_t m = static_cast<__uint128_t>(r) * span;
        if (static_cast<std::uint64_t>(m) >= threshold)
            return lo + static_cast<std::int64_t>(m >> 64);
    }
}

double rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u = 0, v = 0, s = 0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double rng::exponential(double rate) noexcept {
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / rate;
}

std::uint32_t rng::poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        const double limit = std::exp(-mean);
        std::uint32_t count = 0;
        double product = uniform();
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation with continuity correction for large means.
    const double sample = normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0u : static_cast<std::uint32_t>(sample + 0.5);
}

std::size_t rng::index(std::size_t size) noexcept {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t rng::weighted_index(const std::vector<double>& weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0) return i;
    }
    return weights.size() - 1; // floating-point slack lands on the last item
}

} // namespace richnote

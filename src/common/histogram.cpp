#include "common/histogram.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace richnote {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
    RICHNOTE_REQUIRE(bins > 0, "histogram needs at least one bin");
    RICHNOTE_REQUIRE(hi > lo, "histogram range must be non-empty");
}

void histogram::add(double value, double weight) noexcept {
    auto bin = static_cast<std::ptrdiff_t>((value - lo_) / width_);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(bin)] += weight;
    total_ += weight;
}

double histogram::bin_lo(std::size_t bin) const noexcept {
    return lo_ + width_ * static_cast<double>(bin);
}

double histogram::bin_hi(std::size_t bin) const noexcept {
    return lo_ + width_ * static_cast<double>(bin + 1);
}

double histogram::fraction(std::size_t bin) const noexcept {
    return total_ > 0.0 ? counts_[bin] / total_ : 0.0;
}

std::vector<double> histogram::cdf() const {
    std::vector<double> out(counts_.size(), 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        out[i] = total_ > 0.0 ? acc / total_ : 0.0;
    }
    return out;
}

void categorical_histogram::add(const std::string& key, double weight) {
    auto [it, inserted] = counts_.try_emplace(key, 0.0);
    if (inserted) order_.push_back(key);
    it->second += weight;
    total_ += weight;
}

double categorical_histogram::count(const std::string& key) const noexcept {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0.0 : it->second;
}

double categorical_histogram::fraction(const std::string& key) const noexcept {
    return total_ > 0.0 ? count(key) / total_ : 0.0;
}

} // namespace richnote

// Streaming and batch descriptive statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace richnote {

/// Numerically stable streaming mean / variance (Welford) with min/max.
class running_stats {
public:
    void add(double value) noexcept;
    /// Merge another accumulator into this one (parallel-combine friendly).
    void merge(const running_stats& other) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return count_ ? mean_ : 0.0; }
    /// Population variance; 0 for fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return count_ ? min_ : 0.0; }
    double max() const noexcept { return count_ ? max_ : 0.0; }
    double sum() const noexcept { return sum_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Linear-interpolated percentile of a sample; `q` in [0, 1].
/// Sorts a copy; suitable for end-of-run reporting, not hot paths.
double percentile(std::vector<double> values, double q);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

} // namespace richnote

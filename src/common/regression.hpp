// Regression fits used by the presentation-utility survey analysis (§V-B).
//
// The paper fits two candidate duration-utility families to the survey CDF:
//   logarithmic:  util(d) = a + b * log(1 + d)            (Equation 8)
//   polynomial:   util(d) = a * (1 - d/D)^b               (Equation 9)
// and selects the better fit (logarithmic, in the paper). We reproduce both
// via ordinary least squares (the polynomial family is fit by grid search
// over D combined with log-linearization).
#pragma once

#include <cstddef>
#include <vector>

namespace richnote {

/// Result of a simple (one predictor) least-squares fit y = a + b * f(x).
struct linear_fit {
    double intercept = 0.0; ///< a
    double slope = 0.0;     ///< b
    double r_squared = 0.0; ///< coefficient of determination on the fit data
    double rmse = 0.0;      ///< root-mean-square error on the fit data
};

/// OLS fit of y = a + b*x. Requires >= 2 points with non-constant x.
linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Fit of the paper's logarithmic family util(d) = a + b*log(1+d).
linear_fit fit_log_law(const std::vector<double>& d, const std::vector<double>& util);

/// Result of fitting util(d) = a * (1 - d/D)^b.
struct power_fit {
    double scale = 0.0;     ///< a
    double exponent = 0.0;  ///< b
    double horizon = 0.0;   ///< D
    double r_squared = 0.0;
    double rmse = 0.0;

    double evaluate(double d) const;
};

/// Fit of the paper's polynomial family by grid search over horizon D in
/// (max(d), d_hi] combined with log-linearization. Requires util > 0.
power_fit fit_power_law(const std::vector<double>& d, const std::vector<double>& util,
                        double horizon_hi, std::size_t grid_steps = 200);

/// R^2 of arbitrary predictions against observations.
double r_squared(const std::vector<double>& observed, const std::vector<double>& predicted);
/// RMSE of arbitrary predictions against observations.
double rmse(const std::vector<double>& observed, const std::vector<double>& predicted);

} // namespace richnote

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace richnote {

void running_stats::add(double value) noexcept {
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void running_stats::merge(const running_stats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) / total;
    mean_ = (mean_ * static_cast<double>(count_) + other.mean_ * static_cast<double>(other.count_)) /
            total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

double running_stats::variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
    RICHNOTE_REQUIRE(!values.empty(), "percentile of an empty sample");
    RICHNOTE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
    running_stats s;
    for (double v : values) s.add(v);
    return s.mean();
}

double stddev(const std::vector<double>& values) {
    running_stats s;
    for (double v : values) s.add(v);
    return s.stddev();
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
    RICHNOTE_REQUIRE(x.size() == y.size(), "pearson needs equal-length samples");
    if (x.size() < 2) return 0.0;
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace richnote

// Trace-driven experiment runner (§V-C setup).
//
// Replays a generated workload through per-user brokers on the discrete-
// event simulator and aggregates the §V-C metrics. One `experiment_setup`
// (workload + trained content-utility model) is built once and reused
// across every sweep point of a figure, exactly like the paper runs all
// schedulers over the same trace.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/broker.hpp"
#include "core/telemetry.hpp"
#include "faults/fault_plan.hpp"
#include "core/metrics.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "core/utility.hpp"
#include "ml/random_forest.hpp"
#include "trace/generator.hpp"

namespace richnote::obs {
class lifecycle_tracker;
class progress_listener;
}

namespace richnote::core {

enum class scheduler_kind {
    richnote, ///< Algorithm 2 (Lyapunov + MCKP)
    fifo,     ///< fixed level, delivery-timestamp order
    util,     ///< fixed level, highest utility first
    direct    ///< Eq. 2 solved per round with a hard energy budget (ablation)
};

const char* to_string(scheduler_kind kind) noexcept;

struct experiment_params {
    scheduler_kind kind = scheduler_kind::richnote;
    /// Baselines' fixed presentation level (1 = metadata only, 2 = +5 s,
    /// 3 = +10 s, ... per §V-C). Ignored by RichNote.
    level_t fixed_level = 3;
    double weekly_budget_mb = 20.0; ///< the §V-C "budget per week"
    bool wifi_enabled = false;      ///< Fig. 5(c): add WIFI to the Markov model
    /// Stationary cellular-coverage fraction for the CELL/OFF chain
    /// (ignored when wifi_enabled); 0.5 is the paper's §V-D3 setting.
    double cellular_coverage = 0.5;

    lyapunov_params lyapunov;       ///< V = 1000, kappa = 3 KJ/h (§V-C)
    mckp_options mckp;
    /// RichNote precision knob: decline items with U_c below this (§V-D1).
    double min_content_utility = 0.0;
    /// RichNote aging factor: content-utility half-life in seconds; 0 = off.
    double utility_half_life_sec = 0.0;
    /// RichNote WiFi-deferral threshold on U_c (0 = off) and wait budget.
    double wifi_deferral_min_utility = 0.0;
    double wifi_deferral_max_wait_sec = 6.0 * 3600.0;
    /// Online learning (extension): ignore the setup's offline-trained
    /// model and learn U_c during the run from feedback on delivered
    /// notifications (cold start at online.prior).
    bool online_learning = false;
    online_content_utility::params online;
    /// §II per-topic cadence: friend feeds enter the scheduler every round,
    /// while album-release and playlist-update notifications are admitted
    /// only every k-th round ("friend feeds can be delivered every few
    /// minutes whereas notifications related to artist and playlists can be
    /// delivered in every few hours"). 1 = uniform cadence (paper's §V
    /// setting).
    std::uint32_t batch_topic_round_multiplier = 1;
    richnote::sim::battery_params battery;
    /// §V-C battery input mode: false = closed-loop battery_model; true =
    /// replay a per-user timestamped battery-status trace (the paper's
    /// input, synthesized here), under which download load does NOT feed
    /// back into the recorded levels.
    bool battery_traces = false;
    richnote::sim::energy_budget_policy energy_policy;
    audio_preview_generator::params presentation;
    double rollover_rounds = 168.0;
    /// Mid-flight transfer loss probability (broker retry path); 0 = paper.
    double transfer_failure_prob = 0.0;
    /// Historical all-or-nothing accounting for failed transfers (full byte
    /// size + radio energy burned, nothing resumable); default charges only
    /// the bytes actually moved. Incompatible with a fault plan.
    bool legacy_failure_accounting = false;
    /// Deterministic fault-injection schedule (blackouts, partial
    /// transfers, duplicated/reordered arrivals, brownouts, crash-restart).
    /// All-zero probabilities (the default) = no faults, the paper setting.
    richnote::faults::fault_plan_params faults;
    /// Per-item retry budget + exponential backoff for transfers that cut
    /// mid-flight. Defaults reproduce pre-fault behaviour (retry forever,
    /// immediately).
    retry_policy retry;
    richnote::sim::sim_time round = richnote::sim::default_round;
    std::uint64_t seed = 42; ///< per-run env randomness (network/battery)
    /// Users whose per-round control state (Q, P, B, battery, network) is
    /// sampled into experiment_result::trajectories (§V-D5 stability
    /// evidence). Empty = telemetry off.
    std::vector<std::uint32_t> telemetry_users;
    /// Worker threads for the per-round user loop. Users are independent
    /// (§V-C: "our solution can work in rounds and independently for each
    /// user"), every broker owns its randomness, and metrics are per-user,
    /// so results are bit-identical for ANY thread count. 1 = sequential.
    std::size_t worker_threads = 1;
    /// Optional structured trace sink (obs): per-round, per-decision NDJSON
    /// events from every broker and scheduler. Must be sized for at least
    /// the workload's user count. Not owned; nullptr = tracing off. The
    /// sink buckets per user, so it composes with worker_threads > 1 and
    /// the merged stream stays byte-identical for a fixed seed.
    richnote::obs::trace_sink* trace = nullptr;
    /// Optional service-mode lifecycle tracker (obs/lifecycle.hpp): brokers
    /// and schedulers report per-notification stage transitions (planned /
    /// attempt / delivered / dead-lettered) into it. The ingest-side stages
    /// only exist in service mode, so batch runs normally leave this null.
    /// Not owned; nullptr = off (each hook pays one branch).
    richnote::obs::lifecycle_tracker* lifecycle = nullptr;
    /// Optional metrics registry (obs): the run's aggregates and fault
    /// counters are exported under the canonical richnote.* names after the
    /// replay finishes. Not owned; nullptr = off.
    richnote::obs::metrics_registry* registry = nullptr;
    /// Optional live-progress listener (obs): called after every broker
    /// round with aggregate queue gauges, throughput and fault counters,
    /// plus a registry of the run-so-far metrics — this is how the expo
    /// server's /metrics and /progress stay fresh mid-run. Not owned;
    /// nullptr = off (the round loop pays one branch).
    richnote::obs::progress_listener* progress = nullptr;
};

struct experiment_result {
    std::string scheduler_name;
    double weekly_budget_mb = 0.0;

    double delivery_ratio = 0.0;   ///< Fig. 3(a)
    double delivered_mb = 0.0;     ///< Fig. 3(b)
    double metered_mb = 0.0;
    double recall = 0.0;           ///< Fig. 3(c)
    double precision = 0.0;        ///< Fig. 3(d)
    double total_utility = 0.0;    ///< Fig. 4(a)
    double utility_clicked = 0.0;  ///< Fig. 4(b)
    double avg_utility = 0.0;      ///< per delivered notification
    double energy_kj = 0.0;        ///< Fig. 4(c)
    double mean_delay_min = 0.0;   ///< Fig. 4(d)
    std::vector<double> level_mix; ///< Figs. 5(b)/(c); [0] = undelivered
    std::vector<metrics_recorder::user_category_row> user_categories; ///< Fig. 5(d)

    std::uint64_t rounds_run = 0;
    double final_queue_items = 0.0; ///< mean scheduling-queue length at end

    /// Fault/recovery tallies over the run (all zero without a fault plan).
    metrics_recorder::fault_totals faults;

    /// Per-round control-state samples for experiment_params::telemetry_users.
    std::shared_ptr<telemetry> trajectories;
};

/// Workload + trained utility model, shared across sweep points.
class experiment_setup {
public:
    struct options {
        trace::workload_params workload;
        ml::forest_params forest;
        /// Training rows are subsampled to this cap (0 = no cap) to keep
        /// forest training time reasonable at large trace scales.
        std::size_t max_training_rows = 20'000;
        /// Use the ground-truth click probability instead of the learned
        /// forest (ablation).
        bool oracle_utility = false;
        /// Load a previously saved forest (ml::random_forest::save_file)
        /// instead of training one; empty = train on the trace.
        std::string model_file;
        /// Platt-calibrate the learned scores on a held-out slice of the
        /// attended notifications before using them as U_c (extension; the
        /// paper uses raw confidences).
        bool calibrate_utility = false;
        std::uint64_t seed = 1;
    };

    explicit experiment_setup(const options& opts);

    const trace::workload& world() const noexcept { return *world_; }
    const content_utility_model& utility() const noexcept { return *cached_; }
    /// The uncached model behind utility(). The cached wrapper is an
    /// id-indexed table over the generated trace and REQUIREs ids in range;
    /// service mode scores wire notifications with arbitrary ids, so it
    /// must evaluate the raw model. Both return bit-identical values for
    /// the same features (the cache is populated by this very model).
    const content_utility_model& raw_model() const noexcept { return *model_; }
    const options& opts() const noexcept { return opts_; }

    /// Default Fig. 5(d) bucket edges scaled to this trace's item counts.
    std::vector<std::uint64_t> default_category_edges() const;

private:
    options opts_;
    std::unique_ptr<trace::workload> world_;
    std::shared_ptr<content_utility_model> model_;
    std::unique_ptr<cached_content_utility> cached_;
};

/// Runs one scheduler over the whole trace and aggregates metrics.
experiment_result run_experiment(const experiment_setup& setup,
                                 const experiment_params& params);

/// theta: the per-round slice of the weekly budget (§V-C "budget per week").
double round_budget_bytes(const experiment_params& params) noexcept;

/// Builds the scheduler configured by `params` (one per user).
std::unique_ptr<scheduler> make_scheduler(const experiment_params& params,
                                          const energy::energy_model& energy);

/// Read-only context for constructing a fleet of per-user brokers. The
/// batch runner and the service (core/service.hpp) both build brokers
/// through make_user_broker, which is what makes service output
/// bit-identical to the batch loop and elastic resharding lossless:
/// broker `u` is a deterministic function of (params, u), so a fleet can
/// be torn down and reconstructed, then restored from checkpoints, without
/// drift.
struct broker_build_context {
    const experiment_params* params = nullptr;
    const presentation_generator* generator = nullptr;
    const content_utility_model* utility = nullptr;
    const energy::energy_model* energy = nullptr;
    const trace::catalog* catalog = nullptr;
    metrics_recorder* metrics = nullptr;
    const richnote::faults::fault_plan* faults = nullptr; ///< nullptr = inert
    double theta = 0.0; ///< round_budget_bytes(*params)
    /// Synthesis horizon for battery_traces mode (ignored otherwise).
    richnote::sim::sim_time battery_horizon = 0.0;
};

/// Builds user `u`'s broker exactly as run_experiment historically did:
/// same scheduler wiring, same per-user seed derivation, same network and
/// battery synthesis. `expected_admissions` is only a dedup-set sizing
/// hint and never affects outputs.
broker make_user_broker(const broker_build_context& ctx, trace::user_id u,
                        std::size_t expected_admissions);

} // namespace richnote::core

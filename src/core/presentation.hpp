// Presentation levels (§III-B) and their generators.
//
// A content item can be notified at levels 1..k of strictly increasing size
// and utility; level 0 means "not sent" (zero size, zero utility). Levels
// are produced by an application-specific generator — the paper's Spotify
// instantiation (§V-C) uses metadata-only plus 5/10/20/30/40-second audio
// previews at 160 kbps. Candidate presentations that are dominated by a
// smaller-or-equal, higher-utility alternative are Pareto-pruned, exactly
// the "useful presentations" filter of Fig. 2(a).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace richnote::core {

/// Presentation level index; 0 = not sent.
using level_t = std::uint32_t;

/// One deliverable presentation of a content item.
struct presentation {
    std::string label;          ///< e.g. "meta", "meta+10s"
    double size_bytes = 0.0;    ///< s(i, j)
    double utility = 0.0;       ///< U_p(i, j) in [0, 1]
    double preview_sec = 0.0;   ///< media sample duration (0 = metadata only)
};

/// The ordered levels 1..k of one item (level 0 is implicit).
///
/// The level table is immutable once constructed, so it lives behind a
/// shared_ptr: copying a presentation_set — which admission does for every
/// notification when the generator memoizes by duration — is a refcount
/// bump instead of a deep copy of the level vector and its labels. The
/// shared payload is never mutated, which keeps copies safe across
/// sharded replay workers.
class presentation_set {
public:
    presentation_set() = default;

    /// Validates strict ordering: sizes and utilities strictly increase
    /// with the level (§III-B: "strictly ordered in their sizes and
    /// utility").
    explicit presentation_set(std::vector<presentation> levels);

    /// Number of real levels k (not counting level 0).
    std::size_t level_count() const noexcept { return levels_ ? levels_->size() : 0; }
    bool empty() const noexcept { return level_count() == 0; }

    /// Size of level j; j = 0 returns 0. Inline: the schedulers call this
    /// once per item-level per round (the MCKP instance build).
    double size(level_t j) const {
        if (j == 0) return 0.0;
        RICHNOTE_REQUIRE(levels_ && j <= levels_->size(), "presentation level out of range");
        return (*levels_)[j - 1].size_bytes;
    }
    /// Presentation utility of level j; j = 0 returns 0.
    double utility(level_t j) const {
        if (j == 0) return 0.0;
        RICHNOTE_REQUIRE(levels_ && j <= levels_->size(), "presentation level out of range");
        return (*levels_)[j - 1].utility;
    }
    /// The full presentation record of level j >= 1.
    const presentation& at(level_t j) const {
        RICHNOTE_REQUIRE(levels_ && j >= 1 && j <= levels_->size(),
                         "presentation level out of range");
        return (*levels_)[j - 1];
    }

    /// Sum over all levels of s(i, j) — the paper's s(i), used by the
    /// Lyapunov queue update (all presentations of a delivered item drop
    /// from the scheduling queue together).
    double total_size() const noexcept { return total_size_; }

private:
    std::shared_ptr<const std::vector<presentation>> levels_;
    double total_size_ = 0.0;
};

/// A candidate before pruning (e.g. one surveyed (rate, duration) combo).
struct presentation_candidate {
    std::string label;
    double size_bytes = 0.0;
    double utility = 0.0;
    double preview_sec = 0.0;
};

/// Keeps only Pareto-"useful" candidates: drops any candidate for which
/// another has size <= and utility >=, with at least one strict (Fig. 2(a):
/// "B is not a useful presentation given A"). Equal-size-equal-utility
/// duplicates keep the first occurrence. The result is sorted by size and
/// has strictly increasing utility, ready for presentation_set.
std::vector<presentation_candidate> pareto_prune(std::vector<presentation_candidate> candidates);

/// Generator interface (§III-B: "a certain 'generator' exists that produces
/// these presentations at different level of details ... different
/// generators may exist for different content types").
class presentation_generator {
public:
    virtual ~presentation_generator() = default;

    /// Levels for an item whose full media lasts `full_duration_sec`.
    virtual presentation_set generate(double full_duration_sec) const = 0;

    /// Levels for catalog item `item_ref` (an opaque dense index, e.g. a
    /// track id) of the given duration. The default ignores the ref;
    /// memoizing generators override it with a direct array lookup, which
    /// is the admission hot path.
    virtual presentation_set generate_for_item(std::uint32_t item_ref,
                                               double full_duration_sec) const {
        (void)item_ref;
        return generate(full_duration_sec);
    }
};

/// The paper's Spotify audio generator (§V-C): metadata (200 B, ~1% of the
/// presentation utility) plus previews of the configured durations at a
/// fixed bitrate (160 kbps -> d-second preview = d * 20 KB). Preview
/// durations longer than the track itself are clipped to the track length.
class audio_preview_generator final : public presentation_generator {
public:
    struct params {
        double metadata_bytes = 200.0;         ///< §V-C, from [2]
        double metadata_utility_fraction = 0.01; ///< "about 1% ... due to metadata"
        double bitrate_kbps = 160.0;           ///< Spotify default bitrate
        std::vector<double> preview_durations_sec = {5, 10, 20, 30, 40};
        // Duration-utility law (Eq. 8 defaults): util(d) = a + b*log(1+d),
        // normalized so the longest configured preview has utility 1.
        double duration_log_a = -0.397;
        double duration_log_b = 0.352;
    };

    explicit audio_preview_generator(params p);

    presentation_set generate(double full_duration_sec) const override;

    /// Size in bytes of a d-second preview plus metadata.
    double preview_size_bytes(double duration_sec) const noexcept;

    /// Normalized presentation utility of a d-second preview (metadata
    /// fraction + duration law), in [0, 1].
    double preview_utility(double duration_sec) const noexcept;

    const params& parameters() const noexcept { return params_; }

private:
    double raw_duration_utility(double duration_sec) const noexcept;

    params params_;
    double max_raw_utility_ = 1.0; ///< normalizer: raw utility at max duration
};

/// Layered-video generator (§III-A: "video samples can also be presented in
/// combinations of duration and quality"; the related-work discussion
/// points at H.264/SVC-style layered encodings). Candidates form the
/// Cartesian product of clip durations and cumulative quality layers
/// (base + enhancement layers, each adding bitrate); dominated combinations
/// are Pareto-pruned exactly as in Fig. 2(a), and the survivors become the
/// item's presentation levels.
class layered_video_generator final : public presentation_generator {
public:
    struct layer {
        std::string name;          ///< e.g. "240p", "480p"
        double bitrate_kbps = 0.0; ///< CUMULATIVE bitrate up to this layer
        double quality = 0.0;      ///< saturating quality factor in (0, 1]
    };

    struct params {
        double metadata_bytes = 400.0; ///< title, thumbnail URL, caption
        double metadata_utility_fraction = 0.02;
        std::vector<double> clip_durations_sec = {3, 6, 12, 24};
        std::vector<layer> layers = {
            {"240p", 400.0, 0.45},
            {"480p", 1'200.0, 0.75},
            {"720p", 2'800.0, 1.0},
        };
        // Duration-utility law, same logarithmic family as audio (Eq. 8
        // shape), normalized at the longest configured clip.
        double duration_log_a = -0.30;
        double duration_log_b = 0.40;
    };

    explicit layered_video_generator(params p);

    /// Levels for a video whose full length is `full_duration_sec`
    /// (<= 0 means "do not clip").
    presentation_set generate(double full_duration_sec) const override;

    /// Size of a clip at a cumulative layer bitrate, metadata included.
    double clip_size_bytes(double duration_sec, double bitrate_kbps) const noexcept;

    /// Normalized utility of (duration, quality) on top of the metadata
    /// fraction; in (0, 1].
    double clip_utility(double duration_sec, double quality) const noexcept;

    const params& parameters() const noexcept { return params_; }

private:
    double raw_duration_utility(double duration_sec) const noexcept;

    params params_;
    double max_raw_utility_ = 1.0;
};

/// Memoizing decorator over any generator: the presentation sets for a
/// known set of media durations (e.g. every distinct track length in a
/// catalog) are generated once up front, turning the per-admission
/// generate() call on the hot path into a read-only lookup plus a cheap
/// copy. Generators are pure functions of the duration, so the memoized
/// results are identical to generating fresh. Lookups never mutate the
/// cache, which keeps generate() safe to call concurrently from sharded
/// replay workers; an unknown duration falls through to the wrapped
/// generator. The wrapped generator must outlive this object.
///
/// durations_sec is indexed by the item ref admission passes to
/// generate_for_item (track id i -> durations_sec[i]), so that path is a
/// dense array index; generate(duration) uses a hash lookup over the same
/// precomputed sets.
class memoized_presentation_generator final : public presentation_generator {
public:
    memoized_presentation_generator(const presentation_generator& inner,
                                    const std::vector<double>& durations_sec);

    presentation_set generate(double full_duration_sec) const override;

    presentation_set generate_for_item(std::uint32_t item_ref,
                                       double full_duration_sec) const override {
        if (item_ref < by_ref_.size()) return by_ref_[item_ref];
        return generate(full_duration_sec);
    }

    std::size_t cached_durations() const noexcept { return cache_.size(); }

private:
    const presentation_generator* inner_;
    std::unordered_map<double, presentation_set> cache_;
    std::vector<presentation_set> by_ref_; ///< durations_sec index -> set
};

} // namespace richnote::core

// Multi-Choice Knapsack selection (§III-C, §IV Algorithm 1).
//
// Each item offers levels 0..k of strictly increasing size; level 0 is
// free. SelectPresentations starts every item at level 0 and repeatedly
// applies the upgrade with the largest utility-size gradient
//   grad(i, j) = (U(i, j+1) - U(i, j)) / (s(i, j+1) - s(i, j))
// until the budget is exhausted (the greedy for fractional MCKP of Sinha &
// Zoltners [4], restricted to integral upgrades). A max-heap keyed by each
// item's current gradient gives the paper's O(n + k log n) bound: O(n)
// Floyd build plus O(log n) per upgrade.
//
// The utilities passed in may already be Lyapunov-adjusted (U_a of Eq. 7);
// the solver is agnostic. An exact pseudo-polynomial DP is provided for
// validating the heuristic's optimality gap on small instances.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/indexed_heap.hpp"
#include "core/presentation.hpp"

namespace richnote::core {

/// One item's level menu. sizes[j] / utilities[j] describe level j+1;
/// level 0 (not sent) is implicit with size 0 and utility 0. Sizes must
/// strictly increase; utilities may be arbitrary (adjusted utilities can
/// make an upgrade unattractive, which the solver simply never takes).
struct mckp_item {
    std::vector<double> sizes;
    std::vector<double> utilities;

    std::size_t level_count() const noexcept { return sizes.size(); }
};

struct mckp_options {
    /// Paper-faithful Algorithm 1 stops at the first upgrade that no longer
    /// fits ("done <- true"). With skip_infeasible, the solver instead
    /// removes that item and keeps trying cheaper upgrades of others — an
    /// extension ablated in bench/ablation_mckp.
    bool skip_infeasible = false;
};

struct mckp_solution {
    std::vector<level_t> levels; ///< chosen level per item (0 = not sent)
    double total_size = 0.0;
    double total_utility = 0.0;
    std::size_t upgrades = 0;       ///< number of upgrade steps taken
    bool budget_exhausted = false;  ///< stopped because an upgrade didn't fit

    /// Upper bound from the fractional relaxation: the integral value plus
    /// the prorated utility of the first upgrade that did not fit (0 when
    /// everything fit). The greedy integral solution is within this gap of
    /// the fractional optimum (§IV).
    double fractional_bound = 0.0;
};

/// Heap key for the greedy's upgrade ordering: gradient first, then the
/// smaller item id on exact gradient ties. Breaking ties by id makes the
/// pop sequence a STRICT TOTAL ORDER and therefore a pure function of the
/// item menus (independent of heap internals) — the property the
/// incremental re-solver's cached upgrade schedule relies on.
struct mckp_grad_key {
    double gradient = 0.0;
    std::uint32_t id = 0;
};

/// "Less" for the max-heap: a ranks below b on a smaller gradient, or on an
/// exact gradient tie when a's id is larger (so the smaller id pops first).
struct mckp_grad_less {
    bool operator()(const mckp_grad_key& a, const mckp_grad_key& b) const noexcept {
        if (a.gradient != b.gradient) return a.gradient < b.gradient;
        return a.id > b.id;
    }
};

/// Reusable solver state for the per-round hot path. One scratch per
/// scheduler instance lets select_presentations run without a single heap
/// allocation in steady state: the gradient heap's storage, the initial
/// (id, gradient) pairs and the solution's level vector all retain their
/// capacity across rounds. The scratch is opaque to callers — treat the
/// solution returned by the scratch-accepting overloads as invalidated by
/// the next call on the same scratch.
struct mckp_scratch {
    indexed_heap<mckp_grad_key, mckp_grad_less> heap;
    std::vector<std::pair<std::size_t, mckp_grad_key>> initial;
    mckp_solution solution;
};

/// Algorithm 1. Validates per-item size monotonicity; `budget` >= 0.
mckp_solution select_presentations(const std::vector<mckp_item>& items, double budget,
                                   const mckp_options& options = {});

/// Allocation-free variant of Algorithm 1: solves into `scratch` and
/// returns a reference to scratch.solution (valid until the next call with
/// the same scratch). The value-returning overload forwards here.
const mckp_solution& select_presentations(const std::vector<mckp_item>& items,
                                          double budget, const mckp_options& options,
                                          mckp_scratch& scratch);

/// Cross-round solver state for the incremental re-solve of §IV Algorithm 1
/// (the scheduler's per-round hot path).
///
/// Because the (gradient, id) key is a strict total order, the greedy's pop
/// sequence under an infinite budget — the "canonical upgrade schedule" —
/// is a pure function of the item menus alone: budget and policy only
/// decide which popped steps are APPLIED, never their order. A cold solve
/// therefore records that schedule once, and later rounds obtain the
/// bit-identical solution by
///   - reuse:  menus match the recorded baseline and budget/options match
///             the previous call — return the stored solution untouched;
///   - replay: menus match the baseline but the budget or policy changed —
///             linear re-scan of the schedule (no heap at all);
///   - repair: a small set of items changed — merge the schedule (stale
///             steps of changed items masked out) with a side heap over
///             just the changed items' fresh upgrade chains. The relative
///             order of any two items' steps is independent of every other
///             item, so the schedule restricted to unchanged items is still
///             exact and the merge reproduces the cold pop sequence.
/// When the changed fraction exceeds repair_threshold (or the instance size
/// changed), the solver falls back to a cold solve and re-records.
///
/// All state is grow-only, so steady-state rounds stay allocation-free. In
/// debug builds every call is cross-checked against a from-scratch cold
/// solve (RICHNOTE_CHECK on bitwise solution equality).
struct mckp_incremental_scratch {
    /// One step of the canonical upgrade schedule: upgrade `item` to
    /// `to_level`, with the gains and gradient frozen at record time.
    struct step {
        std::uint32_t item = 0;
        level_t to_level = 0;
        double size_gain = 0.0;
        double utility_gain = 0.0;
        double gradient = 0.0;
    };

    /// Per-path call counters (rounds == reused + replayed + repaired +
    /// cold); exported by the round-loop bench to show the mix.
    struct stats {
        std::uint64_t rounds = 0;
        std::uint64_t reused = 0;
        std::uint64_t replayed = 0;
        std::uint64_t repaired = 0;
        std::uint64_t cold = 0;
    };

    /// Fall back to a cold solve when more than this fraction of items
    /// diverges from the recorded baseline (diffs are measured against the
    /// baseline, so churn accumulates across repairs until a re-record).
    /// Recording the schedule itself is gated by warmup hysteresis: a
    /// churny round takes a plain cold solve (budget-stopped, no
    /// recording) and only snapshots the menus; the run-to-exhaustion
    /// recording pass happens once the instance proves stable — when a
    /// round's menus match that snapshot but the cached solution cannot be
    /// reused outright. Streams that churn every round therefore never pay
    /// the recording overhead, and fully stable streams with constant
    /// parameters skip it too (pure reuse needs no schedule).
    double repair_threshold = 0.25;

    stats counters;

    // -- implementation state (opaque to callers) --
    mckp_scratch cold;                      ///< heap + solution for cold solves
    std::vector<step> schedule;             ///< canonical upgrade schedule
    std::vector<double> base_sizes;         ///< baseline menus, concatenated
    std::vector<double> base_utilities;
    std::vector<std::uint32_t> base_offset; ///< n+1 prefix offsets into the above
    std::vector<std::uint32_t> changed;     ///< ids diverging from the baseline
    std::vector<std::uint8_t> is_changed;   ///< per-id flag mirroring `changed`
    std::vector<std::uint8_t> dead;         ///< per-id death under skip_infeasible
    std::vector<level_t> cursor;            ///< per-id exposure level (record/repair)
    indexed_heap<mckp_grad_key, mckp_grad_less> side_heap; ///< changed items' chains
    std::vector<std::pair<std::size_t, mckp_grad_key>> side_initial;
    double last_budget = -1.0;              ///< previous call's budget/options for
    mckp_options last_options;              ///< the reuse fast path
    bool last_was_baseline = false;         ///< previous solution solved baseline menus
    bool has_solution = false;
    bool has_schedule = false;              ///< schedule recorded for the baseline
    std::uint32_t churn_streak = 0;         ///< consecutive churny rounds (capped)
    std::uint32_t snapshot_backoff = 0;     ///< churny rounds left before re-snapshotting
};

/// Incremental Algorithm 1: bit-identical to select_presentations(items,
/// budget, options) on every call, but reuses the schedule recorded in
/// `scratch` across calls (see mckp_incremental_scratch). The returned
/// reference is valid until the next call with the same scratch.
const mckp_solution& select_presentations_incremental(
    const std::vector<mckp_item>& items, double budget, const mckp_options& options,
    mckp_incremental_scratch& scratch);

/// Exact 0/1 MCKP via DP over discretized sizes (test oracle; O(n * k *
/// budget/resolution) time). Sizes are rounded UP to the resolution, so the
/// result is a feasible lower bound on the true optimum.
mckp_solution mckp_exact(const std::vector<mckp_item>& items, double budget,
                         double resolution);

/// One item's level menu for the two-constraint problem of §III-C (Eq. 2):
/// each level j has a byte size s(i,j) AND an energy weight rho(i,j).
/// Sizes must strictly increase with the level; energies must be
/// non-decreasing (a richer presentation never costs less energy).
struct mckp_item_2d {
    std::vector<double> sizes;
    std::vector<double> energies;
    std::vector<double> utilities;

    std::size_t level_count() const noexcept { return sizes.size(); }
};

/// Greedy heuristic for the two-weight MCKP (Eq. 2a-2c): upgrades are
/// ranked by utility gain per unit of *normalized* combined weight,
///   grad(i,j) = dU / (ds / data_budget + drho / energy_budget),
/// the standard scalarization for multi-constraint knapsacks — each
/// resource is consumed in proportion to how scarce it is. An upgrade that
/// would violate EITHER budget ends the loop (Algorithm 1 semantics) or is
/// skipped under options.skip_infeasible. A zero energy_budget with all-
/// zero energies degrades to the single-constraint solver's behaviour.
mckp_solution select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                      double data_budget, double energy_budget,
                                      const mckp_options& options = {});

/// Allocation-free variant of the two-weight greedy (see mckp_scratch).
const mckp_solution& select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                             double data_budget, double energy_budget,
                                             const mckp_options& options,
                                             mckp_scratch& scratch);

/// Exact DP for the two-weight MCKP over both discretized axes (test
/// oracle; O(n * k * (B/res_b) * (E/res_e)) — keep instances tiny).
mckp_solution mckp_exact_2d(const std::vector<mckp_item_2d>& items, double data_budget,
                            double energy_budget, double size_resolution,
                            double energy_resolution);

/// Builds an mckp_item from a presentation set and the item's content
/// utility (utilities become U(i,j) = U_c * U_p(j), Eq. 1).
mckp_item make_mckp_item(const presentation_set& presentations, double content_utility);

} // namespace richnote::core

// Multi-Choice Knapsack selection (§III-C, §IV Algorithm 1).
//
// Each item offers levels 0..k of strictly increasing size; level 0 is
// free. SelectPresentations starts every item at level 0 and repeatedly
// applies the upgrade with the largest utility-size gradient
//   grad(i, j) = (U(i, j+1) - U(i, j)) / (s(i, j+1) - s(i, j))
// until the budget is exhausted (the greedy for fractional MCKP of Sinha &
// Zoltners [4], restricted to integral upgrades). A max-heap keyed by each
// item's current gradient gives the paper's O(n + k log n) bound: O(n)
// Floyd build plus O(log n) per upgrade.
//
// The utilities passed in may already be Lyapunov-adjusted (U_a of Eq. 7);
// the solver is agnostic. An exact pseudo-polynomial DP is provided for
// validating the heuristic's optimality gap on small instances.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/indexed_heap.hpp"
#include "core/presentation.hpp"

namespace richnote::core {

/// One item's level menu. sizes[j] / utilities[j] describe level j+1;
/// level 0 (not sent) is implicit with size 0 and utility 0. Sizes must
/// strictly increase; utilities may be arbitrary (adjusted utilities can
/// make an upgrade unattractive, which the solver simply never takes).
struct mckp_item {
    std::vector<double> sizes;
    std::vector<double> utilities;

    std::size_t level_count() const noexcept { return sizes.size(); }
};

struct mckp_options {
    /// Paper-faithful Algorithm 1 stops at the first upgrade that no longer
    /// fits ("done <- true"). With skip_infeasible, the solver instead
    /// removes that item and keeps trying cheaper upgrades of others — an
    /// extension ablated in bench/ablation_mckp.
    bool skip_infeasible = false;
};

struct mckp_solution {
    std::vector<level_t> levels; ///< chosen level per item (0 = not sent)
    double total_size = 0.0;
    double total_utility = 0.0;
    std::size_t upgrades = 0;       ///< number of upgrade steps taken
    bool budget_exhausted = false;  ///< stopped because an upgrade didn't fit

    /// Upper bound from the fractional relaxation: the integral value plus
    /// the prorated utility of the first upgrade that did not fit (0 when
    /// everything fit). The greedy integral solution is within this gap of
    /// the fractional optimum (§IV).
    double fractional_bound = 0.0;
};

/// Reusable solver state for the per-round hot path. One scratch per
/// scheduler instance lets select_presentations run without a single heap
/// allocation in steady state: the gradient heap's storage, the initial
/// (id, gradient) pairs and the solution's level vector all retain their
/// capacity across rounds. The scratch is opaque to callers — treat the
/// solution returned by the scratch-accepting overloads as invalidated by
/// the next call on the same scratch.
struct mckp_scratch {
    indexed_heap<double> heap;
    std::vector<std::pair<std::size_t, double>> initial;
    mckp_solution solution;
};

/// Algorithm 1. Validates per-item size monotonicity; `budget` >= 0.
mckp_solution select_presentations(const std::vector<mckp_item>& items, double budget,
                                   const mckp_options& options = {});

/// Allocation-free variant of Algorithm 1: solves into `scratch` and
/// returns a reference to scratch.solution (valid until the next call with
/// the same scratch). The value-returning overload forwards here.
const mckp_solution& select_presentations(const std::vector<mckp_item>& items,
                                          double budget, const mckp_options& options,
                                          mckp_scratch& scratch);

/// Exact 0/1 MCKP via DP over discretized sizes (test oracle; O(n * k *
/// budget/resolution) time). Sizes are rounded UP to the resolution, so the
/// result is a feasible lower bound on the true optimum.
mckp_solution mckp_exact(const std::vector<mckp_item>& items, double budget,
                         double resolution);

/// One item's level menu for the two-constraint problem of §III-C (Eq. 2):
/// each level j has a byte size s(i,j) AND an energy weight rho(i,j).
/// Sizes must strictly increase with the level; energies must be
/// non-decreasing (a richer presentation never costs less energy).
struct mckp_item_2d {
    std::vector<double> sizes;
    std::vector<double> energies;
    std::vector<double> utilities;

    std::size_t level_count() const noexcept { return sizes.size(); }
};

/// Greedy heuristic for the two-weight MCKP (Eq. 2a-2c): upgrades are
/// ranked by utility gain per unit of *normalized* combined weight,
///   grad(i,j) = dU / (ds / data_budget + drho / energy_budget),
/// the standard scalarization for multi-constraint knapsacks — each
/// resource is consumed in proportion to how scarce it is. An upgrade that
/// would violate EITHER budget ends the loop (Algorithm 1 semantics) or is
/// skipped under options.skip_infeasible. A zero energy_budget with all-
/// zero energies degrades to the single-constraint solver's behaviour.
mckp_solution select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                      double data_budget, double energy_budget,
                                      const mckp_options& options = {});

/// Allocation-free variant of the two-weight greedy (see mckp_scratch).
const mckp_solution& select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                             double data_budget, double energy_budget,
                                             const mckp_options& options,
                                             mckp_scratch& scratch);

/// Exact DP for the two-weight MCKP over both discretized axes (test
/// oracle; O(n * k * (B/res_b) * (E/res_e)) — keep instances tiny).
mckp_solution mckp_exact_2d(const std::vector<mckp_item_2d>& items, double data_budget,
                            double energy_budget, double size_resolution,
                            double energy_resolution);

/// Builds an mckp_item from a presentation set and the item's content
/// utility (utilities become U(i,j) = U_c * U_p(j), Eq. 1).
mckp_item make_mckp_item(const presentation_set& presentations, double content_utility);

} // namespace richnote::core

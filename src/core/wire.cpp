#include "core/wire.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "obs/json_util.hpp"
#include "obs/trace_report.hpp"

namespace richnote::core {

namespace {

using richnote::obs::trace_value;

const char* type_name(trace::notification_type t) noexcept { return trace::to_string(t); }

bool parse_type(const std::string& name, trace::notification_type& out) noexcept {
    if (name == "friend_feed") out = trace::notification_type::friend_feed;
    else if (name == "album_release") out = trace::notification_type::album_release;
    else if (name == "playlist_update") out = trace::notification_type::playlist_update;
    else return false;
    return true;
}

bool fail(std::string* error, std::string reason) {
    if (error != nullptr) *error = std::move(reason);
    return false;
}

/// A non-negative integral number (ids and routing keys).
bool as_u64(const trace_value& v, std::uint64_t& out) noexcept {
    if (v.type != trace_value::kind::number) return false;
    if (!(v.num >= 0.0) || v.num != std::floor(v.num) || v.num > 1.8446744073709552e19)
        return false;
    out = static_cast<std::uint64_t>(v.num);
    return true;
}

} // namespace

std::string format_wire_line(const trace::notification& n) {
    std::string out = "{";
    auto key = [&out](const char* k, bool first = false) {
        if (!first) out += ',';
        richnote::obs::json_string(out, k);
        out += ':';
    };
    key("id", true);
    richnote::obs::json_number(out, n.id);
    key("user");
    richnote::obs::json_number(out, static_cast<std::uint64_t>(n.recipient));
    key("type");
    richnote::obs::json_string(out, type_name(n.type));
    key("track");
    richnote::obs::json_number(out, static_cast<std::uint64_t>(n.track));
    key("created_at");
    richnote::obs::json_number(out, n.created_at);
    key("social_tie");
    richnote::obs::json_number(out, n.features.social_tie);
    key("track_pop");
    richnote::obs::json_number(out, n.features.track_popularity);
    key("album_pop");
    richnote::obs::json_number(out, n.features.album_popularity);
    key("artist_pop");
    richnote::obs::json_number(out, n.features.artist_popularity);
    out += ",\"weekend\":";
    out += n.features.weekend ? "true" : "false";
    out += ",\"daytime\":";
    out += n.features.daytime ? "true" : "false";
    out += ",\"attended\":";
    out += n.attended ? "true" : "false";
    out += ",\"clicked\":";
    out += n.clicked ? "true" : "false";
    key("clicked_at");
    richnote::obs::json_number(out, n.clicked_at);
    out += '}';
    return out;
}

bool parse_wire_line(std::string_view line, trace::notification& out, std::string* error) {
    std::vector<std::pair<std::string, trace_value>> fields;
    if (!richnote::obs::parse_flat_json(line, fields)) return fail(error, "bad json");

    out = trace::notification{};
    bool have_id = false, have_user = false, have_type = false, have_track = false,
         have_created = false;
    for (const auto& [k, v] : fields) {
        if (k == "id") {
            if (!as_u64(v, out.id)) return fail(error, "bad field: id");
            have_id = true;
        } else if (k == "user") {
            std::uint64_t user = 0;
            if (!as_u64(v, user) || user > 0xffffffffULL)
                return fail(error, "bad field: user");
            out.recipient = static_cast<trace::user_id>(user);
            have_user = true;
        } else if (k == "type") {
            if (v.type != trace_value::kind::string || !parse_type(v.str, out.type))
                return fail(error, "bad field: type");
            have_type = true;
        } else if (k == "track") {
            std::uint64_t track = 0;
            if (!as_u64(v, track) || track > 0xffffffffULL)
                return fail(error, "bad field: track");
            out.track = static_cast<trace::track_id>(track);
            have_track = true;
        } else if (k == "created_at") {
            if (v.type != trace_value::kind::number || !std::isfinite(v.num) || v.num < 0.0)
                return fail(error, "bad field: created_at");
            out.created_at = v.num;
            have_created = true;
        } else if (k == "social_tie") {
            if (v.type != trace_value::kind::number) return fail(error, "bad field: social_tie");
            out.features.social_tie = v.num;
        } else if (k == "track_pop") {
            if (v.type != trace_value::kind::number) return fail(error, "bad field: track_pop");
            out.features.track_popularity = v.num;
        } else if (k == "album_pop") {
            if (v.type != trace_value::kind::number) return fail(error, "bad field: album_pop");
            out.features.album_popularity = v.num;
        } else if (k == "artist_pop") {
            if (v.type != trace_value::kind::number) return fail(error, "bad field: artist_pop");
            out.features.artist_popularity = v.num;
        } else if (k == "weekend") {
            if (v.type != trace_value::kind::boolean) return fail(error, "bad field: weekend");
            out.features.weekend = v.flag;
        } else if (k == "daytime") {
            if (v.type != trace_value::kind::boolean) return fail(error, "bad field: daytime");
            out.features.daytime = v.flag;
        } else if (k == "attended") {
            if (v.type != trace_value::kind::boolean) return fail(error, "bad field: attended");
            out.attended = v.flag;
        } else if (k == "clicked") {
            if (v.type != trace_value::kind::boolean) return fail(error, "bad field: clicked");
            out.clicked = v.flag;
        } else if (k == "clicked_at") {
            if (v.type != trace_value::kind::number) return fail(error, "bad field: clicked_at");
            out.clicked_at = v.num;
        }
        // Unknown keys: ignored, so wire producers can version forward.
    }
    if (!have_id) return fail(error, "missing field: id");
    if (!have_user) return fail(error, "missing field: user");
    if (!have_type) return fail(error, "missing field: type");
    if (!have_track) return fail(error, "missing field: track");
    if (!have_created) return fail(error, "missing field: created_at");
    return true;
}

} // namespace richnote::core

// Notification schedulers (§IV Algorithm 2 and the §V-C baselines).
//
// A scheduler owns one user's scheduling queue. Each round the broker calls
// plan() with the round context (available data budget, network state,
// energy replenishment); the scheduler returns an ordered delivery plan.
// The broker then delivers as many planned entries as the network / budget /
// energy allow and reports each success via on_delivered(); planned entries
// that did not make it stay in the scheduling queue for the next round
// (Algorithm 2 step 1 clears and rebuilds the delivery queue each round).
//
// Three implementations:
//  - richnote_scheduler: Lyapunov-adjusted utilities + MCKP greedy, adaptive
//    presentation levels (the paper's contribution);
//  - fifo_scheduler: delivery-timestamp order at a FIXED presentation level
//    ("the widely used technique in industry ... real-time mode");
//  - util_scheduler: descending utility at a FIXED level ("batch mode").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/lyapunov.hpp"
#include "core/mckp.hpp"
#include "core/presentation.hpp"
#include "energy/model.hpp"
#include "sim/network.hpp"
#include "sim/time.hpp"
#include "trace/notification.hpp"

namespace richnote::obs {
class lifecycle_tracker;
class trace_sink;
}

namespace richnote::core {

/// One queued content item, with its generated presentations and content
/// utility already attached (Figure 1's "incoming queue -> scheduling
/// queue" step).
struct sched_item {
    trace::notification note;
    double content_utility = 0.0; ///< U_c(i) in [0, 1]
    presentation_set presentations;
    richnote::sim::sim_time arrived_at = 0; ///< arrival at the broker
    /// Retry bookkeeping (resilient delivery): how many transfers of this
    /// item were cut mid-flight, and until when the item backs off before
    /// the next attempt. Both travel with the item, so expiry, delivery and
    /// checkpoint/restore handle them for free. 64-bit like every other
    /// fault counter (core/counters.hpp): soak runs overflow 32 bits.
    std::uint64_t failed_attempts = 0;
    richnote::sim::sim_time retry_not_before = 0;
    /// Already reported to the lifecycle tracker as planned (see
    /// queue_scheduler_base::note_planned_item). Pure observability bookkeeping:
    /// never checkpointed — after a restore the tracker's own first-plan
    /// dedup absorbs the one redundant re-report.
    bool lifecycle_noted = false;

    /// Eq. 1 combined utility of level j.
    double utility(level_t j) const { return content_utility * presentations.utility(j); }
};

/// Per-item retry budget for transfers that cut mid-flight. The defaults
/// reproduce the pre-fault behaviour: retry immediately, forever.
struct retry_policy {
    /// Failed attempts before the item is dead-lettered (dropped with a
    /// counter) so a poisoned item cannot head-of-line-block FIFO forever;
    /// 0 = unlimited retries.
    std::uint64_t max_attempts = 0;
    /// First backoff delay after a failure; doubles with every further
    /// failure of the item (exponential backoff). 0 = retry next round.
    double backoff_base_sec = 0.0;
    /// Ceiling on the backoff delay.
    double backoff_cap_sec = 24.0 * 3600.0;
};

/// Everything a scheduler may react to at a round boundary.
struct round_context {
    richnote::sim::sim_time now = 0;
    std::uint64_t round = 0;         ///< round index (trace event keys)
    double data_budget_bytes = 0.0;  ///< B(t): accumulated metered budget
    richnote::sim::net_state network = richnote::sim::net_state::cell;
    bool metered = true;             ///< false on wifi: budget is not charged
    double link_capacity_bytes = 0.0; ///< max bytes the link can move this round
    double energy_replenishment = 0.0; ///< e(t) from the battery policy
};

/// One entry of the per-round delivery plan, in delivery order.
struct planned_delivery {
    std::uint64_t item_id = 0;
    level_t level = 0;             ///< chosen presentation level (>= 1)
    double size_bytes = 0.0;       ///< s(i, level)
    double utility = 0.0;          ///< true U(i, level) (Eq. 1), for metrics
    double rho_joules = 0.0;       ///< estimated download energy
    double item_total_size = 0.0;  ///< s(i): all levels (Lyapunov accounting)
    trace::notification note;      ///< copy for metrics bookkeeping
};

class scheduler {
public:
    virtual ~scheduler() = default;

    virtual const char* name() const noexcept = 0;

    /// New content enters the scheduling queue.
    virtual void enqueue(sched_item item) = 0;

    /// Build this round's delivery plan (does not mutate the queue). The
    /// returned reference points at a per-scheduler buffer reused across
    /// rounds (the zero-allocation hot path); it stays valid while the
    /// broker delivers — on_delivered()/on_transfer_failed() only touch the
    /// queue — but is invalidated by the next plan() call. Callers that
    /// need the plan beyond that must copy it.
    virtual const std::vector<planned_delivery>& plan(const round_context& ctx) = 0;

    /// The broker delivered this item; drop it from the scheduling queue.
    /// `energy_spent` is the actual (estimated) energy charged to it.
    virtual void on_delivered(std::uint64_t item_id, double energy_spent) = 0;

    virtual std::size_t queue_size() const noexcept = 0;

    /// Bytes of pending presentations in the scheduling queue (sum of s(i)).
    virtual double queue_bytes() const noexcept = 0;

    /// May the broker deliver one more item costing `rho` joules this
    /// round? Baselines always say yes; RichNote gates on its energy
    /// credit P(t).
    virtual bool allow_delivery(double rho_joules) const noexcept {
        (void)rho_joules;
        return true;
    }

    /// Radio-session energy beyond the per-item rho estimates (ramp/tail
    /// not attributable to a single item). RichNote charges it against the
    /// energy virtual queue so P(t) tracks the true spend; baselines
    /// ignore it.
    virtual void on_session_overhead(double joules) { (void)joules; }

    /// Remaining energy credit P(t) for telemetry; 0 for policies that do
    /// not track energy (the fixed-level baselines).
    virtual double energy_credit_joules() const noexcept { return 0.0; }

    // ----- resilient delivery (fault tolerance) -----

    /// Installs the per-item retry budget (defaults: retry forever,
    /// immediately — the pre-fault behaviour).
    virtual void set_retry_policy(const retry_policy& policy) { (void)policy; }

    /// The broker's transfer of this item was cut mid-flight: bump its
    /// retry state (backoff) or dead-letter it when the budget is spent.
    /// Returns true when the item was dead-lettered (left the queue).
    virtual bool on_transfer_failed(std::uint64_t item_id, richnote::sim::sim_time now) {
        (void)item_id;
        (void)now;
        return false;
    }

    /// Serializable scheduler state for crash-restart recovery. One struct
    /// covers every implementation; fields irrelevant to a policy stay at
    /// their defaults.
    struct checkpoint_state {
        std::vector<sched_item> items; ///< scheduling queue in insertion order
        std::uint64_t retries = 0;
        std::uint64_t dead_lettered = 0;
        lyapunov_state lyapunov;       ///< richnote_scheduler only
        double energy_credit = 0.0;    ///< direct_scheduler only
        std::uint64_t dropped_low_utility = 0;
        std::uint64_t expired_items = 0;
        std::uint64_t deferred_item_rounds = 0;
    };

    virtual checkpoint_state checkpoint() const = 0;
    virtual void restore(const checkpoint_state& state) = 0;

    // ----- structured tracing (obs) -----

    /// Attaches a per-decision trace sink; the scheduler emits its MCKP
    /// candidate sets, chosen levels and retry transitions for `user` into
    /// it. Null detaches (the default — emission sites cost one branch).
    void bind_trace(richnote::obs::trace_sink* sink, std::uint32_t user) noexcept {
        trace_ = sink;
        trace_user_ = user;
    }

    /// Attaches the service-mode lifecycle tracker (obs/lifecycle.hpp); the
    /// scheduler reports first-plan and dead-letter stage transitions into
    /// it. Null detaches (the default — each site costs one branch).
    void bind_lifecycle(richnote::obs::lifecycle_tracker* lifecycle) noexcept {
        lifecycle_ = lifecycle;
    }

protected:
    richnote::obs::trace_sink* trace_ = nullptr;
    richnote::obs::lifecycle_tracker* lifecycle_ = nullptr;
    std::uint32_t trace_user_ = 0;
    /// Round of the most recent plan() call, so events emitted outside
    /// plan() (retry/backoff, dead-letter) land on the right round.
    std::uint64_t trace_round_ = 0;
};

/// Shared queue plumbing for all three schedulers.
class queue_scheduler_base : public scheduler {
public:
    void enqueue(sched_item item) override;
    void on_delivered(std::uint64_t item_id, double energy_spent) override;
    std::size_t queue_size() const noexcept override { return queue_.size(); }
    double queue_bytes() const noexcept override { return queued_bytes_; }

    /// Drops every queued item that arrived before `cutoff` (bounded
    /// staleness). Departure hooks fire with zero energy; the items'
    /// retry/backoff bookkeeping leaves the queue with them. Returns the
    /// number of items expired.
    std::size_t expire_older_than(richnote::sim::sim_time cutoff);

    void set_retry_policy(const retry_policy& policy) override { retry_ = policy; }
    bool on_transfer_failed(std::uint64_t item_id, richnote::sim::sim_time now) override;

    /// Transfers observed failing so far whose item stayed queued for retry.
    std::uint64_t retries() const noexcept { return retries_; }

    /// Items dropped after exhausting retry_policy::max_attempts.
    std::uint64_t dead_lettered() const noexcept { return dead_lettered_; }

    /// Read-only view of the scheduling queue (consistency checks / tests).
    const std::vector<sched_item>& queued_items() const noexcept { return queue_; }

    checkpoint_state checkpoint() const override;
    void restore(const checkpoint_state& state) override;

protected:
    /// Is the item allowed to be planned at `now` (not backing off)?
    bool retry_eligible(const sched_item& item, richnote::sim::sim_time now) const noexcept {
        return item.retry_not_before <= now;
    }

    /// Reports an item's first appearance in a delivery plan to the
    /// lifecycle tracker. Call at plan-entry construction, where the
    /// (mutable) item is in hand: plans are rebuilt every round, so the
    /// steady-state cost must be this one flag branch per selected entry —
    /// any end-of-plan reconciliation over ids pays O(queue) per round on
    /// a backlog, which measurably drags the round loop.
    void note_planned_item(sched_item& item, level_t level);

    /// Hooks for subclasses that track queue state (Lyapunov).
    virtual void on_enqueued(const sched_item& item) { (void)item; }
    virtual void on_departed(const sched_item& item, double energy_spent) {
        (void)item;
        (void)energy_spent;
    }

    /// Insertion-ordered (= arrival-ordered) queue. Id lookups linear-scan
    /// it (see find_position); queues are short, so that beats an id map.
    std::vector<sched_item> queue_;
    double queued_bytes_ = 0.0;
    retry_policy retry_;
    std::uint64_t retries_ = 0;
    std::uint64_t dead_lettered_ = 0;
    /// Bumped on every structural queue change (enqueue / removal /
    /// restore); lets subclasses cache queue-derived state (delivery
    /// orders) and refresh it only when stale.
    std::uint64_t queue_version_ = 0;
    /// Scratch arena: the delivery plan buffer every plan() implementation
    /// fills and returns. Reused across rounds, so a steady-state round
    /// allocates nothing.
    std::vector<planned_delivery> plan_;

private:
    std::size_t find_position(std::uint64_t item_id) const noexcept;
    void remove_at(std::size_t pos, double energy_spent);
};

/// The paper's scheduler: Lyapunov-adjusted MCKP selection (Algorithm 2).
class richnote_scheduler final : public queue_scheduler_base {
public:
    struct params {
        lyapunov_params lyapunov;
        mckp_options mckp;
        /// Expected items per delivery batch for the rho estimate.
        double expected_batch_items = 8.0;
        /// Precision knob (§V-D1: "it is possible to achieve higher
        /// precision using RichNote by only delivering notifications with
        /// higher utility value"): items whose content utility U_c falls
        /// below this threshold are declined at enqueue time — never
        /// delivered, trading recall for precision. 0 disables the filter.
        double min_content_utility = 0.0;
        /// Aging factor (§III-A: content utility "may also depend on the
        /// recency of the content"): the effective content utility of a
        /// queued item decays as U_c * 2^(-age / half_life), so stale items
        /// lose priority for upgrades and eventually for delivery itself.
        /// 0 disables aging (the paper's evaluation setting).
        double utility_half_life_sec = 0.0;
        /// Bounded staleness: queued items older than this are expired at
        /// the next round boundary instead of lingering forever (an
        /// extension; the paper never drops). 0 disables expiry.
        double max_queue_age_sec = 0.0;
        /// WiFi deferral (extension in the spirit of the paper's prefetch
        /// citation [14]): on METERED links, items with content utility at
        /// or above this threshold are withheld — kept queued in the hope
        /// of an unmetered WiFi round where they can ship at a rich level
        /// for free — for at most wifi_deferral_max_wait_sec, after which
        /// they compete on cellular as usual. 0 disables deferral.
        double wifi_deferral_min_utility = 0.0;
        double wifi_deferral_max_wait_sec = 6.0 * 3600.0;
    };

    richnote_scheduler(params p, const energy::energy_model& energy);

    const char* name() const noexcept override { return "RichNote"; }
    void enqueue(sched_item item) override;
    const std::vector<planned_delivery>& plan(const round_context& ctx) override;
    bool allow_delivery(double rho_joules) const noexcept override;
    void on_session_overhead(double joules) override;

    const lyapunov_controller& controller() const noexcept { return controller_; }

    double energy_credit_joules() const noexcept override {
        return controller_.energy_credit();
    }

    /// Items declined by the min_content_utility filter.
    std::uint64_t dropped_low_utility() const noexcept { return dropped_low_utility_; }

    /// Items dropped by the max_queue_age expiry.
    std::uint64_t expired_items() const noexcept { return expired_items_; }

    /// Item-rounds spent waiting for WiFi under the deferral policy.
    std::uint64_t deferred_item_rounds() const noexcept { return deferred_item_rounds_; }

    /// Per-path call counters of the incremental MCKP re-solver (reuse /
    /// replay / repair / cold mix; exported by bench/perf_round_loop).
    const mckp_incremental_scratch::stats& mckp_stats() const noexcept {
        return mckp_scratch_.counters;
    }

    checkpoint_state checkpoint() const override;
    void restore(const checkpoint_state& state) override;

protected:
    void on_enqueued(const sched_item& item) override;
    void on_departed(const sched_item& item, double energy_spent) override;

private:
    params params_;
    const energy::energy_model* energy_;
    lyapunov_controller controller_;
    std::uint64_t dropped_low_utility_ = 0;
    std::uint64_t expired_items_ = 0;
    std::uint64_t deferred_item_rounds_ = 0;
    /// Per-round scratch arenas (see plan()): the MCKP instance, the flat
    /// per-item/per-level rho cache (rho_offset_[i] indexes into rho_flat_),
    /// the aged content utilities, and the MCKP solver's own scratch. All
    /// grow-only: instance_ keeps one slot per historical queue-size peak,
    /// with slots beyond the current queue holding cleared (empty) menus
    /// that the solver treats as inert.
    std::vector<mckp_item> instance_;
    std::vector<double> rho_flat_;
    std::vector<std::size_t> rho_offset_;
    std::vector<double> aged_uc_;
    /// Incremental MCKP state: carries the previous round's solution and
    /// canonical upgrade schedule across rounds (see mckp_incremental_scratch).
    mckp_incremental_scratch mckp_scratch_;
};

/// The §III-C formulation solved directly, WITHOUT the Lyapunov
/// transformation: each round maximizes Eq. 1 utility subject to the data
/// budget (Eq. 2b) AND a hard per-round energy budget (Eq. 2c) via the
/// two-weight MCKP greedy. Energy credit accrues kappa per round (capped at
/// `energy_accrual_rounds` * kappa) and is spent on delivery. This is the
/// design the paper replaces with Lyapunov control; keeping it lets
/// bench/ablation_direct ablate that choice.
class direct_scheduler final : public queue_scheduler_base {
public:
    struct params {
        double kappa_joules_per_round = 3000.0; ///< Eq. 2c budget E(t) accrual
        double energy_accrual_rounds = 24.0;    ///< cap on banked energy credit
        mckp_options mckp;
        double expected_batch_items = 8.0;
    };

    direct_scheduler(params p, const energy::energy_model& energy);

    const char* name() const noexcept override { return "Direct"; }
    const std::vector<planned_delivery>& plan(const round_context& ctx) override;
    bool allow_delivery(double rho_joules) const noexcept override;
    void on_session_overhead(double joules) override;

    double energy_credit() const noexcept { return energy_credit_; }
    double energy_credit_joules() const noexcept override { return energy_credit_; }

    checkpoint_state checkpoint() const override;
    void restore(const checkpoint_state& state) override;

protected:
    void on_departed(const sched_item& item, double energy_spent) override;

private:
    params params_;
    const energy::energy_model* energy_;
    double energy_credit_ = 0.0;
    /// Scratch arenas for the two-weight MCKP hot path (see
    /// richnote_scheduler's instance_ for the grow-only slot discipline).
    std::vector<mckp_item_2d> instance_;
    mckp_scratch mckp_scratch_;
};

/// Baseline plumbing: fixed presentation level, differing only in order.
class fixed_level_scheduler : public queue_scheduler_base {
public:
    /// `fixed_level` indexes the generated presentation set (1 = metadata
    /// only, 2 = +5 s, ... per §V-C); items with fewer levels clamp to
    /// their maximum.
    fixed_level_scheduler(level_t fixed_level, const energy::energy_model& energy);

    const std::vector<planned_delivery>& plan(const round_context& ctx) override;

    level_t fixed_level() const noexcept { return fixed_level_; }

protected:
    /// Queue positions in delivery order for this policy. Implementations
    /// return a reference to the cached order_ buffer, rebuilt only when
    /// the queue changed since the last call (order_version_ tracks
    /// queue_version_), so steady-state rounds skip the rebuild + sort.
    virtual const std::vector<std::size_t>& delivery_order() = 0;
    /// Whether an item that does not fit blocks the rest (FIFO) or is
    /// skipped (UTIL).
    virtual bool head_of_line_blocking() const noexcept = 0;

    /// Cached delivery order and the queue version it was built against.
    std::vector<std::size_t> order_;
    std::uint64_t order_version_ = ~std::uint64_t{0};

private:
    level_t fixed_level_;
    const energy::energy_model* energy_;
};

/// FIFO baseline: delivery-timestamp order, head-of-line blocking.
class fifo_scheduler final : public fixed_level_scheduler {
public:
    using fixed_level_scheduler::fixed_level_scheduler;
    const char* name() const noexcept override { return "FIFO"; }

protected:
    const std::vector<std::size_t>& delivery_order() override;
    bool head_of_line_blocking() const noexcept override { return true; }
};

/// UTIL baseline: highest utility first, skipping items that do not fit.
class util_scheduler final : public fixed_level_scheduler {
public:
    using fixed_level_scheduler::fixed_level_scheduler;
    const char* name() const noexcept override { return "UTIL"; }

protected:
    const std::vector<std::size_t>& delivery_order() override;
    bool head_of_line_blocking() const noexcept override { return false; }
};

} // namespace richnote::core

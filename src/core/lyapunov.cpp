#include "core/lyapunov.hpp"

#include <algorithm>

namespace richnote::core {

lyapunov_controller::lyapunov_controller(lyapunov_params params) : params_(params) {
    RICHNOTE_REQUIRE(params.v > 0, "Lyapunov V must be positive");
    RICHNOTE_REQUIRE(params.kappa >= 0, "kappa must be non-negative");
    RICHNOTE_REQUIRE(params.initial_energy_credit >= 0,
                     "initial energy credit must be non-negative");
    RICHNOTE_REQUIRE(params.queue_unit_bytes > 0, "queue unit must be positive");
    RICHNOTE_REQUIRE(params.energy_unit_joules >= 0, "energy unit must be non-negative");
    if (params_.energy_unit_joules == 0.0) {
        params_.energy_unit_joules = params_.kappa > 0 ? params_.kappa : 1.0;
    }
    p_ = params.initial_energy_credit;
}

double lyapunov_controller::lyapunov_value() const noexcept {
    const double dp = p_ - params_.kappa;
    return 0.5 * (q_ * q_ + dp * dp);
}

void lyapunov_controller::on_enqueue(double bytes) {
    RICHNOTE_REQUIRE(bytes >= 0, "enqueued bytes must be non-negative");
    q_ += bytes;
}

void lyapunov_controller::on_departure(double item_total_size, double energy_spent) {
    RICHNOTE_REQUIRE(item_total_size >= 0 && energy_spent >= 0,
                     "departure amounts must be non-negative");
    q_ = std::max(0.0, q_ - item_total_size);
    p_ = std::max(0.0, p_ - energy_spent);
}

void lyapunov_controller::restore(const lyapunov_state& state) {
    RICHNOTE_REQUIRE(state.queue_backlog >= 0 && state.energy_credit >= 0,
                     "restored queue state must be non-negative");
    q_ = state.queue_backlog;
    p_ = state.energy_credit;
}

void lyapunov_controller::on_round(double replenishment_joules) {
    RICHNOTE_REQUIRE(replenishment_joules >= 0, "replenishment must be non-negative");
    if (p_ <= params_.kappa) p_ += replenishment_joules;
}

} // namespace richnote::core

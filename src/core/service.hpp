// Long-lived sharded notification service — `richnote serve` (DESIGN.md §11).
//
// The batch runner (core/experiment.cpp) replays a pre-generated workload
// and exits; the service keeps a fleet of per-user brokers resident and
// feeds them from a live wire:
//
//   ingest threads ──> admission_queue (bounded, lock-free) ──┐
//                                                             │ drain at
//   round driver <── worker_pool (persistent, pinned shards) <┘ round
//                                                               boundaries
//
// Ingest (any thread) parses NDJSON lines (core/wire.hpp) and pushes onto
// the bounded ring; a full ring is backpressure (HTTP 503 upstream), never
// a stall of the round loop. The driver drains the ring single-threaded at
// each round boundary, buckets items per user, and the persistent pool
// admits + runs every user's round on its pinned contiguous shard.
//
// Bit-identity contract: for the same admitted stream, the service's
// per-user delivered set and total_utility are bit-identical to
// run_experiment on the equivalent workload, for ANY worker count and
// across ANY number of mid-run reshards. The pieces that make this hold:
//   - brokers are built by the same make_user_broker path, with the same
//     per-user seed derivation;
//   - the round clock accumulates `now += round` exactly like the event
//     simulator's periodic re-arm, so timestamps compare identically;
//   - per round, each user's due items are admitted in canonical order —
//     topic class (fast friend-feed first, then batch album/playlist),
//     then created_at, then id — which is exactly the order the batch
//     loop's fast/batch cursor walk produces, because the generator
//     assigns ids in per-user timestamp order;
//   - duplicate ids are suppressed by the brokers' idempotent admission,
//     so an at-least-once wire cannot double-deliver;
//   - resharding is checkpoint-restore: every broker is checkpointed,
//     the fleet is torn down and rebuilt deterministically, checkpoints
//     are restored, and the pool is resized. Lossless by the same
//     property the crash-restart fault path pins down.
//
// Out of scope (REQUIREd against): online learning, fault plans and
// batch_topic_round_multiplier > 1 — all three entangle admission order
// with run_experiment's tick index in ways a live wire has no analogue of.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/admission_queue.hpp"
#include "core/experiment.hpp"
#include "core/worker_pool.hpp"

namespace richnote::obs {
class metrics_registry;
}

namespace richnote::core {

struct service_params {
    /// Scheduler/broker configuration, shared with run_experiment. The
    /// service REQUIREs online_learning off, an inert fault plan and
    /// batch_topic_round_multiplier == 1. The trace sink works exactly as
    /// in batch mode (per-user buckets, flushed per round); telemetry,
    /// progress and registry hooks are ignored — the service exposes its
    /// state via counters() and export_service_metrics() instead.
    experiment_params experiment;
    /// Fleet size. 0 = the setup workload's user count. May exceed the
    /// workload's: brokers are synthesized per user id, not per stream, so
    /// a model trained on a small trace can serve millions of users.
    std::size_t user_count = 0;
    std::size_t worker_threads = 1;
    /// Admission ring capacity (rounded up to a power of two). Full ring =
    /// backpressure.
    std::size_t queue_capacity = 1 << 16;
    /// Dedup-set sizing hint per broker (0 = none). Never affects outputs.
    std::size_t expected_admissions_per_user = 0;
};

/// Monotonic service counters (all since construction). Ingest counters
/// are updated from handler threads; the rest from the round driver.
struct service_counters {
    std::uint64_t ingest_accepted = 0;
    std::uint64_t ingest_rejected_parse = 0;        ///< malformed line (400)
    std::uint64_t ingest_rejected_user = 0;         ///< recipient outside fleet (400)
    std::uint64_t ingest_rejected_backpressure = 0; ///< ring full (503)
    std::uint64_t admitted = 0; ///< handed to brokers (incl. duplicates they suppress)
    std::uint64_t pending = 0;  ///< buffered for a future round (created_at ahead of clock)
    std::uint64_t rounds_run = 0;
    std::uint64_t reshards = 0;
    std::size_t worker_threads = 0;
    std::size_t users = 0;
};

class notification_service {
public:
    notification_service(const experiment_setup& setup, const service_params& params);
    ~notification_service();

    notification_service(const notification_service&) = delete;
    notification_service& operator=(const notification_service&) = delete;

    enum class ingest_status {
        accepted,     ///< parsed and enqueued
        parse_error,  ///< malformed line (reason in `error`)
        unknown_user, ///< recipient id outside the fleet
        backpressure  ///< admission ring full; retry later
    };

    /// Wire entry point — safe from any number of threads concurrently.
    ingest_status ingest_line(std::string_view line, std::string* error = nullptr);
    /// Same, for an already-parsed notification (tests, replay tooling).
    ingest_status ingest(const trace::notification& n);

    /// One round: drain the ring, bucket per user, then admit + run every
    /// broker's round on the pinned shards. Round driver thread only.
    void run_round();
    void run_rounds(std::uint64_t count);

    /// Elastic resharding (round boundary only): checkpoint every broker,
    /// rebuild the fleet deterministically, restore, resize the pool.
    void reshard(std::size_t worker_threads);

    std::uint64_t rounds_run() const noexcept { return rounds_run_; }
    richnote::sim::sim_time now() const noexcept { return now_; }
    std::size_t user_count() const noexcept { return brokers_.size(); }
    std::size_t worker_threads() const noexcept { return pool_->threads(); }

    service_counters counters() const;
    const metrics_recorder& metrics() const noexcept { return metrics_; }
    const broker& user_broker(trace::user_id u) const { return brokers_[u]; }

    /// Aggregates the run so far into the same result struct the batch
    /// runner produces — this is what the equivalence tests byte-compare.
    experiment_result summarize() const;

    /// Exports the service counters under richnote.service.* names (plus
    /// the run aggregates via core::export_metrics).
    void export_service_metrics(richnote::obs::metrics_registry& registry) const;

private:
    void build_fleet();
    void drain_ring();
    static bool canonical_before(const trace::notification& a,
                                 const trace::notification& b) noexcept;

    /// A drained-but-not-yet-due notification plus the round the driver
    /// drained it off the ring — the lc_admit event reports the difference
    /// (wait_rounds) when the item finally goes to its broker.
    struct pending_item {
        trace::notification note;
        std::uint64_t ingest_round = 0;
    };

    const experiment_setup* setup_;
    service_params params_;
    double theta_ = 0.0;

    // Read-only scoring/synthesis context shared by every broker.
    std::unique_ptr<memoized_presentation_generator> generator_;
    energy::energy_model energy_;
    metrics_recorder metrics_;

    std::vector<broker> brokers_;
    /// Per-user held notifications whose created_at is still ahead of the
    /// round clock — the service analogue of the batch loop's stream
    /// cursors. Reused across rounds (per-shard scratch).
    std::vector<std::vector<pending_item>> pending_;
    std::uint64_t pending_count_ = 0;

    admission_queue<trace::notification> ring_;
    std::unique_ptr<worker_pool> pool_;

    richnote::sim::sim_time now_ = 0.0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t reshards_ = 0;
    std::uint64_t admitted_ = 0;

    // Touched by concurrent ingest threads.
    std::atomic<std::uint64_t> ingest_accepted_{0};
    std::atomic<std::uint64_t> ingest_rejected_parse_{0};
    std::atomic<std::uint64_t> ingest_rejected_user_{0};
    std::atomic<std::uint64_t> ingest_rejected_backpressure_{0};
};

} // namespace richnote::core

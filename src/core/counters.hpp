// Shared fault / recovery counter block (DESIGN.md §9).
//
// Before the observability layer these seven tallies were duplicated field
// by field in core/metrics (per-user and summed), core/telemetry (cumulative
// per-round samples) and the harness reporting code, each copy renaming
// them slightly. One struct now flows through all three, and the obs
// metrics_registry export (core::export_metrics) is the single place the
// names become canonical metric paths.
//
// All counts are uint64_t: chaos-soak and long sweep runs overflow 32 bits
// (a week-scale soak at ~50k retries/sec crosses 2^32 in under a day).
#pragma once

#include <cstdint>

namespace richnote::core {

struct fault_counters {
    std::uint64_t faults_injected = 0;       ///< blackout/brownout rounds hit
    std::uint64_t transfer_retries = 0;      ///< transfers cut mid-flight, item retried
    std::uint64_t dead_lettered = 0;         ///< items dropped after the retry budget
    std::uint64_t duplicates_suppressed = 0; ///< replayed publishes deduplicated
    std::uint64_t crash_restarts = 0;        ///< broker crash-restart events survived
    double partial_bytes = 0.0;              ///< bytes landed in interrupted attempts
    double resumed_bytes = 0.0;              ///< bytes salvaged via high-water resume

    fault_counters& accumulate(const fault_counters& other) noexcept {
        faults_injected += other.faults_injected;
        transfer_retries += other.transfer_retries;
        dead_lettered += other.dead_lettered;
        duplicates_suppressed += other.duplicates_suppressed;
        crash_restarts += other.crash_restarts;
        partial_bytes += other.partial_bytes;
        resumed_bytes += other.resumed_bytes;
        return *this;
    }
};

} // namespace richnote::core

// Experiment metrics (§V-C): delivery ratio, precision/recall against the
// trace's recorded clicks, delivered utility (overall and among clicked
// items), download energy and queuing delay, plus the presentation-level
// mix behind Figs. 5(b)/5(c) and the per-user aggregation behind Fig. 5(d).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/counters.hpp"
#include "core/scheduler.hpp"
#include "sim/time.hpp"
#include "trace/notification.hpp"

namespace richnote::obs {
class metrics_registry;
}

namespace richnote::core {

/// Per-user tallies; aggregated across users for reporting.
struct user_metrics {
    std::uint64_t arrived = 0;
    std::uint64_t delivered = 0;
    std::uint64_t clicked_total = 0;      ///< clicked in the trace (recall denom.)
    std::uint64_t delivered_clicked = 0;  ///< clicked items that were delivered
    std::uint64_t delivered_before_click = 0; ///< ... before the recorded click time
    double bytes_delivered = 0.0;
    double metered_bytes_delivered = 0.0; ///< bytes charged to the data budget
    double utility_delivered = 0.0;       ///< sum of U(i, eta(i)) over deliveries
    double utility_clicked = 0.0;         ///< same, restricted to clicked items
    double energy_joules = 0.0;
    richnote::running_stats queuing_delay_sec;
    std::vector<std::uint64_t> level_counts; ///< deliveries per level (index 0 unused)

    /// Fault / recovery tallies (resilient delivery pipeline); the shared
    /// counter block also carried by telemetry samples and fault summaries.
    fault_counters faults;

    double delivery_ratio() const noexcept;
    /// §V-C: "the fraction of delivered notifications (before the recorded
    /// click time in the Spotify trace) that are clicked on by the users".
    double precision() const noexcept; ///< delivered_before_click / delivered
    /// §V-C: "the fraction of total clicked notifications that are
    /// delivered to the users" (no before-click qualifier).
    double recall() const noexcept;    ///< delivered_clicked / clicked_total
};

/// All mutating calls touch only the recipient user's slot, so the
/// recorder is safe under user-sharded parallelism (each user driven by
/// exactly one worker thread); aggregates are computed after the run.
class metrics_recorder {
public:
    explicit metrics_recorder(std::size_t user_count, std::size_t max_level);

    /// A notification arrived at the broker.
    void on_arrival(const trace::notification& n);

    /// A planned entry was actually delivered at `when`; `energy_joules`
    /// is its share of the round's radio energy; `metered` says whether the
    /// bytes were charged against the cellular data budget. `bytes_moved`
    /// is how many bytes actually crossed the link in the completing
    /// attempt — less than d.size_bytes when a partial transfer resumed
    /// from its high-water mark; negative (the default) means the full
    /// planned size.
    void on_delivery(const planned_delivery& d, richnote::sim::sim_time when,
                     double energy_joules, bool metered, double bytes_moved = -1.0);

    /// Extra radio-session energy not attributable to a single item.
    void on_session_overhead(trace::user_id user, double energy_joules);

    // ----- fault / recovery events (surfaced from the broker) -----

    /// An injected environment fault (blackout / brownout) hit this round.
    void on_fault(trace::user_id user);

    /// A transfer was cut mid-flight after moving `bytes_moved` bytes; the
    /// item stays queued for retry.
    void on_transfer_interrupted(trace::user_id user, double bytes_moved);

    /// An item exhausted its retry budget and was dead-lettered.
    void on_dead_letter(trace::user_id user);

    /// A replayed publish (duplicate notification id) was suppressed.
    void on_duplicate_suppressed(trace::user_id user);

    /// The user's broker crashed and restarted from its checkpoint.
    void on_crash_restart(trace::user_id user);

    /// A completing transfer salvaged `bytes` previously moved by
    /// interrupted attempts (resume from the high-water mark).
    void on_resume(trace::user_id user, double bytes);

    const user_metrics& user(std::size_t u) const;
    std::size_t user_count() const noexcept { return users_.size(); }
    std::size_t max_level() const noexcept { return max_level_; }

    // ----- aggregates across users (each the mean/sum the paper plots) ----
    double total_arrived() const noexcept;
    double total_delivered() const noexcept;
    double delivery_ratio() const noexcept;      ///< Fig. 3(a)
    double total_bytes_delivered() const noexcept; ///< Fig. 3(b)
    double total_metered_bytes() const noexcept;
    double recall() const noexcept;              ///< Fig. 3(c)
    double precision() const noexcept;           ///< Fig. 3(d)
    double total_utility() const noexcept;       ///< Fig. 4(a)
    double total_utility_clicked() const noexcept; ///< Fig. 4(b)
    double average_utility_per_delivery() const noexcept;
    double total_energy_joules() const noexcept; ///< Fig. 4(c)
    double mean_queuing_delay_sec() const noexcept; ///< Fig. 4(d)

    /// Fraction of deliveries at each level 1..max (Figs. 5(b)/(c));
    /// index 0 counts items never delivered ("missing fraction").
    std::vector<double> level_mix() const;

    /// Fig. 5(d): bucket users by arrived-item count (edges are bucket upper
    /// bounds; the last is open-ended) and report mean/stddev of per-user
    /// delivered utility per bucket.
    struct user_category_row {
        std::string label;
        std::size_t users = 0;
        double mean_utility = 0.0;
        double stddev_utility = 0.0;
    };
    std::vector<user_category_row> utility_by_user_category(
        const std::vector<std::uint64_t>& edges) const;

    /// Fault / recovery tallies summed across users (the same counter block
    /// each user carries — see core/counters.hpp).
    using fault_totals = fault_counters;
    fault_totals fault_summary() const noexcept;

private:
    std::vector<user_metrics> users_;
    std::size_t max_level_;
};

/// Exports a finished run's aggregates into the obs registry under the
/// canonical richnote.* metric names (DESIGN.md §9) — the one place the
/// recorder's tallies and the fault counter block become named series.
void export_metrics(const metrics_recorder& metrics, richnote::obs::metrics_registry& registry);

} // namespace richnote::core

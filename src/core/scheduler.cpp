#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "obs/lifecycle.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"

namespace richnote::core {

using richnote::sim::net_state;

// ---------------------------------------------------------------- base ----

void queue_scheduler_base::note_planned_item(sched_item& item, level_t level) {
    if (lifecycle_ == nullptr || item.lifecycle_noted) return;
    item.lifecycle_noted = true;
    lifecycle_->on_planned(item.note.id, trace_round_,
                           static_cast<std::uint32_t>(level));
}

std::size_t queue_scheduler_base::find_position(std::uint64_t item_id) const noexcept {
    // Linear scan, on purpose: per-user queues are short (a handful of
    // items in steady state), so scanning beats maintaining an id->position
    // hash map — which costs a node allocation per enqueue and a tail
    // fixup walk per removal — on both time and the zero-allocation goal.
    for (std::size_t p = 0; p < queue_.size(); ++p)
        if (queue_[p].note.id == item_id) return p;
    return queue_.size();
}

void queue_scheduler_base::enqueue(sched_item item) {
    RICHNOTE_REQUIRE(!item.presentations.empty(), "item needs at least one presentation");
    RICHNOTE_REQUIRE(find_position(item.note.id) == queue_.size(),
                     "item already in the scheduling queue");
    queued_bytes_ += item.presentations.total_size();
    queue_.push_back(std::move(item));
    ++queue_version_;
    on_enqueued(queue_.back());
}

void queue_scheduler_base::on_delivered(std::uint64_t item_id, double energy_spent) {
    const std::size_t pos = find_position(item_id);
    RICHNOTE_REQUIRE(pos < queue_.size(), "delivered item not in the scheduling queue");
    remove_at(pos, energy_spent);
}

void queue_scheduler_base::remove_at(std::size_t pos, double energy_spent) {
    on_departed(queue_[pos], energy_spent);
    queued_bytes_ -= queue_[pos].presentations.total_size();
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pos));
    ++queue_version_;
}

std::size_t queue_scheduler_base::expire_older_than(richnote::sim::sim_time cutoff) {
    std::size_t expired = 0;
    for (std::size_t pos = 0; pos < queue_.size();) {
        if (queue_[pos].arrived_at < cutoff) {
            remove_at(pos, 0.0);
            ++expired;
        } else {
            ++pos;
        }
    }
    return expired;
}

bool queue_scheduler_base::on_transfer_failed(std::uint64_t item_id,
                                              richnote::sim::sim_time now) {
    const std::size_t pos = find_position(item_id);
    RICHNOTE_REQUIRE(pos < queue_.size(), "failed item not in the scheduling queue");
    sched_item& item = queue_[pos];
    ++item.failed_attempts;
    if (retry_.max_attempts > 0 && item.failed_attempts >= retry_.max_attempts) {
        // Retry budget spent: dead-letter the item so it cannot head-of-
        // line-block FIFO (or pin Q(t)) forever.
        if (trace_ != nullptr) {
            trace_->event(trace_user_, trace_round_, "dead_letter")
                .field("item", item.note.id)
                .field("attempts", item.failed_attempts);
        }
        const std::uint64_t dead_id = item.note.id; // remove_at invalidates item
        remove_at(pos, 0.0);
        ++dead_lettered_;
        if (lifecycle_ != nullptr) lifecycle_->on_dead_lettered(dead_id, trace_round_);
        return true;
    }
    ++retries_;
    if (retry_.backoff_base_sec > 0.0) {
        // Exponential backoff: base * 2^(failures-1), capped.
        const int doublings =
            static_cast<int>(std::min<std::uint64_t>(item.failed_attempts - 1, 40));
        const double delay =
            std::min(retry_.backoff_cap_sec, std::ldexp(retry_.backoff_base_sec, doublings));
        item.retry_not_before = now + delay;
    }
    if (trace_ != nullptr) {
        trace_->event(trace_user_, trace_round_, "retry_backoff")
            .field("item", item.note.id)
            .field("attempts", item.failed_attempts)
            .field("not_before", item.retry_not_before);
    }
    return false;
}

scheduler::checkpoint_state queue_scheduler_base::checkpoint() const {
    checkpoint_state state;
    state.items = queue_;
    state.retries = retries_;
    state.dead_lettered = dead_lettered_;
    return state;
}

void queue_scheduler_base::restore(const checkpoint_state& state) {
    // Rebuild the queue directly, without the enqueue hooks: subclasses
    // restore their derived state (e.g. the Lyapunov queues) explicitly.
    queue_ = state.items;
    queued_bytes_ = 0.0;
    for (const sched_item& item : queue_) queued_bytes_ += item.presentations.total_size();
    retries_ = state.retries;
    dead_lettered_ = state.dead_lettered;
    ++queue_version_;
}

// ----------------------------------------------------------- richnote ----

richnote_scheduler::richnote_scheduler(params p, const energy::energy_model& energy)
    : params_(p), energy_(&energy), controller_(p.lyapunov) {}

void richnote_scheduler::enqueue(sched_item item) {
    if (item.content_utility < params_.min_content_utility) {
        ++dropped_low_utility_; // declined: traded away for precision
        return;
    }
    queue_scheduler_base::enqueue(std::move(item));
}

void richnote_scheduler::on_enqueued(const sched_item& item) {
    controller_.on_enqueue(item.presentations.total_size());
}

void richnote_scheduler::on_departed(const sched_item& item, double energy_spent) {
    controller_.on_departure(item.presentations.total_size(), energy_spent);
}

void richnote_scheduler::on_session_overhead(double joules) {
    controller_.on_departure(0.0, joules);
}

bool richnote_scheduler::allow_delivery(double rho_joules) const noexcept {
    // Conservative gate: deliver only when the energy credit covers the
    // item's estimated cost. (Deducting on delivery and merely requiring
    // P > 0 would overshoot the energy envelope by up to one item's rho
    // per round — material when kappa is small relative to a rich
    // presentation's download energy.)
    return controller_.energy_credit() >= rho_joules;
}

const std::vector<planned_delivery>& richnote_scheduler::plan(const round_context& ctx) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::scheduler_plan);
    trace_round_ = ctx.round;

    // Algorithm 2 step 2: replenish the energy credit at the round boundary.
    controller_.on_round(ctx.energy_replenishment);

    // Bounded staleness (extension): expire items past the age limit.
    if (params_.max_queue_age_sec > 0) {
        expired_items_ += expire_older_than(ctx.now - params_.max_queue_age_sec);
    }

    plan_.clear();
    if (queue_.empty() || !richnote::sim::default_link_profile(ctx.network).connected)
        return plan_;

    // Effective budget: the metered data budget on cellular, the link
    // capacity on unmetered wifi (wifi "allows more data to deliver",
    // §V-D3) — and never more than the link can move either way.
    const double budget = ctx.metered
                              ? std::min(ctx.data_budget_bytes, ctx.link_capacity_bytes)
                              : ctx.link_capacity_bytes;
    if (budget <= 0.0) return plan_;

    // Effective content utility after aging (§III-A's aging factor).
    auto aged_content_utility = [&](const sched_item& item) {
        if (params_.utility_half_life_sec <= 0) return item.content_utility;
        const double age = std::max(0.0, ctx.now - item.arrived_at);
        return item.content_utility * std::exp2(-age / params_.utility_half_life_sec);
    };

    // WiFi deferral: on a metered link, high-value items may be withheld
    // (empty menu -> level 0 -> stays queued) while their wait budget lasts.
    auto deferred = [&](const sched_item& item) {
        if (params_.wifi_deferral_min_utility <= 0.0 || !ctx.metered) return false;
        if (item.content_utility < params_.wifi_deferral_min_utility) return false;
        return ctx.now - item.arrived_at < params_.wifi_deferral_max_wait_sec;
    };

    // Build the MCKP instance with Lyapunov-adjusted utilities (Eq. 7) into
    // the grow-only scratch arenas. instance_ keeps one slot per historical
    // queue-size peak; only the active prefix [0, n) is rewritten, and any
    // trailing slots present cleared (empty) menus the solver never
    // upgrades. The per-level rho estimates live flat in rho_flat_ with
    // rho_offset_[i] marking item i's first level.
    const std::size_t n = queue_.size();
    if (instance_.size() < n) instance_.resize(n);
    rho_offset_.resize(n);
    aged_uc_.resize(n);
    rho_flat_.clear();
    const auto adjuster = controller_.make_adjuster();
    for (std::size_t i = 0; i < n; ++i) {
        const sched_item& item = queue_[i];
        mckp_item& m = instance_[i];
        m.sizes.clear();
        m.utilities.clear();
        aged_uc_[i] = aged_content_utility(item);
        rho_offset_[i] = rho_flat_.size();
        if (!retry_eligible(item, ctx.now)) continue; // backing off: forced level 0
        if (deferred(item)) {
            ++deferred_item_rounds_;
            continue; // empty menu: forced level 0
        }
        const double item_qs = adjuster.item_queue_term(item.presentations.total_size());
        const std::size_t k = item.presentations.level_count();
        for (level_t j = 1; j <= k; ++j) {
            const double size = item.presentations.size(j);
            const double rho = energy_->estimate_rho(ctx.network, size,
                                                     params_.expected_batch_items);
            rho_flat_.push_back(rho);
            m.sizes.push_back(size);
            m.utilities.push_back(adjuster.level_utility(
                item_qs, rho, aged_uc_[i] * item.presentations.utility(j)));
        }
    }
    for (std::size_t i = n; i < instance_.size(); ++i) {
        instance_[i].sizes.clear();
        instance_[i].utilities.clear();
    }

    const mckp_solution& solution =
        select_presentations_incremental(instance_, budget, params_.mckp, mckp_scratch_);

    // Materialize the plan and sort by descending TRUE utility (Algorithm 2
    // step 1: "sort them in descending order of their utility values").
    for (std::size_t i = 0; i < n; ++i) {
        const level_t level = solution.levels[i];
        if (level == 0) continue;
        sched_item& item = queue_[i];
        note_planned_item(item, level);
        planned_delivery d;
        d.item_id = item.note.id;
        d.level = level;
        d.size_bytes = item.presentations.size(level);
        // The utility actually realized at delivery time reflects aging.
        d.utility = aged_uc_[i] * item.presentations.utility(level);
        d.rho_joules = rho_flat_[rho_offset_[i] + level - 1];
        d.item_total_size = item.presentations.total_size();
        d.note = item.note;
        plan_.push_back(std::move(d));
    }
    std::sort(plan_.begin(), plan_.end(),
              [](const planned_delivery& a, const planned_delivery& b) {
                  if (a.utility != b.utility) return a.utility > b.utility;
                  return a.item_id < b.item_id;
              });

    if (trace_ != nullptr) {
        // One "plan" summary plus one "decision" per selected item, carrying
        // the exact Eq. 7 terms the MCKP maximized: Q(t)*s(i) (item_qs),
        // (P(t)-kappa)*rho(i,j) and V*U(i,j). The terms are recomputed with
        // the same adjuster operations the instance build used, so they sum
        // bit-exactly to the instance utility the solver saw.
        trace_->event(trace_user_, ctx.round, "plan")
            .field("candidates", n)
            .field("selected", plan_.size())
            .field("budget_bytes", budget)
            .field("q_bytes", controller_.queue_backlog())
            .field("p_joules", controller_.energy_credit())
            .field("adjusted_total", solution.total_utility);
        for (std::size_t i = 0; i < n; ++i) {
            const level_t level = solution.levels[i];
            if (level == 0) continue;
            const sched_item& item = queue_[i];
            const double item_qs =
                adjuster.item_queue_term(item.presentations.total_size());
            const double rho = rho_flat_[rho_offset_[i] + level - 1];
            const double true_u = aged_uc_[i] * item.presentations.utility(level);
            trace_->event(trace_user_, ctx.round, "decision")
                .field("item", item.note.id)
                .field("level", level)
                .field("levels", item.presentations.level_count())
                .field("size_bytes", item.presentations.size(level))
                .field("term_queue", item_qs)
                .field("term_energy", adjuster.p_scaled * (rho / adjuster.energy_unit_joules))
                .field("term_value", adjuster.v * true_u)
                .field("adjusted", instance_[i].utilities[level - 1])
                .field("utility", true_u);
        }
    }
    return plan_;
}

scheduler::checkpoint_state richnote_scheduler::checkpoint() const {
    checkpoint_state state = queue_scheduler_base::checkpoint();
    state.lyapunov = controller_.checkpoint();
    state.dropped_low_utility = dropped_low_utility_;
    state.expired_items = expired_items_;
    state.deferred_item_rounds = deferred_item_rounds_;
    return state;
}

void richnote_scheduler::restore(const checkpoint_state& state) {
    queue_scheduler_base::restore(state);
    controller_.restore(state.lyapunov);
    dropped_low_utility_ = state.dropped_low_utility;
    expired_items_ = state.expired_items;
    deferred_item_rounds_ = state.deferred_item_rounds;
}

// ------------------------------------------------------------- direct ----

direct_scheduler::direct_scheduler(params p, const energy::energy_model& energy)
    : params_(p), energy_(&energy), energy_credit_(p.kappa_joules_per_round) {
    RICHNOTE_REQUIRE(p.kappa_joules_per_round >= 0, "kappa must be non-negative");
    RICHNOTE_REQUIRE(p.energy_accrual_rounds >= 1, "accrual cap must be >= 1 round");
}

void direct_scheduler::on_departed(const sched_item& item, double energy_spent) {
    (void)item;
    energy_credit_ = std::max(0.0, energy_credit_ - energy_spent);
}

void direct_scheduler::on_session_overhead(double joules) {
    energy_credit_ = std::max(0.0, energy_credit_ - joules);
}

bool direct_scheduler::allow_delivery(double rho_joules) const noexcept {
    return energy_credit_ >= rho_joules;
}

const std::vector<planned_delivery>& direct_scheduler::plan(const round_context& ctx) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::scheduler_plan);
    trace_round_ = ctx.round;

    // Accrue this round's energy budget, banked up to the cap.
    energy_credit_ = std::min(energy_credit_ + params_.kappa_joules_per_round,
                              params_.kappa_joules_per_round * params_.energy_accrual_rounds);

    plan_.clear();
    if (queue_.empty() || !richnote::sim::default_link_profile(ctx.network).connected)
        return plan_;
    const double budget = ctx.metered
                              ? std::min(ctx.data_budget_bytes, ctx.link_capacity_bytes)
                              : ctx.link_capacity_bytes;
    if (budget <= 0.0) return plan_;

    // Grow-only scratch instance (see richnote_scheduler::plan).
    const std::size_t n = queue_.size();
    if (instance_.size() < n) instance_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const sched_item& item = queue_[i];
        mckp_item_2d& m = instance_[i];
        m.sizes.clear();
        m.energies.clear();
        m.utilities.clear();
        if (!retry_eligible(item, ctx.now)) continue; // backing off: forced level 0
        const std::size_t k = item.presentations.level_count();
        for (level_t j = 1; j <= k; ++j) {
            const double size = item.presentations.size(j);
            m.sizes.push_back(size);
            m.energies.push_back(
                energy_->estimate_rho(ctx.network, size, params_.expected_batch_items));
            m.utilities.push_back(item.utility(j));
        }
    }
    for (std::size_t i = n; i < instance_.size(); ++i) {
        instance_[i].sizes.clear();
        instance_[i].energies.clear();
        instance_[i].utilities.clear();
    }

    const mckp_solution& solution =
        select_presentations_2d(instance_, budget, energy_credit_, params_.mckp, mckp_scratch_);

    for (std::size_t i = 0; i < n; ++i) {
        const level_t level = solution.levels[i];
        if (level == 0) continue;
        sched_item& item = queue_[i];
        note_planned_item(item, level);
        planned_delivery d;
        d.item_id = item.note.id;
        d.level = level;
        d.size_bytes = item.presentations.size(level);
        d.utility = item.utility(level);
        d.rho_joules = instance_[i].energies[level - 1];
        d.item_total_size = item.presentations.total_size();
        d.note = item.note;
        plan_.push_back(std::move(d));
    }
    std::sort(plan_.begin(), plan_.end(),
              [](const planned_delivery& a, const planned_delivery& b) {
                  if (a.utility != b.utility) return a.utility > b.utility;
                  return a.item_id < b.item_id;
              });
    return plan_;
}

scheduler::checkpoint_state direct_scheduler::checkpoint() const {
    checkpoint_state state = queue_scheduler_base::checkpoint();
    state.energy_credit = energy_credit_;
    return state;
}

void direct_scheduler::restore(const checkpoint_state& state) {
    queue_scheduler_base::restore(state);
    energy_credit_ = state.energy_credit;
}

// ---------------------------------------------------------- baselines ----

fixed_level_scheduler::fixed_level_scheduler(level_t fixed_level,
                                             const energy::energy_model& energy)
    : fixed_level_(fixed_level), energy_(&energy) {
    RICHNOTE_REQUIRE(fixed_level >= 1, "baselines deliver at a fixed level >= 1");
}

const std::vector<planned_delivery>& fixed_level_scheduler::plan(const round_context& ctx) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::scheduler_plan);
    trace_round_ = ctx.round;
    plan_.clear();
    if (queue_.empty() || !richnote::sim::default_link_profile(ctx.network).connected)
        return plan_;
    const double budget = ctx.metered
                              ? std::min(ctx.data_budget_bytes, ctx.link_capacity_bytes)
                              : ctx.link_capacity_bytes;
    if (budget <= 0.0) return plan_;

    double planned_bytes = 0.0;
    for (std::size_t pos : delivery_order()) {
        sched_item& item = queue_[pos];
        // Backing-off items are skipped, not head-of-line blocking — even
        // under FIFO: the whole point of the backoff is that a flaky item
        // must not starve the queue behind it between its retries.
        if (!retry_eligible(item, ctx.now)) continue;
        const auto level = static_cast<level_t>(
            std::min<std::size_t>(fixed_level_, item.presentations.level_count()));
        const double size = item.presentations.size(level);
        if (planned_bytes + size > budget) {
            if (head_of_line_blocking()) break;
            continue;
        }
        note_planned_item(item, level);
        planned_delivery d;
        d.item_id = item.note.id;
        d.level = level;
        d.size_bytes = size;
        d.utility = item.utility(level);
        d.rho_joules = energy_->estimate_rho(ctx.network, size);
        d.item_total_size = item.presentations.total_size();
        d.note = item.note;
        planned_bytes += size;
        plan_.push_back(std::move(d));
    }
    return plan_;
}

const std::vector<std::size_t>& fifo_scheduler::delivery_order() {
    // queue_ is insertion-ordered and insertions arrive in timestamp order,
    // so identity order IS delivery-timestamp order. Rebuilt only when the
    // queue changed structurally since the last round.
    if (order_version_ != queue_version_) {
        order_.resize(queue_.size());
        std::iota(order_.begin(), order_.end(), std::size_t{0});
        order_version_ = queue_version_;
    }
    return order_;
}

const std::vector<std::size_t>& util_scheduler::delivery_order() {
    // Item utilities at a fixed level are time-invariant, so the sorted
    // order only goes stale when the queue itself changes.
    if (order_version_ != queue_version_) {
        order_.resize(queue_.size());
        std::iota(order_.begin(), order_.end(), std::size_t{0});
        const level_t level = fixed_level();
        std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
            const auto level_a = static_cast<level_t>(
                std::min<std::size_t>(level, queue_[a].presentations.level_count()));
            const auto level_b = static_cast<level_t>(
                std::min<std::size_t>(level, queue_[b].presentations.level_count()));
            const double ua = queue_[a].utility(level_a);
            const double ub = queue_[b].utility(level_b);
            if (ua != ub) return ua > ub;
            return queue_[a].note.id < queue_[b].note.id;
        });
        order_version_ = queue_version_;
    }
    return order_;
}

} // namespace richnote::core

#include "core/worker_pool.hpp"

#include "common/error.hpp"

namespace richnote::core {

worker_pool::worker_pool(std::size_t threads) : threads_(threads) {
    RICHNOTE_REQUIRE(threads >= 1, "worker pool needs at least one thread");
    workers_.reserve(threads - 1);
    for (std::size_t slot = 1; slot < threads; ++slot) {
        workers_.emplace_back([this, slot] { worker_loop(slot); });
    }
}

worker_pool::~worker_pool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& t : workers_) t.join();
}

void worker_pool::worker_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(std::size_t)>* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [&] { return stopping_ || generation_ != seen; });
            if (stopping_) return;
            seen = generation_;
            job = job_;
        }
        (*job)(slot);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0) work_done_.notify_one();
        }
    }
}

void worker_pool::run(const std::function<void(std::size_t)>& fn) {
    if (threads_ == 1) {
        ++generation_; // no lock needed: nobody else reads it without workers
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        pending_ = threads_ - 1;
        ++generation_;
    }
    work_ready_.notify_all();
    fn(0); // the driver is always worker 0 — one spawn fewer, zero idle cores
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
}

void worker_pool::run_tasks(std::size_t n, const std::function<void(std::size_t)>& fn) {
    run_sharded(n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
}

void worker_pool::run_sharded(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t slots = threads_;
    const std::function<void(std::size_t)> per_slot = [&](std::size_t slot) {
        const auto [lo, hi] = shard_range(n, slot, slots);
        if (lo < hi) fn(lo, hi);
    };
    run(per_slot);
}

} // namespace richnote::core

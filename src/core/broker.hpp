// Per-user broker: the Figure 1 workflow.
//
// Each user is served by one broker that owns the user's scheduler, data-
// budget account, battery and network models. Every round the broker:
//   1. steps the network Markov chain and the battery;
//   2. admits trace arrivals into the scheduling queue (incoming queue ->
//      presentation generation -> utility assignment, §IV);
//   3. replenishes the data budget by theta with rollover (Algorithm 2
//      step 2) and computes e(t) from the battery policy;
//   4. asks the scheduler for a delivery plan and pushes it through the
//      link, deducting data budget and energy per delivery (step 3) and
//      timestamping each delivery by the bytes already sent this round.
//
// Resilience (DESIGN.md "Fault model & recovery"): admission is idempotent
// (replayed publishes are suppressed by id), interrupted transfers charge
// only the bytes actually moved and resume from a per-item high-water mark,
// and the full mutable state can be checkpointed and restored to survive
// injected crash-restart events bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

#include "core/metrics.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "core/utility.hpp"
#include "energy/model.hpp"
#include "faults/fault_plan.hpp"
#include "sim/battery.hpp"
#include "sim/battery_trace.hpp"
#include "sim/network.hpp"
#include "sim/time.hpp"
#include "trace/notification.hpp"

namespace richnote::core {

struct broker_params {
    double budget_per_round_bytes = 0.0; ///< theta (Algorithm 2 step 2)
    richnote::sim::sim_time round = richnote::sim::default_round;
    richnote::sim::energy_budget_policy energy_policy;
    /// Cap on how much unused budget may roll over, expressed in rounds of
    /// theta; 0 disables rollover entirely. The paper lets budget "roll
    /// over in the next round if not used"; the default allows a full
    /// week of accumulation (168 one-hour rounds), so even an 800 KB fixed
    /// presentation can eventually be afforded at a 1 MB/week budget.
    double rollover_rounds = 168.0;
    /// Probability an individual transfer fails mid-flight (cellular drop).
    /// The item STAYS in the scheduling queue and is retried in a later
    /// round. 0 = the paper's lossless setting.
    double transfer_failure_prob = 0.0;
    /// If true, a failed transfer burns the item's full byte size and radio
    /// energy (the historical all-or-nothing accounting). The default
    /// charges only the bytes that actually moved before the cut and lets
    /// the next attempt resume from the high-water mark.
    bool legacy_failure_accounting = false;
    /// Optional deterministic fault plan (blackouts, partial transfers,
    /// brownouts, ...). Not owned; nullptr = no injected faults.
    const richnote::faults::fault_plan* faults = nullptr;
    /// Sizing hint: expected total admissions for this user (the stream
    /// length). Pre-reserves the idempotency set so steady-state admission
    /// never rehashes. 0 = no hint.
    std::size_t expected_admissions = 0;
    /// Optional structured trace sink (obs). Not owned; nullptr (the
    /// default) keeps every emission site to a single null check. The
    /// broker also binds it to the scheduler for decision-level events.
    richnote::obs::trace_sink* trace = nullptr;
    /// Optional service-mode lifecycle tracker (obs/lifecycle.hpp). Not
    /// owned; nullptr (the default) keeps every hook to one null check.
    /// The broker reports attempt/delivered transitions and binds it to
    /// the scheduler for plan/dead-letter ones.
    richnote::obs::lifecycle_tracker* lifecycle = nullptr;
};

/// Snapshot of everything a broker mutates over time. Move-only (owns a
/// cloned battery). Same-seed restore + replay is bit-identical to an
/// uninterrupted run: every randomness consumer (env_rng, network chain)
/// is captured by value.
struct broker_checkpoint {
    std::uint64_t round_index = 0;
    double data_budget = 0.0;
    std::uint64_t failed_transfers = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t crash_restarts = 0;
    std::unordered_set<std::uint64_t> seen_ids;
    std::map<std::uint64_t, double> partial_progress;
    std::vector<trace::notification> pending_feedback;
    richnote::rng env_rng{0};
    richnote::sim::markov_network_model network =
        richnote::sim::markov_network_model::fixed(richnote::sim::net_state::off);
    std::unique_ptr<richnote::sim::battery_source> battery;
    scheduler::checkpoint_state sched;
};

class broker {
public:
    /// `env_seed` seeds this broker's private environment randomness (the
    /// network Markov transitions). Each broker owning its own stream makes
    /// users fully independent — the property §V-C leans on for backend
    /// parallelism — so results are identical no matter how users are
    /// sharded across worker threads.
    broker(trace::user_id user, broker_params params, std::unique_ptr<scheduler> sched,
           const presentation_generator& generator, const content_utility_model& utility,
           const energy::energy_model& energy, richnote::sim::markov_network_model network,
           std::unique_ptr<richnote::sim::battery_source> battery,
           const trace::catalog& catalog, metrics_recorder& metrics,
           std::uint64_t env_seed);

    /// Admit one trace notification (called in timestamp order). Admission
    /// is idempotent: a notification id seen before is suppressed and
    /// counted, so an at-least-once upstream (or an injected duplicate
    /// arrival) cannot double-deliver.
    void admit(const trace::notification& n);

    /// Execute one round starting at `now` (steps 1–4 above).
    void run_round(richnote::sim::sim_time now);

    const scheduler& sched() const noexcept { return *scheduler_; }

    /// Transfers that failed mid-flight so far (see transfer_failure_prob).
    std::uint64_t failed_transfers() const noexcept { return failed_transfers_; }

    /// Replayed publishes suppressed by idempotent admission.
    std::uint64_t duplicates_suppressed() const noexcept { return duplicates_suppressed_; }

    /// Crash-restart events survived (checkpoint + restore round trips).
    std::uint64_t crash_restarts() const noexcept { return crash_restarts_; }

    /// Per-item byte high-water marks of interrupted, not-yet-complete
    /// transfers (item id -> bytes already moved).
    const std::map<std::uint64_t, double>& partial_progress() const noexcept {
        return partial_progress_;
    }

    /// Snapshot the full mutable state (deep copy; the live broker is
    /// untouched).
    broker_checkpoint checkpoint() const;

    /// Replace the mutable state with `cp` (taken from this broker earlier).
    void restore(const broker_checkpoint& cp);

    /// Simulate a broker crash immediately followed by recovery from its
    /// own durable checkpoint: snapshot, restore, count. Because the
    /// checkpoint is lossless this must not perturb subsequent rounds —
    /// the property tests/core/test_broker_resilience.cpp pins down.
    void crash_restart();

    /// Drains the engagement feedback observed since the last call: copies
    /// of delivered notifications the user attended (clicked or hovered).
    /// This is what an online learner may legitimately train on — feedback
    /// exists only for content that was actually delivered.
    std::vector<trace::notification> take_feedback();
    double data_budget() const noexcept { return data_budget_; }
    richnote::sim::net_state network_state() const noexcept { return network_.state(); }
    const richnote::sim::battery_source& battery() const noexcept { return *battery_; }
    trace::user_id user() const noexcept { return user_; }

private:
    trace::user_id user_;
    broker_params params_;
    std::unique_ptr<scheduler> scheduler_;
    const presentation_generator* generator_;
    const content_utility_model* utility_;
    const energy::energy_model* energy_;
    richnote::sim::markov_network_model network_;
    std::unique_ptr<richnote::sim::battery_source> battery_;
    const trace::catalog* catalog_;
    metrics_recorder* metrics_;
    richnote::rng env_rng_;
    double data_budget_ = 0.0;
    std::uint64_t round_index_ = 0; ///< rounds executed; indexes fault queries
    std::uint64_t failed_transfers_ = 0;
    std::uint64_t duplicates_suppressed_ = 0;
    std::uint64_t crash_restarts_ = 0;
    std::unordered_set<std::uint64_t> seen_ids_;          ///< idempotent admission
    std::map<std::uint64_t, double> partial_progress_;    ///< resume high-water marks
    std::vector<trace::notification> pending_feedback_;
};

} // namespace richnote::core

// Round-level telemetry: per-round samples of the control state the
// Lyapunov analysis reasons about — Q(t) (scheduling-queue backlog), P(t)
// (energy credit), B(t) (data budget), battery level and network state —
// for a chosen set of users. §V-D5 argues stability from aggregate
// side-effects; sampling the trajectories shows it directly (Q bounded,
// P oscillating around kappa).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/counters.hpp"
#include "sim/network.hpp"
#include "sim/time.hpp"

namespace richnote::core {

/// One user's control state at one round boundary (sampled after the
/// round's deliveries).
struct round_sample {
    std::uint64_t round = 0;
    std::uint32_t user = 0;
    double queue_items = 0.0;       ///< scheduling-queue length
    double queue_bytes = 0.0;       ///< Q(t) in bytes (sum of s(i))
    double energy_credit = 0.0;     ///< P(t) in joules (RichNote/Direct only)
    double data_budget = 0.0;       ///< B(t) in bytes
    double battery_level = 0.0;     ///< state of charge [0, 1]
    richnote::sim::net_state network = richnote::sim::net_state::off;
    std::uint64_t delivered_so_far = 0;
    /// Fault/recovery counters (cumulative per user up to this round) so the
    /// trajectory CSV shows recovery behaviour alongside Q(t)/P(t). The same
    /// shared block metrics_recorder tallies — copied, not re-derived.
    fault_counters faults;
};

/// Collects samples for a fixed set of users. Thread-safe under user
/// sharding: each user's row vector is only appended by the worker that
/// owns the user (samples are bucketed per user, merged on read).
class telemetry {
public:
    telemetry() = default;
    explicit telemetry(std::vector<std::uint32_t> users);

    bool enabled() const noexcept { return !slots_.empty(); }
    bool watches(std::uint32_t user) const noexcept;

    /// Record one sample (no-op if the user is not watched).
    void record(const round_sample& sample);

    /// All samples ordered by (user, round).
    std::vector<round_sample> samples() const;

    /// Samples of one user ordered by round; empty if not watched.
    const std::vector<round_sample>& of(std::uint32_t user) const;

    /// Writes samples as CSV (header + one row per sample).
    void write_csv(std::ostream& out) const;

    /// Largest Q(t) in bytes seen for the user (stability check).
    double max_queue_bytes(std::uint32_t user) const;

private:
    std::vector<std::uint32_t> users_;
    std::vector<std::vector<round_sample>> slots_; ///< parallel to users_
};

} // namespace richnote::core

// Lyapunov drift-plus-penalty controller (§IV).
//
// Two queues: the real scheduling-queue backlog Q(t) (bytes of pending
// presentations) and the virtual energy queue P(t) that tracks how much
// energy may be spent, targeted at kappa. Minimizing the drift of
//   L(t) = 1/2 (Q(t)^2 + (P(t) - kappa)^2)
// minus V * U_t yields, per round, an MCKP over the adjusted utility
//   U_a(i, j) = Q(t) * s(i) + (P(t) - kappa) * rho(i, j) + V * U(i, j)
// (Eq. 7), where s(i) is the total byte size of ALL presentations of item i
// (delivering an item drops every presentation of it from Q). V trades
// utility against queue backlog; kappa is the per-round energy allowance
// (3 KJ/h in §V-C).
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace richnote::core {

struct lyapunov_params {
    double v = 1000.0;            ///< control knob V (§V-C)
    double kappa = 3000.0;        ///< energy target per round, J (§V-C)
    double initial_energy_credit = 3000.0; ///< P(0)
    /// Unit scales applied inside the adjusted utility. The drift terms
    /// Q(t)*s(i) and (P(t)-kappa)*rho(i,j) are homogeneous of degree 2 in
    /// the byte / joule units, while V*U(i,j) is unit-free; the paper's
    /// V = 1000 only balances the three terms when queue sizes are measured
    /// in megabytes and energy in units of kappa (with raw bytes, Q*s alone
    /// reaches ~1e15 and V becomes irrelevant). queue_unit_bytes defaults
    /// to 1 MB; energy_unit_joules = 0 means "auto": use kappa itself (the
    /// natural scale of the virtual energy queue), falling back to 1 J when
    /// kappa is 0. Set both to 1 for raw-unit behaviour.
    double queue_unit_bytes = 1e6;
    double energy_unit_joules = 0.0;
};

/// Serializable controller state for crash-restart recovery: Q(t) and P(t)
/// are the only mutable state the controller owns.
struct lyapunov_state {
    double queue_backlog = 0.0; ///< Q(t), bytes
    double energy_credit = 0.0; ///< P(t), joules
};

class lyapunov_controller {
public:
    explicit lyapunov_controller(lyapunov_params params = {});

    double queue_backlog() const noexcept { return q_; }     ///< Q(t), bytes
    double energy_credit() const noexcept { return p_; }     ///< P(t), joules
    const lyapunov_params& params() const noexcept { return params_; }

    /// Eq. 7 adjusted utility for delivering an item at some level (j >= 1):
    /// `item_total_size` is s(i) (all presentations), `rho` the level's
    /// estimated energy, `utility` the level's U(i, j). Level 0 has adjusted
    /// utility 0 by definition.
    double adjusted_utility(double item_total_size, double rho, double utility) const noexcept {
        const double qs = (q_ / params_.queue_unit_bytes) *
                          (item_total_size / params_.queue_unit_bytes);
        const double pe = ((p_ - params_.kappa) / params_.energy_unit_joules) *
                          (rho / params_.energy_unit_joules);
        return qs + pe + params_.v * utility;
    }

    /// Snapshot of the Q(t)/P(t)-dependent factors of adjusted_utility(),
    /// taken once per plan() instead of recomputed per item-level. The
    /// hoisted divisions are the exact operations adjusted_utility()
    /// performs, in the same order, so the adjusted values are bit-identical
    /// to calling it directly — this is a pure hot-path hoist.
    struct utility_adjuster {
        double q_scaled = 0.0;        ///< q / queue_unit
        double p_scaled = 0.0;        ///< (p - kappa) / energy_unit
        double queue_unit_bytes = 1.0;
        double energy_unit_joules = 1.0;
        double v = 0.0;

        /// Per-item factor: reuse across the item's levels.
        double item_queue_term(double item_total_size) const noexcept {
            return q_scaled * (item_total_size / queue_unit_bytes);
        }
        /// Eq. 7 for one level given the precomputed item term.
        double level_utility(double item_qs, double rho, double utility) const noexcept {
            return item_qs + p_scaled * (rho / energy_unit_joules) + v * utility;
        }
    };

    utility_adjuster make_adjuster() const noexcept {
        utility_adjuster a;
        a.q_scaled = q_ / params_.queue_unit_bytes;
        a.p_scaled = (p_ - params_.kappa) / params_.energy_unit_joules;
        a.queue_unit_bytes = params_.queue_unit_bytes;
        a.energy_unit_joules = params_.energy_unit_joules;
        a.v = params_.v;
        return a;
    }

    /// Lyapunov function L(t) (reporting / stability tests).
    double lyapunov_value() const noexcept;

    /// New content arrived: nu(t) bytes join the scheduling queue.
    void on_enqueue(double bytes);

    /// An item left the scheduling queue (delivered or dropped): its s(i)
    /// bytes leave Q; `energy_spent` joules leave P. Both floor at 0
    /// (the [.]^+ in Eqs. 4–5).
    void on_departure(double item_total_size, double energy_spent);

    /// Round boundary (Algorithm 2 step 2): add e(t) to P only when
    /// P(t) <= kappa, so the credit never runs far beyond the target.
    void on_round(double replenishment_joules);

    /// Snapshot of the virtual queues for crash-restart recovery.
    lyapunov_state checkpoint() const noexcept { return {q_, p_}; }

    /// Restores a snapshot taken by checkpoint() (amounts must be >= 0).
    void restore(const lyapunov_state& state);

private:
    lyapunov_params params_;
    double q_ = 0.0;
    double p_ = 0.0;
};

} // namespace richnote::core

#include "core/telemetry.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace richnote::core {

telemetry::telemetry(std::vector<std::uint32_t> users) : users_(std::move(users)) {
    std::sort(users_.begin(), users_.end());
    users_.erase(std::unique(users_.begin(), users_.end()), users_.end());
    slots_.resize(users_.size());
}

bool telemetry::watches(std::uint32_t user) const noexcept {
    return std::binary_search(users_.begin(), users_.end(), user);
}

void telemetry::record(const round_sample& sample) {
    const auto it = std::lower_bound(users_.begin(), users_.end(), sample.user);
    if (it == users_.end() || *it != sample.user) return;
    slots_[static_cast<std::size_t>(it - users_.begin())].push_back(sample);
}

std::vector<round_sample> telemetry::samples() const {
    std::vector<round_sample> all;
    for (const auto& slot : slots_) all.insert(all.end(), slot.begin(), slot.end());
    return all;
}

const std::vector<round_sample>& telemetry::of(std::uint32_t user) const {
    const auto it = std::lower_bound(users_.begin(), users_.end(), user);
    RICHNOTE_REQUIRE(it != users_.end() && *it == user, "user is not watched");
    return slots_[static_cast<std::size_t>(it - users_.begin())];
}

void telemetry::write_csv(std::ostream& out) const {
    out << "round,user,queue_items,queue_bytes,energy_credit,data_budget,battery_level,"
           "network,delivered_so_far,faults_so_far,retries_so_far,dead_letters_so_far,"
           "crash_restarts_so_far\n";
    for (const round_sample& s : samples()) {
        out << s.round << ',' << s.user << ',' << s.queue_items << ',' << s.queue_bytes
            << ',' << s.energy_credit << ',' << s.data_budget << ',' << s.battery_level
            << ',' << to_string(s.network) << ',' << s.delivered_so_far << ','
            << s.faults.faults_injected << ',' << s.faults.transfer_retries << ','
            << s.faults.dead_lettered << ',' << s.faults.crash_restarts << '\n';
    }
}

double telemetry::max_queue_bytes(std::uint32_t user) const {
    double best = 0.0;
    for (const round_sample& s : of(user)) best = std::max(best, s.queue_bytes);
    return best;
}

} // namespace richnote::core

#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics_registry.hpp"

namespace richnote::core {

double user_metrics::delivery_ratio() const noexcept {
    return arrived ? static_cast<double>(delivered) / static_cast<double>(arrived) : 0.0;
}

double user_metrics::precision() const noexcept {
    return delivered
               ? static_cast<double>(delivered_before_click) / static_cast<double>(delivered)
               : 0.0;
}

double user_metrics::recall() const noexcept {
    return clicked_total
               ? static_cast<double>(delivered_clicked) / static_cast<double>(clicked_total)
               : 0.0;
}

metrics_recorder::metrics_recorder(std::size_t user_count, std::size_t max_level)
    : users_(user_count), max_level_(max_level) {
    RICHNOTE_REQUIRE(user_count > 0, "metrics need at least one user");
    RICHNOTE_REQUIRE(max_level >= 1, "metrics need at least one presentation level");
    for (auto& u : users_) u.level_counts.assign(max_level + 1, 0);
}

void metrics_recorder::on_arrival(const trace::notification& n) {
    RICHNOTE_REQUIRE(n.recipient < users_.size(), "recipient out of range");
    user_metrics& u = users_[n.recipient];
    ++u.arrived;
    if (n.clicked) ++u.clicked_total;
}

void metrics_recorder::on_delivery(const planned_delivery& d, richnote::sim::sim_time when,
                                   double energy_joules, bool metered, double bytes_moved) {
    RICHNOTE_REQUIRE(d.note.recipient < users_.size(), "recipient out of range");
    RICHNOTE_REQUIRE(d.level >= 1 && d.level <= max_level_,
                     "delivery level out of range");
    if (bytes_moved < 0.0) bytes_moved = d.size_bytes;
    user_metrics& u = users_[d.note.recipient];
    ++u.delivered;
    u.bytes_delivered += bytes_moved;
    if (metered) u.metered_bytes_delivered += bytes_moved;
    u.utility_delivered += d.utility;
    u.energy_joules += energy_joules;
    u.queuing_delay_sec.add(when - d.note.created_at);
    if (d.note.clicked) {
        u.utility_clicked += d.utility;
        ++u.delivered_clicked;
        // "precision as the fraction of delivered notifications (before the
        // recorded click time in the Spotify trace) that are clicked on".
        if (when <= d.note.clicked_at) ++u.delivered_before_click;
    }
    ++u.level_counts[d.level];
}

void metrics_recorder::on_session_overhead(trace::user_id user, double energy_joules) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    users_[user].energy_joules += energy_joules;
}

void metrics_recorder::on_fault(trace::user_id user) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    ++users_[user].faults.faults_injected;
}

void metrics_recorder::on_transfer_interrupted(trace::user_id user, double bytes_moved) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    RICHNOTE_REQUIRE(bytes_moved >= 0.0, "negative partial byte count");
    fault_counters& f = users_[user].faults;
    ++f.transfer_retries;
    f.partial_bytes += bytes_moved;
}

void metrics_recorder::on_dead_letter(trace::user_id user) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    ++users_[user].faults.dead_lettered;
}

void metrics_recorder::on_duplicate_suppressed(trace::user_id user) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    ++users_[user].faults.duplicates_suppressed;
}

void metrics_recorder::on_crash_restart(trace::user_id user) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    ++users_[user].faults.crash_restarts;
}

void metrics_recorder::on_resume(trace::user_id user, double bytes) {
    RICHNOTE_REQUIRE(user < users_.size(), "user out of range");
    RICHNOTE_REQUIRE(bytes >= 0.0, "negative resumed byte count");
    users_[user].faults.resumed_bytes += bytes;
}

const user_metrics& metrics_recorder::user(std::size_t u) const {
    RICHNOTE_REQUIRE(u < users_.size(), "user out of range");
    return users_[u];
}

double metrics_recorder::total_arrived() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += static_cast<double>(u.arrived);
    return total;
}

double metrics_recorder::total_delivered() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += static_cast<double>(u.delivered);
    return total;
}

double metrics_recorder::delivery_ratio() const noexcept {
    const double arrived = total_arrived();
    return arrived > 0 ? total_delivered() / arrived : 0.0;
}

double metrics_recorder::total_bytes_delivered() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += u.bytes_delivered;
    return total;
}

double metrics_recorder::total_metered_bytes() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += u.metered_bytes_delivered;
    return total;
}

double metrics_recorder::recall() const noexcept {
    double clicked = 0;
    double hit = 0;
    for (const auto& u : users_) {
        clicked += static_cast<double>(u.clicked_total);
        hit += static_cast<double>(u.delivered_clicked);
    }
    return clicked > 0 ? hit / clicked : 0.0;
}

double metrics_recorder::precision() const noexcept {
    double delivered = 0;
    double hit = 0;
    for (const auto& u : users_) {
        delivered += static_cast<double>(u.delivered);
        hit += static_cast<double>(u.delivered_before_click);
    }
    return delivered > 0 ? hit / delivered : 0.0;
}

double metrics_recorder::total_utility() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += u.utility_delivered;
    return total;
}

double metrics_recorder::total_utility_clicked() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += u.utility_clicked;
    return total;
}

double metrics_recorder::average_utility_per_delivery() const noexcept {
    const double delivered = total_delivered();
    return delivered > 0 ? total_utility() / delivered : 0.0;
}

double metrics_recorder::total_energy_joules() const noexcept {
    double total = 0;
    for (const auto& u : users_) total += u.energy_joules;
    return total;
}

double metrics_recorder::mean_queuing_delay_sec() const noexcept {
    richnote::running_stats all;
    for (const auto& u : users_) all.merge(u.queuing_delay_sec);
    return all.mean();
}

std::vector<double> metrics_recorder::level_mix() const {
    std::vector<double> mix(max_level_ + 1, 0.0);
    const double arrived = total_arrived();
    if (arrived <= 0) return mix;
    double delivered = 0;
    for (const auto& u : users_) {
        for (std::size_t level = 1; level <= max_level_; ++level) {
            mix[level] += static_cast<double>(u.level_counts[level]) / arrived;
            delivered += static_cast<double>(u.level_counts[level]);
        }
    }
    mix[0] = 1.0 - delivered / arrived; // slot 0: the never-delivered
                                        // fraction ("simply the missing
                                        // fraction in each stack").
    return mix;
}

metrics_recorder::fault_totals metrics_recorder::fault_summary() const noexcept {
    fault_totals t;
    for (const auto& u : users_) t.accumulate(u.faults);
    return t;
}

std::vector<metrics_recorder::user_category_row> metrics_recorder::utility_by_user_category(
    const std::vector<std::uint64_t>& edges) const {
    RICHNOTE_REQUIRE(!edges.empty(), "need at least one category edge");
    RICHNOTE_REQUIRE(std::is_sorted(edges.begin(), edges.end()), "edges must be sorted");

    std::vector<richnote::running_stats> buckets(edges.size() + 1);
    for (const auto& u : users_) {
        std::size_t bucket = edges.size();
        for (std::size_t b = 0; b < edges.size(); ++b) {
            if (u.arrived <= edges[b]) {
                bucket = b;
                break;
            }
        }
        buckets[bucket].add(u.utility_delivered);
    }

    std::vector<user_category_row> rows;
    std::uint64_t lo = 0;
    for (std::size_t b = 0; b <= edges.size(); ++b) {
        user_category_row row;
        std::ostringstream label;
        if (b < edges.size()) {
            label << lo << "-" << edges[b];
            lo = edges[b] + 1;
        } else {
            label << ">" << edges.back();
        }
        row.label = label.str();
        row.users = buckets[b].count();
        row.mean_utility = buckets[b].mean();
        row.stddev_utility = buckets[b].stddev();
        rows.push_back(std::move(row));
    }
    return rows;
}

void export_metrics(const metrics_recorder& metrics, richnote::obs::metrics_registry& registry) {
    registry.count("richnote.delivery.arrived_total",
                   static_cast<std::uint64_t>(metrics.total_arrived()));
    registry.count("richnote.delivery.delivered_total",
                   static_cast<std::uint64_t>(metrics.total_delivered()));
    registry.gauge_set("richnote.delivery.bytes_total", metrics.total_bytes_delivered());
    registry.gauge_set("richnote.delivery.metered_bytes_total", metrics.total_metered_bytes());
    registry.gauge_set("richnote.run.delivery_ratio", metrics.delivery_ratio());
    registry.gauge_set("richnote.run.precision", metrics.precision());
    registry.gauge_set("richnote.run.recall", metrics.recall());
    registry.gauge_set("richnote.run.utility_total", metrics.total_utility());
    registry.gauge_set("richnote.run.utility_clicked_total", metrics.total_utility_clicked());
    registry.gauge_set("richnote.run.energy_joules_total", metrics.total_energy_joules());
    registry.gauge_set("richnote.run.mean_queuing_delay_sec", metrics.mean_queuing_delay_sec());

    const fault_counters f = metrics.fault_summary();
    registry.count("richnote.faults.injected_total", f.faults_injected);
    registry.count("richnote.faults.retries_total", f.transfer_retries);
    registry.count("richnote.faults.dead_letters_total", f.dead_lettered);
    registry.count("richnote.faults.duplicates_suppressed_total", f.duplicates_suppressed);
    registry.count("richnote.faults.crash_restarts_total", f.crash_restarts);
    registry.gauge_set("richnote.faults.partial_bytes_total", f.partial_bytes);
    registry.gauge_set("richnote.faults.resumed_bytes_total", f.resumed_bytes);
}

} // namespace richnote::core

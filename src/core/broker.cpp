#include "core/broker.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/lifecycle.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"

namespace richnote::core {

using richnote::sim::net_state;
using richnote::sim::sim_time;

broker::broker(trace::user_id user, broker_params params, std::unique_ptr<scheduler> sched,
               const presentation_generator& generator, const content_utility_model& utility,
               const energy::energy_model& energy,
               richnote::sim::markov_network_model network,
               std::unique_ptr<richnote::sim::battery_source> battery,
               const trace::catalog& catalog, metrics_recorder& metrics,
               std::uint64_t env_seed)
    : user_(user),
      params_(params),
      scheduler_(std::move(sched)),
      generator_(&generator),
      utility_(&utility),
      energy_(&energy),
      network_(std::move(network)),
      battery_(std::move(battery)),
      catalog_(&catalog),
      metrics_(&metrics),
      env_rng_(env_seed) {
    RICHNOTE_REQUIRE(scheduler_ != nullptr, "broker needs a scheduler");
    RICHNOTE_REQUIRE(battery_ != nullptr, "broker needs a battery source");
    RICHNOTE_REQUIRE(params_.budget_per_round_bytes >= 0, "theta must be non-negative");
    RICHNOTE_REQUIRE(params_.round > 0, "round length must be positive");
    RICHNOTE_REQUIRE(params_.transfer_failure_prob >= 0.0 &&
                         params_.transfer_failure_prob <= 1.0,
                     "failure probability must be in [0,1]");
    RICHNOTE_REQUIRE(!(params_.legacy_failure_accounting && params_.faults != nullptr),
                     "legacy all-or-nothing accounting cannot be combined with a fault plan");
    if (params_.expected_admissions > 0) seen_ids_.reserve(params_.expected_admissions);
    if (params_.trace != nullptr) scheduler_->bind_trace(params_.trace, user_);
    if (params_.lifecycle != nullptr) scheduler_->bind_lifecycle(params_.lifecycle);
}

std::vector<trace::notification> broker::take_feedback() {
    std::vector<trace::notification> out;
    out.swap(pending_feedback_);
    return out;
}

void broker::admit(const trace::notification& n) {
    RICHNOTE_REQUIRE(n.recipient == user_, "notification for a different user");
    if (!seen_ids_.insert(n.id).second) {
        // Idempotent admission: an at-least-once upstream (or an injected
        // duplicate arrival) re-publishing an id must not enqueue it twice.
        ++duplicates_suppressed_;
        metrics_->on_duplicate_suppressed(user_);
        if (params_.trace != nullptr) {
            params_.trace->event(user_, round_index_, "duplicate").field("item", n.id);
        }
        return;
    }
    metrics_->on_arrival(n);

    sched_item item;
    item.note = n;
    item.content_utility = utility_->content_utility(n);
    const double full_duration = catalog_->track_at(n.track).duration_sec;
    item.presentations = generator_->generate_for_item(n.track, full_duration);
    item.arrived_at = n.created_at;
    scheduler_->enqueue(std::move(item));
}

broker_checkpoint broker::checkpoint() const {
    broker_checkpoint cp;
    cp.round_index = round_index_;
    cp.data_budget = data_budget_;
    cp.failed_transfers = failed_transfers_;
    cp.duplicates_suppressed = duplicates_suppressed_;
    cp.crash_restarts = crash_restarts_;
    cp.seen_ids = seen_ids_;
    cp.partial_progress = partial_progress_;
    cp.pending_feedback = pending_feedback_;
    cp.env_rng = env_rng_;
    cp.network = network_;
    cp.battery = battery_->clone();
    cp.sched = scheduler_->checkpoint();
    return cp;
}

void broker::restore(const broker_checkpoint& cp) {
    RICHNOTE_REQUIRE(cp.battery != nullptr, "checkpoint is missing battery state");
    round_index_ = cp.round_index;
    data_budget_ = cp.data_budget;
    failed_transfers_ = cp.failed_transfers;
    duplicates_suppressed_ = cp.duplicates_suppressed;
    crash_restarts_ = cp.crash_restarts;
    seen_ids_ = cp.seen_ids;
    partial_progress_ = cp.partial_progress;
    pending_feedback_ = cp.pending_feedback;
    env_rng_ = cp.env_rng;
    network_ = cp.network;
    battery_ = cp.battery->clone();
    scheduler_->restore(cp.sched);
}

void broker::crash_restart() {
    const broker_checkpoint cp = checkpoint();
    restore(cp);
    ++crash_restarts_;
    metrics_->on_crash_restart(user_);
}

void broker::run_round(sim_time now) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::broker_round);
    const std::uint64_t round = round_index_++;
    const richnote::faults::fault_plan* faults = params_.faults;
    richnote::obs::trace_sink* trace = params_.trace;

    // Injected crash: the broker dies and comes back from its checkpoint
    // before serving the round. Lossless by construction
    // (test_broker_resilience).
    if (faults != nullptr && faults->crash_restart(user_, round)) {
        crash_restart();
        if (trace != nullptr) trace->event(user_, round, "crash_restart");
    }

    // 1. Environment evolves (driven by this broker's private stream). The
    // chain always steps — a blackout grounds the radio for the round but
    // must not shift the RNG stream of later rounds.
    const net_state chain_state = network_.step(env_rng_);
    battery_->step(now, params_.round, 0.0);

    const bool blackout = faults != nullptr && faults->blackout(user_, round);
    const bool brownout = faults != nullptr && faults->brownout(user_, round);
    if (blackout) metrics_->on_fault(user_);
    if (brownout) metrics_->on_fault(user_);
    if (trace != nullptr && (blackout || brownout)) {
        trace->event(user_, round, "fault")
            .field("blackout", blackout)
            .field("brownout", brownout);
    }
    const net_state state = blackout ? net_state::off : chain_state;

    // 3. Budget replenishment with capped rollover; a battery brownout
    // suspends the energy replenishment e(t) for the round.
    data_budget_ = std::min(data_budget_ + params_.budget_per_round_bytes,
                            params_.budget_per_round_bytes *
                                std::max(1.0, params_.rollover_rounds));
    const double replenishment =
        brownout ? 0.0 : params_.energy_policy.replenishment(*battery_);

    const richnote::sim::link_profile link = richnote::sim::default_link_profile(state);
    round_context ctx;
    ctx.now = now;
    ctx.round = round;
    ctx.data_budget_bytes = data_budget_;
    ctx.network = state;
    ctx.metered = link.metered;
    ctx.link_capacity_bytes = link.bytes_per_second * params_.round;
    ctx.energy_replenishment = replenishment;

    // 4. Plan and deliver. The plan references the scheduler's reused
    // buffer; it stays valid through delivery (on_delivered /
    // on_transfer_failed only touch the queue) and is never copied.
    const std::vector<planned_delivery>& plan = scheduler_->plan(ctx);
    if (plan.empty()) return;

    double sent_bytes = 0.0;  ///< bytes actually moved this round
    double charged = 0.0;     ///< per-item energy already charged this round
    std::size_t sent_items = 0;
    for (const planned_delivery& d : plan) {
        if (!link.connected) break;

        // Resume support: a transfer interrupted in an earlier round only
        // needs its remaining bytes; link capacity, data budget and energy
        // are all gated on the remainder, not the full size.
        const auto prog = partial_progress_.find(d.item_id);
        const double already =
            (!params_.legacy_failure_accounting && prog != partial_progress_.end())
                ? prog->second
                : 0.0;
        const double remaining = std::max(0.0, d.size_bytes - already);
        const double rho_remaining =
            d.size_bytes > 0.0 ? d.rho_joules * (remaining / d.size_bytes) : d.rho_joules;

        if (sent_bytes + remaining > ctx.link_capacity_bytes) break;
        if (ctx.metered && remaining > data_budget_) break;
        // Energy-gated items are skipped, not head-of-line blocking: a rich
        // presentation whose rho exceeds the remaining credit must not
        // starve the cheap metadata deliveries behind it in the plan.
        if (!scheduler_->allow_delivery(rho_remaining)) continue;

        // Drawn in the same stream position as always so the lossless
        // default run stays bit-identical across accounting modes.
        const bool cut_by_rng = params_.transfer_failure_prob > 0.0 &&
                                env_rng_.bernoulli(params_.transfer_failure_prob);

        if (params_.legacy_failure_accounting && cut_by_rng) {
            // Historical all-or-nothing accounting: the full byte size and
            // radio energy are burned, nothing is resumable.
            sent_bytes += remaining;
            ++sent_items;
            charged += d.rho_joules;
            if (ctx.metered) data_budget_ -= remaining;
            ++failed_transfers_;
            metrics_->on_session_overhead(user_, d.rho_joules);
            battery_->drain(d.rho_joules);
            if (params_.lifecycle != nullptr)
                params_.lifecycle->on_attempt(d.item_id, round);
            if (scheduler_->on_transfer_failed(d.item_id, now))
                metrics_->on_dead_letter(user_);
            continue;
        }

        // How far does this attempt get? 1.0 = completes. The injected
        // flaky-link fraction and the legacy RNG drop compose by taking
        // whichever cuts earlier.
        double fraction = 1.0;
        if (faults != nullptr)
            fraction = faults->transfer_fraction(user_, round, d.item_id);
        if (cut_by_rng) fraction = std::min(fraction, env_rng_.uniform());

        const double moved = remaining * fraction;
        const double rho_share =
            d.size_bytes > 0.0 ? d.rho_joules * (moved / d.size_bytes)
                               : d.rho_joules * fraction;
        sent_bytes += moved;
        ++sent_items;
        charged += rho_share;
        if (ctx.metered) data_budget_ -= moved;
        battery_->drain(rho_share);

        if (fraction < 1.0) {
            // Interrupted mid-flight: charge only the bytes and energy that
            // actually moved, remember the high-water mark so the next
            // attempt resumes instead of restarting, and let the scheduler
            // apply its retry budget / backoff.
            if (trace != nullptr) {
                trace->event(user_, round, "transfer_cut")
                    .field("item", d.item_id)
                    .field("moved_bytes", moved)
                    .field("high_water_bytes", already + moved)
                    .field("fraction", fraction);
            }
            partial_progress_[d.item_id] = already + moved;
            ++failed_transfers_;
            if (params_.lifecycle != nullptr)
                params_.lifecycle->on_attempt(d.item_id, round);
            metrics_->on_transfer_interrupted(user_, moved);
            metrics_->on_session_overhead(user_, rho_share);
            scheduler_->on_session_overhead(rho_share);
            if (scheduler_->on_transfer_failed(d.item_id, now)) {
                partial_progress_.erase(d.item_id);
                metrics_->on_dead_letter(user_);
            }
            continue;
        }

        // Completed — possibly finishing a transfer earlier rounds started.
        if (already > 0.0) {
            metrics_->on_resume(user_, already);
            partial_progress_.erase(d.item_id);
        }
        // Delivery timestamp: when the last byte of this item crosses the
        // link, assuming back-to-back transmission from the round start.
        const sim_time when = now + sent_bytes / link.bytes_per_second;
        if (trace != nullptr) {
            trace->event(user_, round, "deliver")
                .field("item", d.item_id)
                .field("level", d.level)
                .field("bytes", moved)
                .field("resumed_bytes", already)
                .field("rho_joules", rho_share)
                .field("utility", d.utility)
                .field("delay_sec", when - d.note.created_at);
        }
        metrics_->on_delivery(d, when, rho_share, ctx.metered, moved);
        scheduler_->on_delivered(d.item_id, rho_share);
        if (params_.lifecycle != nullptr)
            params_.lifecycle->on_delivered(d.item_id, round);
        // Engagement feedback becomes observable once the user sees the
        // notification; unattended deliveries produce no signal.
        if (d.note.attended) pending_feedback_.push_back(d.note);
    }

    if (sent_items > 0) {
        // The per-item rho estimates amortize the radio session overhead
        // over an assumed batch; account the difference between the actual
        // session cost and what was already charged per item.
        const double actual = energy_->session_joules(state, sent_bytes, sent_items);
        const double overhead = actual - charged;
        if (overhead > 0.0) {
            metrics_->on_session_overhead(user_, overhead);
            battery_->drain(overhead);
            scheduler_->on_session_overhead(overhead);
        }
    }

    if (trace != nullptr) {
        trace->event(user_, round, "round")
            .field("planned", plan.size())
            .field("sent_items", sent_items)
            .field("sent_bytes", sent_bytes)
            .field("data_budget", data_budget_)
            .field("network", richnote::sim::to_string(state));
    }
}

} // namespace richnote::core

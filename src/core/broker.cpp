#include "core/broker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace richnote::core {

using richnote::sim::net_state;
using richnote::sim::sim_time;

broker::broker(trace::user_id user, broker_params params, std::unique_ptr<scheduler> sched,
               const presentation_generator& generator, const content_utility_model& utility,
               const energy::energy_model& energy,
               richnote::sim::markov_network_model network,
               std::unique_ptr<richnote::sim::battery_source> battery,
               const trace::catalog& catalog, metrics_recorder& metrics,
               std::uint64_t env_seed)
    : user_(user),
      params_(params),
      scheduler_(std::move(sched)),
      generator_(&generator),
      utility_(&utility),
      energy_(&energy),
      network_(std::move(network)),
      battery_(std::move(battery)),
      catalog_(&catalog),
      metrics_(&metrics),
      env_rng_(env_seed) {
    RICHNOTE_REQUIRE(scheduler_ != nullptr, "broker needs a scheduler");
    RICHNOTE_REQUIRE(battery_ != nullptr, "broker needs a battery source");
    RICHNOTE_REQUIRE(params_.budget_per_round_bytes >= 0, "theta must be non-negative");
    RICHNOTE_REQUIRE(params_.round > 0, "round length must be positive");
    RICHNOTE_REQUIRE(params_.transfer_failure_prob >= 0.0 &&
                         params_.transfer_failure_prob <= 1.0,
                     "failure probability must be in [0,1]");
}

std::vector<trace::notification> broker::take_feedback() {
    std::vector<trace::notification> out;
    out.swap(pending_feedback_);
    return out;
}

void broker::admit(const trace::notification& n) {
    RICHNOTE_REQUIRE(n.recipient == user_, "notification for a different user");
    metrics_->on_arrival(n);

    sched_item item;
    item.note = n;
    item.content_utility = utility_->content_utility(n);
    const double full_duration = catalog_->track_at(n.track).duration_sec;
    item.presentations = generator_->generate(full_duration);
    item.arrived_at = n.created_at;
    scheduler_->enqueue(std::move(item));
}

void broker::run_round(sim_time now) {
    // 1. Environment evolves (driven by this broker's private stream).
    const net_state state = network_.step(env_rng_);
    battery_->step(now, params_.round, 0.0);

    // 3. Budget replenishment with capped rollover.
    data_budget_ = std::min(data_budget_ + params_.budget_per_round_bytes,
                            params_.budget_per_round_bytes *
                                std::max(1.0, params_.rollover_rounds));
    const double replenishment = params_.energy_policy.replenishment(*battery_);

    const richnote::sim::link_profile link = richnote::sim::default_link_profile(state);
    round_context ctx;
    ctx.now = now;
    ctx.data_budget_bytes = data_budget_;
    ctx.network = state;
    ctx.metered = link.metered;
    ctx.link_capacity_bytes = link.bytes_per_second * params_.round;
    ctx.energy_replenishment = replenishment;

    // 4. Plan and deliver.
    const std::vector<planned_delivery> plan = scheduler_->plan(ctx);
    if (plan.empty()) return;

    double sent_bytes = 0.0;
    std::size_t sent_items = 0;
    std::vector<const planned_delivery*> sent;
    sent.reserve(plan.size());
    for (const planned_delivery& d : plan) {
        if (!link.connected) break;
        if (sent_bytes + d.size_bytes > ctx.link_capacity_bytes) break;
        if (ctx.metered && d.size_bytes > data_budget_) break;
        // Energy-gated items are skipped, not head-of-line blocking: a rich
        // presentation whose rho exceeds the remaining credit must not
        // starve the cheap metadata deliveries behind it in the plan.
        if (!scheduler_->allow_delivery(d.rho_joules)) continue;

        sent.push_back(&d);
        sent_bytes += d.size_bytes;
        ++sent_items;
        if (ctx.metered) data_budget_ -= d.size_bytes;

        if (params_.transfer_failure_prob > 0.0 &&
            env_rng_.bernoulli(params_.transfer_failure_prob)) {
            // Mid-flight drop: bytes and radio energy are gone, but the
            // item is NOT delivered and stays queued for a later retry.
            ++failed_transfers_;
            metrics_->on_session_overhead(user_, d.rho_joules);
            battery_->drain(d.rho_joules);
            continue;
        }

        // Delivery timestamp: when the last byte of this item crosses the
        // link, assuming back-to-back transmission from the round start.
        const sim_time when = now + sent_bytes / link.bytes_per_second;
        metrics_->on_delivery(d, when, d.rho_joules, ctx.metered);
        battery_->drain(d.rho_joules);
        scheduler_->on_delivered(d.item_id, d.rho_joules);
        // Engagement feedback becomes observable once the user sees the
        // notification; unattended deliveries produce no signal.
        if (d.note.attended) pending_feedback_.push_back(d.note);
    }

    if (sent_items > 0) {
        // The per-item rho estimates amortize the radio session overhead
        // over an assumed batch; account the difference between the actual
        // session cost and what was already charged per item.
        const double actual = energy_->session_joules(state, sent_bytes, sent_items);
        double charged = 0.0;
        for (const planned_delivery* d : sent) charged += d->rho_joules;
        const double overhead = actual - charged;
        if (overhead > 0.0) {
            metrics_->on_session_overhead(user_, overhead);
            battery_->drain(overhead);
            scheduler_->on_session_overhead(overhead);
        }
    }
}

} // namespace richnote::core

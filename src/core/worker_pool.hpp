// Persistent, topology-aware worker pool for the sharded round loop
// (DESIGN.md §11).
//
// The historical parallel round loop spawned and joined a fresh
// std::vector<std::thread> every round — at service cadence that is a
// thread create/destroy storm costing far more than the round body itself
// for large fleets of mostly-idle users. This pool creates its threads
// ONCE; each round the driver hands every worker the same callable and a
// worker index, and the workers process their FIXED contiguous user shard
// (the same `n*w/W .. n*(w+1)/W` split the spawn-per-round loop used, so
// outputs are bit-identical by construction). Pinning worker w to shard w
// for the lifetime of the pool keeps each shard's broker state hot in the
// core that served it last round — the "topology-aware" part; per-shard
// scratch (drained admission slices, due buffers) lives with the shard and
// is reused across rounds.
//
// Dispatch is a generation-counter handoff under one mutex: the driver
// publishes the callable, bumps the generation and wakes everyone; workers
// run their slot and count down a pending counter whose zero-crossing wakes
// the driver. All ~microsecond-scale, negligible against even a 2000-user
// round, and every transition is mutex-ordered so the pool is clean under
// TSan.
//
// A pool of T threads spawns T-1 workers: slot 0 always runs on the
// calling (driver) thread, so `worker_pool(1)` degenerates to a plain
// inline call with zero threads and zero synchronization — the sequential
// batch path stays exactly what it was.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace richnote::core {

class worker_pool {
public:
    /// Spawns `threads - 1` persistent workers (>= 1 required; 1 = fully
    /// inline, no threads at all).
    explicit worker_pool(std::size_t threads);
    ~worker_pool();

    worker_pool(const worker_pool&) = delete;
    worker_pool& operator=(const worker_pool&) = delete;

    std::size_t threads() const noexcept { return threads_; }

    /// Runs `fn(w)` for every worker slot w in [0, threads()): slot 0 on
    /// the calling thread, the rest on the pinned workers. Returns when all
    /// slots finished. The callable must partition its own work by slot
    /// (see shard_range). Not reentrant.
    void run(const std::function<void(std::size_t)>& fn);

    /// Convenience: runs `fn(lo, hi)` over the contiguous shard of [0, n)
    /// owned by each slot — the exact split the historical per-round spawn
    /// used, so any output that was bit-identical across thread counts
    /// stays bit-identical.
    void run_sharded(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

    /// Convenience for independent task fan-out (the eval harness's replica
    /// waves): runs `fn(i)` once for every i in [0, n), statically sharded
    /// like run_sharded. Callers that store result i into slot i of a
    /// pre-sized buffer get output independent of the thread count for free.
    void run_tasks(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Slot w's contiguous half-open range of [0, n).
    static std::pair<std::size_t, std::size_t> shard_range(std::size_t n, std::size_t slot,
                                                           std::size_t slots) noexcept {
        return {n * slot / slots, n * (slot + 1) / slots};
    }

    /// Rounds dispatched so far (diagnostics / tests).
    std::uint64_t rounds_dispatched() const noexcept { return generation_; }

private:
    void worker_loop(std::size_t slot);

    std::size_t threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;
    const std::function<void(std::size_t)>* job_ = nullptr;
    std::uint64_t generation_ = 0; ///< bumped per run(); workers chase it
    std::size_t pending_ = 0;      ///< workers still inside the current job
    bool stopping_ = false;
};

} // namespace richnote::core

#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/worker_pool.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/progress.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"

namespace richnote::core {

using richnote::sim::sim_time;

const char* to_string(scheduler_kind kind) noexcept {
    switch (kind) {
        case scheduler_kind::richnote: return "RichNote";
        case scheduler_kind::fifo: return "FIFO";
        case scheduler_kind::util: return "UTIL";
        case scheduler_kind::direct: return "Direct";
    }
    return "?";
}

experiment_setup::experiment_setup(const options& opts) : opts_(opts) {
    world_ = std::make_unique<trace::workload>(opts.workload, opts.seed);

    if (opts.oracle_utility) {
        model_ = std::make_shared<oracle_content_utility>(world_->clicks());
    } else if (!opts.model_file.empty()) {
        auto forest = std::make_shared<ml::random_forest>();
        forest->load_file(opts.model_file);
        model_ = std::make_shared<forest_content_utility>(std::move(forest));
    } else {
        ml::dataset full = make_training_set(world_->notifications());
        RICHNOTE_REQUIRE(!full.empty(), "trace produced no attended notifications");
        if (opts.max_training_rows > 0 && full.size() > opts.max_training_rows) {
            // Deterministic subsample keeps forest training tractable on
            // large traces without changing the learned signal much.
            const auto [train, rest] = full.train_test_split(
                1.0 - static_cast<double>(opts.max_training_rows) /
                          static_cast<double>(full.size()),
                opts.seed ^ 0xf0f0f0f0ULL);
            (void)rest;
            full = train;
        }
        auto forest = std::make_shared<ml::random_forest>();
        if (opts.calibrate_utility) {
            // Hold out 25% of the rows for calibration; train on the rest.
            const auto [train, held_out] =
                full.train_test_split(0.25, opts.seed ^ 0x5151ULL);
            forest->fit(train, opts.forest, opts.seed ^ 0xabcdef12ULL);
            std::vector<double> scores;
            std::vector<int> labels;
            scores.reserve(held_out.size());
            for (std::size_t r = 0; r < held_out.size(); ++r) {
                scores.push_back(forest->predict_proba(held_out.row(r)));
                labels.push_back(held_out.label(r));
            }
            ml::platt_calibrator calibrator;
            calibrator.fit(scores, labels);
            model_ = std::make_shared<calibrated_content_utility>(
                std::make_shared<forest_content_utility>(std::move(forest)),
                std::move(calibrator));
        } else {
            forest->fit(full, opts.forest, opts.seed ^ 0xabcdef12ULL);
            model_ = std::make_shared<forest_content_utility>(std::move(forest));
        }
    }
    cached_ = std::make_unique<cached_content_utility>(world_->notifications(), *model_);
}

std::vector<std::uint64_t> experiment_setup::default_category_edges() const {
    // Quartile-ish edges over the per-user arrived counts.
    std::vector<double> counts;
    counts.reserve(world_->user_count());
    for (const auto& stream : world_->notifications().per_user)
        counts.push_back(static_cast<double>(stream.size()));
    std::sort(counts.begin(), counts.end());
    auto at = [&](double q) {
        return static_cast<std::uint64_t>(
            counts[static_cast<std::size_t>(q * static_cast<double>(counts.size() - 1))]);
    };
    std::vector<std::uint64_t> edges = {at(0.25), at(0.5), at(0.75)};
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

double round_budget_bytes(const experiment_params& params) noexcept {
    const double rounds_per_week = richnote::sim::weeks / params.round;
    return params.weekly_budget_mb * 1e6 / rounds_per_week;
}

std::unique_ptr<scheduler> make_scheduler(const experiment_params& params,
                                          const energy::energy_model& energy) {
    std::unique_ptr<scheduler> sched;
    switch (params.kind) {
        case scheduler_kind::richnote: {
            richnote_scheduler::params rp;
            rp.lyapunov = params.lyapunov;
            rp.mckp = params.mckp;
            rp.min_content_utility = params.min_content_utility;
            rp.utility_half_life_sec = params.utility_half_life_sec;
            rp.wifi_deferral_min_utility = params.wifi_deferral_min_utility;
            rp.wifi_deferral_max_wait_sec = params.wifi_deferral_max_wait_sec;
            sched = std::make_unique<richnote_scheduler>(rp, energy);
            break;
        }
        case scheduler_kind::fifo:
            sched = std::make_unique<fifo_scheduler>(params.fixed_level, energy);
            break;
        case scheduler_kind::util:
            sched = std::make_unique<util_scheduler>(params.fixed_level, energy);
            break;
        case scheduler_kind::direct: {
            direct_scheduler::params dp;
            dp.kappa_joules_per_round = params.lyapunov.kappa;
            dp.mckp = params.mckp;
            sched = std::make_unique<direct_scheduler>(dp, energy);
            break;
        }
    }
    sched->set_retry_policy(params.retry);
    return sched;
}

broker make_user_broker(const broker_build_context& ctx, trace::user_id u,
                        std::size_t expected_admissions) {
    const experiment_params& params = *ctx.params;
    auto sched = make_scheduler(params, *ctx.energy);

    broker_params bp;
    bp.budget_per_round_bytes = ctx.theta;
    bp.round = params.round;
    bp.energy_policy = params.energy_policy;
    bp.rollover_rounds = params.rollover_rounds;
    bp.transfer_failure_prob = params.transfer_failure_prob;
    bp.legacy_failure_accounting = params.legacy_failure_accounting;
    bp.faults = ctx.faults;
    bp.expected_admissions = expected_admissions;
    bp.trace = params.trace;
    bp.lifecycle = params.lifecycle;

    auto network = params.wifi_enabled
                       ? richnote::sim::markov_network_model::with_wifi()
                       : richnote::sim::markov_network_model::cellular_with_coverage(
                             params.cellular_coverage);
    // Per-user seeds derived by hashing (run seed, user id): broker
    // construction and stepping never touch shared randomness, the
    // precondition for the sharded round loop.
    const std::uint64_t user_seed = richnote::mix64(params.seed ^ (0x9e37ULL + u));
    richnote::rng battery_gen(richnote::mix64(user_seed ^ 0xbeefULL));
    std::unique_ptr<richnote::sim::battery_source> battery;
    if (params.battery_traces) {
        // Paper mode: replay a timestamped battery-status trace per user
        // (here synthesized once, then treated as an exogenous recording).
        battery = std::make_unique<richnote::sim::traced_battery>(
            richnote::sim::battery_trace::synthesize(params.battery, ctx.battery_horizon,
                                                     params.round, battery_gen));
    } else {
        battery = std::make_unique<richnote::sim::battery_model>(params.battery, battery_gen);
    }

    return broker(u, bp, std::move(sched), *ctx.generator, *ctx.utility, *ctx.energy,
                  std::move(network), std::move(battery), *ctx.catalog, *ctx.metrics,
                  user_seed);
}

experiment_result run_experiment(const experiment_setup& setup,
                                 const experiment_params& params) {
    RICHNOTE_REQUIRE(params.weekly_budget_mb > 0, "budget must be positive");
    const trace::workload& world = setup.world();
    RICHNOTE_REQUIRE(params.trace == nullptr ||
                         params.trace->user_count() >= world.user_count(),
                     "trace sink is sized for fewer users than the workload");

    const audio_preview_generator base_generator(params.presentation);
    // Pre-generate the presentation set of every distinct track duration:
    // admission then pays a hash lookup + copy instead of re-running
    // candidate generation and Pareto pruning per notification.
    std::vector<double> track_durations;
    track_durations.reserve(world.catalog().track_count());
    for (const auto& t : world.catalog().tracks()) track_durations.push_back(t.duration_sec);
    const memoized_presentation_generator generator(base_generator, track_durations);
    const energy::energy_model energy;

    // theta: the per-round slice of the weekly budget (§V-C "budget per
    // week" with 1-hour rounds).
    const double theta = round_budget_bytes(params);

    const std::size_t max_level = params.presentation.preview_durations_sec.size() + 1;
    metrics_recorder metrics(world.user_count(), max_level);

    // Online-learning mode replaces the offline-trained utility model with
    // a cold-start learner fed from delivery feedback at round boundaries.
    std::unique_ptr<online_content_utility> online_model;
    if (params.online_learning) {
        auto online_params = params.online;
        online_params.seed ^= params.seed;
        online_model = std::make_unique<online_content_utility>(online_params);
    }
    const content_utility_model& utility_model =
        online_model ? static_cast<const content_utility_model&>(*online_model)
                     : setup.utility();

    // Deterministic fault schedule shared (read-only) by every broker; an
    // all-zero plan is inert and the brokers get no pointer at all, so the
    // default run takes exactly the historical code paths.
    const richnote::faults::fault_plan fault_schedule(params.faults);
    const richnote::faults::fault_plan* fplan =
        fault_schedule.enabled() ? &fault_schedule : nullptr;

    // Build one broker per user (shared construction path with the service).
    broker_build_context ctx;
    ctx.params = &params;
    ctx.generator = &generator;
    ctx.utility = &utility_model;
    ctx.energy = &energy;
    ctx.catalog = &world.catalog();
    ctx.metrics = &metrics;
    ctx.faults = fplan;
    ctx.theta = theta;
    ctx.battery_horizon = world.params().horizon + params.round;
    std::vector<broker> brokers;
    brokers.reserve(world.user_count());
    for (trace::user_id u = 0; u < world.user_count(); ++u) {
        brokers.push_back(
            make_user_broker(ctx, u, world.notifications().per_user[u].size()));
    }

    // Replay: periodic rounds on the event simulator; each tick admits the
    // arrivals whose timestamps have passed, then runs every broker's round.
    const sim_time horizon = world.params().horizon;
    const auto total_rounds =
        static_cast<std::uint64_t>(std::ceil(horizon / params.round)) + 1;

    RICHNOTE_REQUIRE(params.batch_topic_round_multiplier >= 1,
                     "topic round multiplier must be >= 1");
    // Per-topic admission cadence (§II): split each user's stream into the
    // fast (friend-feed) and batch (album/playlist) indices once.
    std::vector<std::vector<std::size_t>> fast_index(world.user_count());
    std::vector<std::vector<std::size_t>> batch_index(world.user_count());
    for (trace::user_id u = 0; u < world.user_count(); ++u) {
        const auto& stream = world.notifications().per_user[u];
        for (std::size_t i = 0; i < stream.size(); ++i) {
            (stream[i].type == trace::notification_type::friend_feed ? fast_index
                                                                     : batch_index)[u]
                .push_back(i);
        }
    }

    RICHNOTE_REQUIRE(params.worker_threads >= 1, "need at least one worker thread");
    auto trajectories = std::make_shared<telemetry>(params.telemetry_users);
    const bool telemetry_enabled = trajectories->enabled();
    std::vector<std::size_t> fast_cursor(world.user_count(), 0);
    std::vector<std::size_t> batch_cursor(world.user_count(), 0);
    // Timestamp of each user's next pending arrival per topic class (+inf
    // when drained). A steady-state round checks two contiguous doubles per
    // user instead of chasing the per-user index vectors, which is most of
    // the admission bookkeeping cost once queues drain.
    constexpr double never = std::numeric_limits<double>::infinity();
    std::vector<double> fast_next(world.user_count(), never);
    std::vector<double> batch_next(world.user_count(), never);
    for (trace::user_id u = 0; u < world.user_count(); ++u) {
        const auto& stream = world.notifications().per_user[u];
        if (!fast_index[u].empty()) fast_next[u] = stream[fast_index[u][0]].created_at;
        if (!batch_index[u].empty()) batch_next[u] = stream[batch_index[u][0]].created_at;
    }
    // Per-user due-arrival buffers, hoisted out of the round loop so a
    // steady-state tick reuses their capacity instead of allocating one
    // vector per user per round. Per-user (not per-worker) keeps them
    // data-race-free under any sharding.
    std::vector<std::vector<std::size_t>> due_buffer(world.user_count());

    // Live-progress publication (expo server / tests). Runs in the
    // single-threaded between-rounds section; wall-clock throughput feeds
    // only the live view, never a deterministic output.
    const auto replay_start = std::chrono::steady_clock::now();
    auto publish_progress = [&, replay_start](std::uint64_t completed, bool done) {
        richnote::obs::progress_snapshot snap;
        snap.round = completed;
        snap.total_rounds = total_rounds;
        snap.users = world.user_count();
        snap.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                      replay_start)
                            .count();
        snap.rounds_per_sec =
            snap.wall_sec > 0.0 ? static_cast<double>(completed) / snap.wall_sec : 0.0;
        for (const auto& b : brokers) {
            snap.queue_items_total += static_cast<double>(b.sched().queue_size());
            snap.queue_bytes_total += b.sched().queue_bytes();
            snap.energy_credit_joules_total += b.sched().energy_credit_joules();
        }
        snap.arrived_total = static_cast<std::uint64_t>(metrics.total_arrived());
        snap.delivered_total = static_cast<std::uint64_t>(metrics.total_delivered());
        const auto f = metrics.fault_summary();
        snap.faults_injected = f.faults_injected;
        snap.transfer_retries = f.transfer_retries;
        snap.dead_lettered = f.dead_lettered;
        snap.duplicates_suppressed = f.duplicates_suppressed;
        snap.crash_restarts = f.crash_restarts;
        snap.done = done;
        richnote::obs::metrics_registry live;
        export_metrics(metrics, live);
        params.progress->on_round(snap, live);
    };

    // Persistent worker pool, created ONCE for the whole replay. The
    // historical loop spawned and joined a std::vector<std::thread> every
    // round; at thousands of rounds that thread churn dominates the round
    // body. Worker w owns the same contiguous shard every round
    // (worker_pool::shard_range == the historical n*w/W split), so outputs
    // stay bit-identical and each shard's broker state stays hot in the
    // core that served it last round. worker_threads == 1 degenerates to a
    // plain inline loop with zero threads.
    const std::size_t workers = std::max<std::size_t>(
        1, std::min<std::size_t>(params.worker_threads, world.user_count()));
    worker_pool pool(workers);

    richnote::sim::simulator sim;
    std::uint64_t rounds_run = 0;
    sim.schedule_periodic(0.0, params.round, [&](std::uint64_t tick) {
        const sim_time now = sim.now();
        const bool batch_tick = tick % params.batch_topic_round_multiplier == 0 ||
                                tick + 1 >= total_rounds; // final tick flushes

        // One user's admissions + round; touches only user-u state.
        auto run_user = [&](trace::user_id u) {
            const bool fast_due = fast_next[u] <= now;
            const bool batch_due = batch_tick && batch_next[u] <= now;
            if (fast_due || batch_due) {
                const auto& stream = world.notifications().per_user[u];
                auto collect_due = [&](const std::vector<std::size_t>& index,
                                       std::size_t& cursor, std::vector<std::size_t>& due,
                                       double& next) {
                    while (cursor < index.size() &&
                           stream[index[cursor]].created_at <= now) {
                        due.push_back(index[cursor]);
                        ++cursor;
                    }
                    next = cursor < index.size() ? stream[index[cursor]].created_at
                                                 : never;
                };
                std::vector<std::size_t>& due = due_buffer[u];
                due.clear();
                if (fast_due)
                    collect_due(fast_index[u], fast_cursor[u], due, fast_next[u]);
                if (batch_due)
                    collect_due(batch_index[u], batch_cursor[u], due, batch_next[u]);
                if (fplan != nullptr && due.size() > 1 &&
                    fplan->reorder_arrivals(u, tick)) {
                    // Pub/sub delivered this round's batch out of timestamp
                    // order; the permutation is a pure function of (seed,
                    // user, round), so sharding cannot change it.
                    richnote::rng scramble(fplan->reorder_seed(u, tick));
                    scramble.shuffle(due);
                }
                for (const std::size_t i : due) {
                    brokers[u].admit(stream[i]);
                    if (fplan != nullptr && fplan->duplicate_arrival(u, stream[i].id)) {
                        // At-least-once replay of the publish; idempotent
                        // admission must suppress it.
                        brokers[u].admit(stream[i]);
                    }
                }
            }
            brokers[u].run_round(now);
            if (telemetry_enabled && trajectories->watches(u)) {
                round_sample sample;
                sample.round = tick;
                sample.user = u;
                sample.queue_items = static_cast<double>(brokers[u].sched().queue_size());
                sample.queue_bytes = brokers[u].sched().queue_bytes();
                sample.energy_credit = brokers[u].sched().energy_credit_joules();
                sample.data_budget = brokers[u].data_budget();
                sample.battery_level = brokers[u].battery().level();
                sample.network = brokers[u].network_state();
                sample.delivered_so_far = metrics.user(u).delivered;
                sample.faults = metrics.user(u).faults;
                trajectories->record(sample);
            }
        };

        // §V-C backend parallelism: shard users contiguously; each user is
        // owned by exactly one (persistent) worker for the whole run.
        pool.run_sharded(world.user_count(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t u = lo; u < hi; ++u)
                run_user(static_cast<trace::user_id>(u));
        });
        if (online_model) {
            // Drain this round's engagement feedback and refit when due —
            // single-threaded, between the sharded sections.
            for (auto& b : brokers) {
                for (const auto& n : b.take_feedback()) online_model->observe(n);
            }
            online_model->on_round_end();
        }
        ++rounds_run;
        // Make this round's trace lines durable before anything else can
        // observe (or kill) the run at this round boundary.
        if (params.trace != nullptr && params.trace->streaming())
            params.trace->flush_through(tick);
        if (params.progress != nullptr) publish_progress(rounds_run, false);
        if (tick + 1 >= total_rounds) sim.stop();
    });
    sim.run();
    if (params.progress != nullptr) publish_progress(rounds_run, true);

    // Aggregate.
    experiment_result r;
    r.scheduler_name = to_string(params.kind);
    if (params.kind == scheduler_kind::fifo || params.kind == scheduler_kind::util) {
        r.scheduler_name += "(L" + std::to_string(params.fixed_level) + ")";
    }
    r.weekly_budget_mb = params.weekly_budget_mb;
    r.delivery_ratio = metrics.delivery_ratio();
    r.delivered_mb = metrics.total_bytes_delivered() / 1e6;
    r.metered_mb = metrics.total_metered_bytes() / 1e6;
    r.recall = metrics.recall();
    r.precision = metrics.precision();
    r.total_utility = metrics.total_utility();
    r.utility_clicked = metrics.total_utility_clicked();
    r.avg_utility = metrics.average_utility_per_delivery();
    r.energy_kj = metrics.total_energy_joules() / 1000.0;
    r.mean_delay_min = metrics.mean_queuing_delay_sec() / 60.0;
    r.level_mix = metrics.level_mix();
    r.user_categories = metrics.utility_by_user_category(setup.default_category_edges());
    r.rounds_run = rounds_run;
    r.faults = metrics.fault_summary();
    r.trajectories = std::move(trajectories);
    double queue_total = 0.0;
    for (const auto& b : brokers) queue_total += static_cast<double>(b.sched().queue_size());
    r.final_queue_items = queue_total / static_cast<double>(brokers.size());
    if (params.registry != nullptr) export_metrics(metrics, *params.registry);
    return r;
}

} // namespace richnote::core

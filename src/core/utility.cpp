#include "core/utility.hpp"

#include "common/error.hpp"

namespace richnote::core {

void content_utility_model::content_utility_batch(
    std::span<const trace::notification* const> notes, std::span<double> out) const {
    RICHNOTE_REQUIRE(out.size() == notes.size(), "one output slot per notification");
    for (std::size_t i = 0; i < notes.size(); ++i)
        out[i] = content_utility(*notes[i]);
}

namespace {

/// Row-major feature matrix for a batch of notifications.
std::vector<double> feature_matrix(std::span<const trace::notification* const> notes) {
    constexpr std::size_t dim = trace::notification_features::dimension;
    std::vector<double> matrix;
    matrix.reserve(notes.size() * dim);
    for (const trace::notification* n : notes) {
        const auto features = n->features.to_array();
        matrix.insert(matrix.end(), features.begin(), features.end());
    }
    return matrix;
}

} // namespace

constant_content_utility::constant_content_utility(double value) : value_(value) {
    RICHNOTE_REQUIRE(value >= 0.0 && value <= 1.0, "content utility must be in [0,1]");
}

forest_content_utility::forest_content_utility(
    std::shared_ptr<const ml::random_forest> forest)
    : forest_(std::move(forest)) {
    RICHNOTE_REQUIRE(forest_ != nullptr && forest_->trained(),
                     "forest_content_utility needs a trained forest");
    flat_ = ml::flat_forest(*forest_);
}

double forest_content_utility::content_utility(const trace::notification& n) const {
    const auto features = n.features.to_array();
    return flat_.predict_proba(features);
}

void forest_content_utility::content_utility_batch(
    std::span<const trace::notification* const> notes, std::span<double> out) const {
    RICHNOTE_REQUIRE(out.size() == notes.size(), "one output slot per notification");
    if (notes.empty()) return;
    const std::vector<double> matrix = feature_matrix(notes);
    flat_.predict_proba(matrix, notes.size(), out);
}

ml::dataset make_training_set(const trace::notification_trace& trace) {
    std::vector<std::string> names(trace::notification_features::names().begin(),
                                   trace::notification_features::names().end());
    ml::dataset data(std::move(names));
    for (const auto& stream : trace.per_user) {
        for (const auto& n : stream) {
            if (!n.attended) continue; // the paper's mouse-activity filter
            const auto features = n.features.to_array();
            data.add_row(features, n.clicked ? 1 : 0);
        }
    }
    return data;
}

std::shared_ptr<forest_content_utility> train_content_utility(
    const trace::notification_trace& trace, const ml::forest_params& params,
    std::uint64_t seed) {
    const ml::dataset data = make_training_set(trace);
    RICHNOTE_REQUIRE(!data.empty(), "trace has no attended notifications to train on");
    auto forest = std::make_shared<ml::random_forest>();
    forest->fit(data, params, seed);
    return std::make_shared<forest_content_utility>(std::move(forest));
}

calibrated_content_utility::calibrated_content_utility(
    std::shared_ptr<const content_utility_model> base, ml::platt_calibrator calibrator)
    : base_(std::move(base)), calibrator_(std::move(calibrator)) {
    RICHNOTE_REQUIRE(base_ != nullptr, "calibrated model needs a base model");
    RICHNOTE_REQUIRE(calibrator_.fitted(), "calibrator must be fitted");
}

double calibrated_content_utility::content_utility(const trace::notification& n) const {
    return calibrator_.calibrate(base_->content_utility(n));
}

void calibrated_content_utility::content_utility_batch(
    std::span<const trace::notification* const> notes, std::span<double> out) const {
    base_->content_utility_batch(notes, out);
    for (double& value : out) value = calibrator_.calibrate(value);
}

online_content_utility::online_content_utility(params p)
    : params_(std::move(p)),
      data_(std::vector<std::string>(trace::notification_features::names().begin(),
                                     trace::notification_features::names().end())) {
    RICHNOTE_REQUIRE(params_.prior >= 0.0 && params_.prior <= 1.0,
                     "prior must be in [0,1]");
    RICHNOTE_REQUIRE(params_.retrain_every >= 1, "retrain_every must be >= 1");
}

double online_content_utility::content_utility(const trace::notification& n) const {
    if (!forest_.trained()) return params_.prior;
    const auto features = n.features.to_array();
    return flat_.predict_proba(features);
}

void online_content_utility::observe(const trace::notification& n) {
    RICHNOTE_REQUIRE(n.attended, "feedback only exists for attended notifications");
    const auto features = n.features.to_array();
    data_.add_row(features, n.clicked ? 1 : 0);
}

bool online_content_utility::on_round_end() {
    ++rounds_since_fit_;
    if (rounds_since_fit_ < params_.retrain_every) return false;
    if (data_.size() < params_.min_rows || data_.size() == rows_at_last_fit_)
        return false;
    const double positives = data_.positive_fraction();
    if (positives == 0.0 || positives == 1.0) return false; // one class only
    forest_.fit(data_, params_.forest,
                params_.seed + refits_); // fresh bootstrap stream per refit
    flat_ = ml::flat_forest(forest_);
    rounds_since_fit_ = 0;
    rows_at_last_fit_ = data_.size();
    ++refits_;
    return true;
}

cached_content_utility::cached_content_utility(const trace::notification_trace& trace,
                                               const content_utility_model& model) {
    by_id_.assign(trace.total_count, 0.0);
    std::vector<const trace::notification*> notes;
    notes.reserve(trace.total_count);
    for (const auto& stream : trace.per_user) {
        for (const auto& n : stream) {
            RICHNOTE_REQUIRE(n.id < by_id_.size(), "notification ids must be dense");
            notes.push_back(&n);
        }
    }
    std::vector<double> scores(notes.size());
    model.content_utility_batch(notes, scores);
    for (std::size_t i = 0; i < notes.size(); ++i) by_id_[notes[i]->id] = scores[i];
}

double cached_content_utility::content_utility(const trace::notification& n) const {
    RICHNOTE_REQUIRE(n.id < by_id_.size(), "notification id outside the cached trace");
    return by_id_[n.id];
}

} // namespace richnote::core

// Bounded lock-free admission queue between the wire and the round loop
// (DESIGN.md §11).
//
// Ingest handler threads (expo_server's connection pool) push parsed
// notifications concurrently; the round driver drains the queue single-
// threaded at round boundaries. The implementation is Dmitry Vyukov's
// bounded MPMC ring — each cell carries a sequence number that encodes
// whose turn the cell is, so producers never touch the consumer cursor and
// a push is one CAS plus one store on the uncontended path. We only need
// MPSC, which the MPMC ring satisfies with the consumer side uncontended.
//
// The ring is the backpressure boundary: when it is full, try_push returns
// false and the HTTP layer answers 503 so well-behaved load generators back
// off. Nothing blocks, nothing allocates after construction, and a full
// ring never stalls the round loop.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace richnote::core {

template <typename T>
class admission_queue {
public:
    /// `capacity` is rounded up to a power of two (sequence arithmetic
    /// needs the mask form); the queue holds exactly that many items.
    explicit admission_queue(std::size_t capacity) {
        RICHNOTE_REQUIRE(capacity >= 2, "admission queue capacity must be >= 2");
        std::size_t pow2 = 2;
        while (pow2 < capacity) pow2 <<= 1;
        cells_ = std::vector<cell>(pow2);
        mask_ = pow2 - 1;
        for (std::size_t i = 0; i < pow2; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
    }

    std::size_t capacity() const noexcept { return mask_ + 1; }

    /// Producer side (any thread). False = ring full (backpressure).
    bool try_push(const T& value) {
        std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
        while (true) {
            cell& c = cells_[pos & mask_];
            const std::size_t seq = c.sequence.load(std::memory_order_acquire);
            const auto diff = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                                       std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false; // the cell still holds an unconsumed item: full
            } else {
                pos = enqueue_pos_.load(std::memory_order_relaxed);
            }
        }
        cell& c = cells_[pos & mask_];
        c.value = value;
        c.sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side (the round driver only). False = empty.
    bool try_pop(T& out) {
        std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
        cell& c = cells_[pos & mask_];
        const std::size_t seq = c.sequence.load(std::memory_order_acquire);
        const auto diff =
            static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
        if (diff < 0) return false; // producer has not published this cell yet
        dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
        out = c.value;
        c.sequence.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    /// Items currently buffered (approximate under concurrent pushes; exact
    /// when producers are quiescent — how the round driver uses it).
    std::size_t size() const noexcept {
        const std::size_t tail = enqueue_pos_.load(std::memory_order_acquire);
        const std::size_t head = dequeue_pos_.load(std::memory_order_acquire);
        return tail >= head ? tail - head : 0;
    }

private:
    struct cell {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    // The hot cursors live on their own cache lines so producer CASes never
    // false-share with the consumer cursor.
    alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
    alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
    std::vector<cell> cells_;
    std::size_t mask_ = 0;
};

} // namespace richnote::core

#include "core/service.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/wire.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_sink.hpp"

namespace richnote::core {

using richnote::sim::sim_time;

notification_service::notification_service(const experiment_setup& setup,
                                           const service_params& params)
    : setup_(&setup),
      params_(params),
      metrics_(params.user_count == 0 ? setup.world().user_count() : params.user_count,
               params.experiment.presentation.preview_durations_sec.size() + 1),
      ring_(params.queue_capacity) {
    const experiment_params& ep = params_.experiment;
    RICHNOTE_REQUIRE(ep.weekly_budget_mb > 0, "budget must be positive");
    RICHNOTE_REQUIRE(!ep.online_learning,
                     "service mode does not support online learning");
    RICHNOTE_REQUIRE(ep.batch_topic_round_multiplier == 1,
                     "service mode requires a uniform topic cadence");
    const richnote::faults::fault_plan probe(ep.faults);
    RICHNOTE_REQUIRE(!probe.enabled(), "service mode does not support fault plans");

    if (params_.user_count == 0) params_.user_count = setup.world().user_count();
    RICHNOTE_REQUIRE(params_.user_count >= 1, "service needs at least one user");
    RICHNOTE_REQUIRE(params_.worker_threads >= 1, "service needs at least one worker");
    RICHNOTE_REQUIRE(ep.trace == nullptr ||
                         ep.trace->user_count() >= params_.user_count,
                     "trace sink is sized for fewer users than the fleet");

    theta_ = round_budget_bytes(ep);

    const trace::workload& world = setup.world();
    const audio_preview_generator base_generator(ep.presentation);
    std::vector<double> track_durations;
    track_durations.reserve(world.catalog().track_count());
    for (const auto& t : world.catalog().tracks()) track_durations.push_back(t.duration_sec);
    generator_ =
        std::make_unique<memoized_presentation_generator>(base_generator, track_durations);

    pending_.resize(params_.user_count);
    build_fleet();
    pool_ = std::make_unique<worker_pool>(
        std::max<std::size_t>(1, std::min(params_.worker_threads, params_.user_count)));
}

notification_service::~notification_service() = default;

void notification_service::build_fleet() {
    broker_build_context ctx;
    ctx.params = &params_.experiment;
    ctx.generator = generator_.get();
    // The cached model is an id-indexed table over the generated trace;
    // wire ids are arbitrary, so the service scores through the raw model
    // (bit-identical values for equal features — the cache is populated by
    // this very model).
    ctx.utility = &setup_->raw_model();
    ctx.energy = &energy_;
    ctx.catalog = &setup_->world().catalog();
    ctx.metrics = &metrics_;
    ctx.faults = nullptr;
    ctx.theta = theta_;
    ctx.battery_horizon =
        setup_->world().params().horizon + params_.experiment.round;
    brokers_.reserve(params_.user_count);
    for (trace::user_id u = 0; u < params_.user_count; ++u) {
        brokers_.push_back(
            make_user_broker(ctx, u, params_.expected_admissions_per_user));
    }
}

notification_service::ingest_status
notification_service::ingest_line(std::string_view line, std::string* error) {
    trace::notification n;
    if (!parse_wire_line(line, n, error)) {
        ingest_rejected_parse_.fetch_add(1, std::memory_order_relaxed);
        return ingest_status::parse_error;
    }
    return ingest(n);
}

notification_service::ingest_status
notification_service::ingest(const trace::notification& n) {
    if (n.recipient >= params_.user_count) {
        ingest_rejected_user_.fetch_add(1, std::memory_order_relaxed);
        return ingest_status::unknown_user;
    }
    // Stamp BEFORE the push: once the item is on the ring the driver may
    // drain, admit and even deliver it concurrently, and every later stage
    // hook ignores ids it has no record for.
    richnote::obs::lifecycle_tracker* lifecycle = params_.experiment.lifecycle;
    if (lifecycle != nullptr) lifecycle->on_ingested(n.id, n.recipient);
    if (!ring_.try_push(n)) {
        if (lifecycle != nullptr) lifecycle->abandon(n.id);
        ingest_rejected_backpressure_.fetch_add(1, std::memory_order_relaxed);
        return ingest_status::backpressure;
    }
    ingest_accepted_.fetch_add(1, std::memory_order_relaxed);
    return ingest_status::accepted;
}

bool notification_service::canonical_before(const trace::notification& a,
                                            const trace::notification& b) noexcept {
    // The batch loop admits each round's due fast-class (friend-feed)
    // items before its due batch-class items, each half in stream order —
    // and the generator assigns ids in per-user timestamp order, so stream
    // order IS (created_at, id) order. Sorting due items by (class,
    // created_at, id) therefore reproduces the batch admission sequence
    // exactly; ties (duplicate ids) keep drain order via stable_sort.
    const int ca = a.type == trace::notification_type::friend_feed ? 0 : 1;
    const int cb = b.type == trace::notification_type::friend_feed ? 0 : 1;
    if (ca != cb) return ca < cb;
    if (a.created_at != b.created_at) return a.created_at < b.created_at;
    return a.id < b.id;
}

void notification_service::drain_ring() {
    trace::notification n;
    richnote::obs::trace_sink* trace = params_.experiment.trace;
    while (ring_.try_pop(n)) {
        // Deterministic-plane ingest event: the round the driver drained
        // the item, never a wall-clock stamp (DESIGN.md §13). Emitted here
        // — single-threaded, before the worker shards run — so the per-user
        // sequence is identical for every worker count.
        if (trace != nullptr) {
            trace->event(n.recipient, rounds_run_, "lc_ingest")
                .field("item", n.id)
                .field("created_at", n.created_at);
        }
        pending_[n.recipient].push_back({n, rounds_run_});
        ++pending_count_;
    }
}

void notification_service::run_round() {
    drain_ring();
    const sim_time now = now_;
    const std::uint64_t round = rounds_run_;
    richnote::obs::trace_sink* trace = params_.experiment.trace;
    richnote::obs::lifecycle_tracker* lifecycle = params_.experiment.lifecycle;
    std::atomic<std::uint64_t> admitted_now{0};
    pool_->run_sharded(brokers_.size(), [&](std::size_t lo, std::size_t hi) {
        std::uint64_t local = 0;
        for (std::size_t u = lo; u < hi; ++u) {
            std::vector<pending_item>& pend = pending_[u];
            if (!pend.empty()) {
                // Due items to the front (stable: drain order preserved),
                // then canonical admission order within the due prefix.
                const auto mid = std::stable_partition(
                    pend.begin(), pend.end(), [now](const pending_item& p) {
                        return p.note.created_at <= now;
                    });
                if (mid != pend.begin()) {
                    std::stable_sort(pend.begin(), mid,
                                     [](const pending_item& a, const pending_item& b) {
                                         return canonical_before(a.note, b.note);
                                     });
                    for (auto it = pend.begin(); it != mid; ++it) {
                        // Admission event on the owning shard: one user's
                        // events are sequential here, so the per-user byte
                        // stream is identical for every worker count.
                        if (trace != nullptr) {
                            trace->event(u, round, "lc_admit")
                                .field("item", it->note.id)
                                .field("wait_rounds", round - it->ingest_round);
                        }
                        if (lifecycle != nullptr)
                            lifecycle->on_admitted(it->note.id, round);
                        brokers_[u].admit(it->note);
                    }
                    local += static_cast<std::uint64_t>(
                        std::distance(pend.begin(), mid));
                    pend.erase(pend.begin(), mid);
                }
            }
            brokers_[u].run_round(now);
        }
        if (local != 0) admitted_now.fetch_add(local, std::memory_order_relaxed);
    });
    const std::uint64_t admitted = admitted_now.load(std::memory_order_relaxed);
    admitted_ += admitted;
    pending_count_ -= admitted;
    // Make this round's trace lines durable at the boundary, exactly like
    // the batch loop does per tick.
    if (trace != nullptr && trace->streaming()) trace->flush_through(rounds_run_);
    ++rounds_run_;
    // Accumulate (don't multiply): the event simulator re-arms periodic
    // ticks with `now + period`, so only repeated addition reproduces the
    // batch loop's timestamps bit-for-bit.
    now_ += params_.experiment.round;
}

void notification_service::run_rounds(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) run_round();
}

void notification_service::reshard(std::size_t worker_threads) {
    RICHNOTE_REQUIRE(worker_threads >= 1, "reshard needs at least one worker");
    // Checkpoint every broker, rebuild the fleet from scratch (broker u is
    // a deterministic function of (params, u)), restore, resize the pool.
    // Going through full checkpoint-restore — rather than moving the live
    // brokers — is deliberate: it proves the round-trip is lossless, which
    // is the same property that would carry a shard to another host.
    std::vector<broker_checkpoint> checkpoints;
    checkpoints.reserve(brokers_.size());
    for (const broker& b : brokers_) checkpoints.push_back(b.checkpoint());
    brokers_.clear();
    build_fleet();
    for (std::size_t u = 0; u < brokers_.size(); ++u) brokers_[u].restore(checkpoints[u]);
    params_.worker_threads = worker_threads;
    pool_ = std::make_unique<worker_pool>(
        std::max<std::size_t>(1, std::min(worker_threads, params_.user_count)));
    ++reshards_;
}

service_counters notification_service::counters() const {
    service_counters c;
    c.ingest_accepted = ingest_accepted_.load(std::memory_order_relaxed);
    c.ingest_rejected_parse = ingest_rejected_parse_.load(std::memory_order_relaxed);
    c.ingest_rejected_user = ingest_rejected_user_.load(std::memory_order_relaxed);
    c.ingest_rejected_backpressure =
        ingest_rejected_backpressure_.load(std::memory_order_relaxed);
    c.admitted = admitted_;
    c.pending = pending_count_ + ring_.size();
    c.rounds_run = rounds_run_;
    c.reshards = reshards_;
    c.worker_threads = pool_->threads();
    c.users = brokers_.size();
    return c;
}

experiment_result notification_service::summarize() const {
    experiment_result r;
    const experiment_params& ep = params_.experiment;
    r.scheduler_name = to_string(ep.kind);
    if (ep.kind == scheduler_kind::fifo || ep.kind == scheduler_kind::util) {
        r.scheduler_name += "(L" + std::to_string(ep.fixed_level) + ")";
    }
    r.weekly_budget_mb = ep.weekly_budget_mb;
    r.delivery_ratio = metrics_.delivery_ratio();
    r.delivered_mb = metrics_.total_bytes_delivered() / 1e6;
    r.metered_mb = metrics_.total_metered_bytes() / 1e6;
    r.recall = metrics_.recall();
    r.precision = metrics_.precision();
    r.total_utility = metrics_.total_utility();
    r.utility_clicked = metrics_.total_utility_clicked();
    r.avg_utility = metrics_.average_utility_per_delivery();
    r.energy_kj = metrics_.total_energy_joules() / 1000.0;
    r.mean_delay_min = metrics_.mean_queuing_delay_sec() / 60.0;
    r.level_mix = metrics_.level_mix();
    r.user_categories = metrics_.utility_by_user_category(setup_->default_category_edges());
    r.rounds_run = rounds_run_;
    r.faults = metrics_.fault_summary();
    double queue_total = 0.0;
    for (const broker& b : brokers_)
        queue_total += static_cast<double>(b.sched().queue_size());
    r.final_queue_items = queue_total / static_cast<double>(brokers_.size());
    return r;
}

void notification_service::export_service_metrics(
    richnote::obs::metrics_registry& registry) const {
    const service_counters c = counters();
    registry.count("richnote.service.ingest.accepted_total", c.ingest_accepted);
    registry.count("richnote.service.ingest.rejected_parse_total", c.ingest_rejected_parse);
    registry.count("richnote.service.ingest.rejected_user_total", c.ingest_rejected_user);
    registry.count("richnote.service.ingest.rejected_backpressure_total",
                   c.ingest_rejected_backpressure);
    registry.count("richnote.service.admitted_total", c.admitted);
    registry.count("richnote.service.rounds_total", c.rounds_run);
    registry.count("richnote.service.reshards_total", c.reshards);
    registry.gauge_set("richnote.service.pending_items", static_cast<double>(c.pending));
    registry.gauge_set("richnote.service.worker_threads",
                       static_cast<double>(c.worker_threads));
    registry.gauge_set("richnote.service.users", static_cast<double>(c.users));
    // richnote.svc.* is the lifecycle-era vocabulary (DESIGN.md §13): the
    // ingest counters again under the new prefix (dashboards standardize on
    // it), alongside the stage-latency histograms below. The legacy
    // richnote.service.* names above stay — existing scrapes keep working.
    registry.count("richnote.svc.ingest_accepted", c.ingest_accepted);
    registry.count("richnote.svc.ingest_rejected_parse", c.ingest_rejected_parse);
    registry.count("richnote.svc.ingest_rejected_user", c.ingest_rejected_user);
    registry.count("richnote.svc.ingest_rejected_backpressure",
                   c.ingest_rejected_backpressure);
    registry.set_help("richnote.svc.ingest_rejected_backpressure",
                      "Wire publishes rejected with 503 because the admission "
                      "ring was full");
    if (params_.experiment.lifecycle != nullptr) {
        params_.experiment.lifecycle->export_metrics(registry);
    }
    export_metrics(metrics_, registry);
}

} // namespace richnote::core

// Utility modeling (§III-A): content utility U_c(i), presentation utility
// U_p(i, j) and their combination U(i, j) = U_c(i) * U_p(i, j) (Eq. 1).
#pragma once

#include <memory>
#include <span>

#include "ml/calibration.hpp"
#include "ml/flat_forest.hpp"
#include "ml/random_forest.hpp"
#include "trace/click_model.hpp"
#include "trace/notification.hpp"

namespace richnote::core {

/// Content utility: "how likely the user would be interested in consuming
/// content i" (§III-A). Implementations must return values in [0, 1].
class content_utility_model {
public:
    virtual ~content_utility_model() = default;
    virtual double content_utility(const trace::notification& n) const = 0;

    /// Scores many notifications at once into `out` (one slot per note).
    /// The default loops over content_utility(); forest-backed models
    /// override it with batched flat-forest inference. Results are
    /// bit-identical to the one-at-a-time path either way.
    virtual void content_utility_batch(std::span<const trace::notification* const> notes,
                                       std::span<double> out) const;
};

/// Fixed utility — degenerate model for tests and micro-benchmarks.
class constant_content_utility final : public content_utility_model {
public:
    explicit constant_content_utility(double value);
    double content_utility(const trace::notification&) const override { return value_; }

private:
    double value_;
};

/// Ground-truth oracle: the latent click probability of the synthetic
/// world's click model. Upper-bounds what any learned model can achieve;
/// used in ablations.
class oracle_content_utility final : public content_utility_model {
public:
    explicit oracle_content_utility(const trace::click_model& model) : model_(&model) {}

    double content_utility(const trace::notification& n) const override {
        return model_->click_probability(n.recipient, n.features);
    }

private:
    const trace::click_model* model_;
};

/// The paper's learned model (§V-A): a Random Forest over the notification
/// features; U_c(i) = Pr(x_i = 1) if the predicted class is "clicked", else
/// 1 - Pr(x_i = 0). With a binary forest reporting p = P(clicked), both
/// branches reduce to p: for p >= 0.5 the prediction is 1 with confidence
/// p, otherwise the prediction is 0 with confidence 1-p and the formula
/// yields 1 - (1 - p) = p.
class forest_content_utility final : public content_utility_model {
public:
    /// Takes shared ownership: one trained forest serves all users.
    explicit forest_content_utility(std::shared_ptr<const ml::random_forest> forest);

    double content_utility(const trace::notification& n) const override;

    /// Batched flat-forest inference (trees-outer, cache-friendly).
    void content_utility_batch(std::span<const trace::notification* const> notes,
                               std::span<double> out) const override;

    const ml::flat_forest& flat() const noexcept { return flat_; }

private:
    std::shared_ptr<const ml::random_forest> forest_;
    ml::flat_forest flat_; ///< flattened copy of *forest_; serves all scoring
};

/// Builds the §V-A training set from a trace: one row per *attended*
/// notification ("first we filter out notifications without corresponding
/// mouse activity"), label 1 = clicked, 0 = hovered.
ml::dataset make_training_set(const trace::notification_trace& trace);

/// Trains the paper's content-utility forest on a trace and wraps it.
std::shared_ptr<forest_content_utility> train_content_utility(
    const trace::notification_trace& trace, const ml::forest_params& params,
    std::uint64_t seed);

/// Platt-calibrated wrapper: maps the wrapped model's raw score through a
/// fitted sigmoid so U_c behaves like a probability (the semantics §III-A
/// assigns it). Fit the calibrator on held-out attended notifications.
class calibrated_content_utility final : public content_utility_model {
public:
    calibrated_content_utility(std::shared_ptr<const content_utility_model> base,
                               ml::platt_calibrator calibrator);

    double content_utility(const trace::notification& n) const override;

    /// Batched: scores through the base model's batch path, then calibrates
    /// each value in order.
    void content_utility_batch(std::span<const trace::notification* const> notes,
                               std::span<double> out) const override;

    const ml::platt_calibrator& calibrator() const noexcept { return calibrator_; }

private:
    std::shared_ptr<const content_utility_model> base_;
    ml::platt_calibrator calibrator_;
};

/// Precomputed U_c(i) per notification id. Scoring a forest per item per
/// experiment run would repeat identical work across sweep points; this
/// wrapper evaluates the wrapped model once per notification in the trace
/// and serves lookups afterwards.
class cached_content_utility final : public content_utility_model {
public:
    cached_content_utility(const trace::notification_trace& trace,
                           const content_utility_model& model);

    double content_utility(const trace::notification& n) const override;

    std::size_t size() const noexcept { return by_id_.size(); }

private:
    std::vector<double> by_id_;
};

/// Online content-utility learner (extension; see DESIGN.md §5). The
/// paper trains its classifier offline on the whole log; this model starts
/// cold (a constant prior) and is retrained during the run from feedback
/// on DELIVERED notifications only — the signal a live deployment actually
/// has. Retraining happens between rounds (observe()/maybe_retrain() are
/// called from the round driver, never concurrently with scoring).
class online_content_utility final : public content_utility_model {
public:
    struct params {
        double prior = 0.5;               ///< U_c before the first fit
        std::size_t min_rows = 50;        ///< wait for this much feedback
        std::size_t retrain_every = 24;   ///< rounds between refits
        ml::forest_params forest;
        std::uint64_t seed = 1;
    };

    explicit online_content_utility(params p);

    double content_utility(const trace::notification& n) const override;

    /// Feeds one delivered+attended notification's engagement outcome.
    void observe(const trace::notification& n);

    /// Called once per round; refits when due and enough labeled feedback
    /// of both classes has accumulated. Returns true if a refit happened.
    bool on_round_end();

    bool trained() const noexcept { return forest_.trained(); }
    std::size_t observations() const noexcept { return data_.size(); }
    std::size_t refits() const noexcept { return refits_; }

private:
    params params_;
    ml::dataset data_;
    ml::random_forest forest_;
    ml::flat_forest flat_; ///< rebuilt after every refit; serves scoring
    std::size_t rounds_since_fit_ = 0;
    std::size_t rows_at_last_fit_ = 0;
    std::size_t refits_ = 0;
};

/// Eq. 1: U(i, j) = U_c(i) * U_p(i, j).
inline double combined_utility(double content, double presentation) noexcept {
    return content * presentation;
}

} // namespace richnote::core

#include "core/presentation.hpp"

#include <algorithm>
#include <cmath>

namespace richnote::core {

presentation_set::presentation_set(std::vector<presentation> levels) {
    RICHNOTE_REQUIRE(!levels.empty(), "presentation set needs at least one level");
    for (std::size_t j = 0; j < levels.size(); ++j) {
        RICHNOTE_REQUIRE(levels[j].size_bytes > 0, "presentation sizes must be positive");
        RICHNOTE_REQUIRE(levels[j].utility > 0, "presentation utilities must be positive");
        if (j > 0) {
            RICHNOTE_REQUIRE(levels[j].size_bytes > levels[j - 1].size_bytes,
                             "presentation sizes must strictly increase");
            RICHNOTE_REQUIRE(levels[j].utility > levels[j - 1].utility,
                             "presentation utilities must strictly increase");
        }
        total_size_ += levels[j].size_bytes;
    }
    levels_ = std::make_shared<const std::vector<presentation>>(std::move(levels));
}

std::vector<presentation_candidate> pareto_prune(
    std::vector<presentation_candidate> candidates) {
    // Sort by size ascending, breaking ties by utility descending: then a
    // single sweep keeping a running max utility retains exactly the
    // non-dominated set.
    std::sort(candidates.begin(), candidates.end(),
              [](const presentation_candidate& a, const presentation_candidate& b) {
                  if (a.size_bytes != b.size_bytes) return a.size_bytes < b.size_bytes;
                  return a.utility > b.utility;
              });
    std::vector<presentation_candidate> useful;
    double best_utility = 0.0;
    for (auto& c : candidates) {
        if (c.utility > best_utility) {
            best_utility = c.utility;
            useful.push_back(std::move(c));
        }
    }
    return useful;
}

audio_preview_generator::audio_preview_generator(params p) : params_(std::move(p)) {
    RICHNOTE_REQUIRE(params_.metadata_bytes > 0, "metadata size must be positive");
    RICHNOTE_REQUIRE(params_.metadata_utility_fraction > 0 &&
                         params_.metadata_utility_fraction < 1,
                     "metadata utility fraction must be in (0,1)");
    RICHNOTE_REQUIRE(params_.bitrate_kbps > 0, "bitrate must be positive");
    RICHNOTE_REQUIRE(!params_.preview_durations_sec.empty(),
                     "generator needs at least one preview duration");
    std::sort(params_.preview_durations_sec.begin(), params_.preview_durations_sec.end());
    RICHNOTE_REQUIRE(params_.preview_durations_sec.front() > 0,
                     "preview durations must be positive");
    max_raw_utility_ = raw_duration_utility(params_.preview_durations_sec.back());
    RICHNOTE_REQUIRE(max_raw_utility_ > 0,
                     "duration-utility law must be positive at the longest preview");
}

double audio_preview_generator::raw_duration_utility(double duration_sec) const noexcept {
    const double u =
        params_.duration_log_a + params_.duration_log_b * std::log(1.0 + duration_sec);
    return std::max(0.0, u);
}

double audio_preview_generator::preview_size_bytes(double duration_sec) const noexcept {
    // kbps -> bytes/sec = kbps * 1000 / 8; at 160 kbps this is the paper's
    // d * 20 KB ("assuming no audio compression is used").
    return params_.metadata_bytes + duration_sec * params_.bitrate_kbps * 1000.0 / 8.0;
}

double audio_preview_generator::preview_utility(double duration_sec) const noexcept {
    const double media_fraction = 1.0 - params_.metadata_utility_fraction;
    const double normalized = raw_duration_utility(duration_sec) / max_raw_utility_;
    return params_.metadata_utility_fraction + media_fraction * std::min(1.0, normalized);
}

presentation_set audio_preview_generator::generate(double full_duration_sec) const {
    std::vector<presentation_candidate> candidates;
    candidates.push_back(presentation_candidate{"meta", params_.metadata_bytes,
                                                params_.metadata_utility_fraction, 0.0});
    for (double d : params_.preview_durations_sec) {
        // A preview can never exceed the track itself.
        const double duration =
            full_duration_sec > 0 ? std::min(d, full_duration_sec) : d;
        candidates.push_back(presentation_candidate{
            "meta+" + std::to_string(static_cast<int>(duration)) + "s",
            preview_size_bytes(duration), preview_utility(duration), duration});
    }
    // Clipping can create duplicate or dominated candidates; prune restores
    // the strict ordering presentation_set requires.
    std::vector<presentation_candidate> useful = pareto_prune(std::move(candidates));
    std::vector<presentation> levels;
    levels.reserve(useful.size());
    for (auto& c : useful)
        levels.push_back(presentation{std::move(c.label), c.size_bytes, c.utility,
                                      c.preview_sec});
    return presentation_set(std::move(levels));
}

layered_video_generator::layered_video_generator(params p) : params_(std::move(p)) {
    RICHNOTE_REQUIRE(params_.metadata_bytes > 0, "metadata size must be positive");
    RICHNOTE_REQUIRE(params_.metadata_utility_fraction > 0 &&
                         params_.metadata_utility_fraction < 1,
                     "metadata utility fraction must be in (0,1)");
    RICHNOTE_REQUIRE(!params_.clip_durations_sec.empty(), "need at least one duration");
    RICHNOTE_REQUIRE(!params_.layers.empty(), "need at least one quality layer");
    std::sort(params_.clip_durations_sec.begin(), params_.clip_durations_sec.end());
    RICHNOTE_REQUIRE(params_.clip_durations_sec.front() > 0,
                     "clip durations must be positive");
    for (std::size_t l = 0; l < params_.layers.size(); ++l) {
        RICHNOTE_REQUIRE(params_.layers[l].bitrate_kbps > 0 &&
                             params_.layers[l].quality > 0 &&
                             params_.layers[l].quality <= 1,
                         "layer bitrate/quality out of range");
        if (l > 0) {
            RICHNOTE_REQUIRE(params_.layers[l].bitrate_kbps >
                                     params_.layers[l - 1].bitrate_kbps &&
                                 params_.layers[l].quality > params_.layers[l - 1].quality,
                             "layers must strictly increase in bitrate and quality");
        }
    }
    max_raw_utility_ = raw_duration_utility(params_.clip_durations_sec.back());
    RICHNOTE_REQUIRE(max_raw_utility_ > 0,
                     "duration-utility law must be positive at the longest clip");
}

double layered_video_generator::raw_duration_utility(double duration_sec) const noexcept {
    return std::max(0.0, params_.duration_log_a +
                             params_.duration_log_b * std::log(1.0 + duration_sec));
}

double layered_video_generator::clip_size_bytes(double duration_sec,
                                                double bitrate_kbps) const noexcept {
    return params_.metadata_bytes + duration_sec * bitrate_kbps * 1000.0 / 8.0;
}

double layered_video_generator::clip_utility(double duration_sec,
                                             double quality) const noexcept {
    const double media_fraction = 1.0 - params_.metadata_utility_fraction;
    const double duration_part =
        std::min(1.0, raw_duration_utility(duration_sec) / max_raw_utility_);
    return params_.metadata_utility_fraction + media_fraction * duration_part * quality;
}

presentation_set layered_video_generator::generate(double full_duration_sec) const {
    std::vector<presentation_candidate> candidates;
    candidates.push_back(presentation_candidate{"meta", params_.metadata_bytes,
                                                params_.metadata_utility_fraction, 0.0});
    for (double d : params_.clip_durations_sec) {
        const double duration =
            full_duration_sec > 0 ? std::min(d, full_duration_sec) : d;
        for (const layer& l : params_.layers) {
            candidates.push_back(presentation_candidate{
                l.name + "/" + std::to_string(static_cast<int>(duration)) + "s",
                clip_size_bytes(duration, l.bitrate_kbps),
                clip_utility(duration, l.quality), duration});
        }
    }
    std::vector<presentation_candidate> useful = pareto_prune(std::move(candidates));
    std::vector<presentation> levels;
    levels.reserve(useful.size());
    for (auto& c : useful)
        levels.push_back(
            presentation{std::move(c.label), c.size_bytes, c.utility, c.preview_sec});
    return presentation_set(std::move(levels));
}

memoized_presentation_generator::memoized_presentation_generator(
    const presentation_generator& inner, const std::vector<double>& durations_sec)
    : inner_(&inner) {
    cache_.reserve(durations_sec.size());
    by_ref_.reserve(durations_sec.size());
    for (const double d : durations_sec) {
        auto it = cache_.find(d);
        if (it == cache_.end()) it = cache_.emplace(d, inner.generate(d)).first;
        by_ref_.push_back(it->second); // shares the level table (refcount bump)
    }
}

presentation_set memoized_presentation_generator::generate(double full_duration_sec) const {
    const auto it = cache_.find(full_duration_sec);
    if (it != cache_.end()) return it->second;
    return inner_->generate(full_duration_sec);
}

} // namespace richnote::core

#include "core/mckp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/indexed_heap.hpp"
#include "obs/profile.hpp"

namespace richnote::core {

namespace {

void validate_items(const std::vector<mckp_item>& items) {
    for (const mckp_item& item : items) {
        RICHNOTE_REQUIRE(item.sizes.size() == item.utilities.size(),
                         "mckp item sizes/utilities length mismatch");
        for (std::size_t j = 0; j < item.sizes.size(); ++j) {
            RICHNOTE_REQUIRE(item.sizes[j] > 0, "mckp sizes must be positive");
            if (j > 0)
                RICHNOTE_REQUIRE(item.sizes[j] > item.sizes[j - 1],
                                 "mckp sizes must strictly increase");
        }
    }
}

double level_size(const mckp_item& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.sizes[j - 1];
}

double level_utility(const mckp_item& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.utilities[j - 1];
}

/// Gradient of upgrading item from level j to j+1; -inf when already max.
double gradient(const mckp_item& item, level_t j) noexcept {
    if (j >= item.level_count()) return -std::numeric_limits<double>::infinity();
    const double size_gain = level_size(item, j + 1) - level_size(item, j);
    const double utility_gain = level_utility(item, j + 1) - level_utility(item, j);
    return utility_gain / size_gain;
}

/// The plain cold greedy (Algorithm 1 + skip_infeasible extension), shared
/// by the public scratch overload and the incremental solver's churny-round
/// fallback (which must not re-enter the profiled public entry point).
const mckp_solution& cold_solve_1d(const std::vector<mckp_item>& items, double budget,
                                   const mckp_options& options, mckp_scratch& scratch) {
    mckp_solution& solution = scratch.solution;
    solution.levels.assign(items.size(), 0);
    solution.total_size = 0.0;
    solution.total_utility = 0.0;
    solution.upgrades = 0;
    solution.budget_exhausted = false;
    solution.fractional_bound = 0.0;
    if (items.empty()) return solution;

    // O(n) heap build with each item's initial (level 0 -> 1) gradient.
    // Upgrades with non-positive utility gain are never worth taking (they
    // can only lower the objective), so such items are left out. Keys carry
    // the item id to break exact gradient ties deterministically (see
    // mckp_grad_key).
    indexed_heap<mckp_grad_key, mckp_grad_less>& heap = scratch.heap;
    heap.reserve_ids(items.size());
    std::vector<std::pair<std::size_t, mckp_grad_key>>& initial = scratch.initial;
    initial.clear();
    initial.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const double g = gradient(items[i], 0);
        if (g > 0) initial.emplace_back(i, mckp_grad_key{g, static_cast<std::uint32_t>(i)});
    }
    heap.build(initial);

    while (!heap.empty()) {
        const std::size_t i = heap.top_id();
        const level_t current = solution.levels[i];
        const double size_gain = level_size(items[i], current + 1) - level_size(items[i], current);
        if (solution.total_size + size_gain > budget) {
            solution.budget_exhausted = true;
            // Fractional relaxation would take the prorated remainder of
            // exactly this upgrade (it has the best gradient among the
            // rest); record the bound before deciding how to continue.
            const double leftover = budget - solution.total_size;
            const double utility_gain =
                level_utility(items[i], current + 1) - level_utility(items[i], current);
            solution.fractional_bound = std::max(
                solution.fractional_bound,
                solution.total_utility + utility_gain * (leftover / size_gain));
            if (!options.skip_infeasible) break; // Algorithm 1: done <- true
            heap.pop();                          // extension: try other items
            continue;
        }
        // Take the upgrade.
        solution.levels[i] = current + 1;
        solution.total_size += size_gain;
        solution.total_utility +=
            level_utility(items[i], current + 1) - level_utility(items[i], current);
        ++solution.upgrades;
        const double next = gradient(items[i], current + 1);
        if (next > 0) {
            heap.update(i, mckp_grad_key{next, static_cast<std::uint32_t>(i)});
        } else {
            heap.pop();
        }
    }

    solution.fractional_bound = std::max(solution.fractional_bound, solution.total_utility);
    return solution;
}

} // namespace

mckp_item make_mckp_item(const presentation_set& presentations, double content_utility) {
    mckp_item item;
    item.sizes.reserve(presentations.level_count());
    item.utilities.reserve(presentations.level_count());
    for (level_t j = 1; j <= presentations.level_count(); ++j) {
        item.sizes.push_back(presentations.size(j));
        item.utilities.push_back(content_utility * presentations.utility(j));
    }
    return item;
}

mckp_solution select_presentations(const std::vector<mckp_item>& items, double budget,
                                   const mckp_options& options) {
    validate_items(items);
    mckp_scratch scratch;
    return select_presentations(items, budget, options, scratch);
}

const mckp_solution& select_presentations(const std::vector<mckp_item>& items,
                                          double budget, const mckp_options& options,
                                          mckp_scratch& scratch) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::mckp_solve);
    RICHNOTE_REQUIRE(budget >= 0, "budget must be non-negative");
    // The scratch overload is the per-round hot path; its callers (the
    // schedulers) build instances from already-validated presentation sets,
    // so the O(n*k) structural walk is a debug assertion here. The value-
    // returning overload validates unconditionally for API users.
    RICHNOTE_ASSERT_VALID(validate_items(items));
    return cold_solve_1d(items, budget, options, scratch);
}

namespace {

// ---- incremental re-solve (mckp_incremental_scratch) -----------------------
//
// All three paths below reproduce select_presentations bit-for-bit. The key
// fact (see the header comment): with the (gradient, id) strict total order,
// the infinite-budget pop sequence — each item advancing through its own
// level chain, the heap repeatedly taking the max exposed head — is a pure
// function of the menus. Budget and policy only gate which popped steps are
// APPLIED: the default policy applies a prefix (stops at the first misfit),
// skip_infeasible kills an item at its first misfit and applies the rest.
// Moreover the sequence restricted to any subset of items equals the
// sequence of the subset solved alone (heads are exposed by an item's own
// progress only, and the max rule compares pairwise), which is what lets a
// repair merge the cached schedule with fresh chains for changed items.

void reset_incremental_solution(mckp_solution& solution, std::size_t n) {
    solution.levels.assign(n, 0);
    solution.total_size = 0.0;
    solution.total_utility = 0.0;
    solution.upgrades = 0;
    solution.budget_exhausted = false;
    solution.fractional_bound = 0.0;
}

bool menu_matches_baseline(const mckp_incremental_scratch& scratch, std::size_t i,
                           const mckp_item& item) {
    const std::uint32_t begin = scratch.base_offset[i];
    const std::uint32_t end = scratch.base_offset[i + 1];
    if (end - begin != item.sizes.size()) return false;
    for (std::size_t j = 0; j < item.sizes.size(); ++j) {
        if (item.sizes[j] != scratch.base_sizes[begin + j] ||
            item.utilities[j] != scratch.base_utilities[begin + j])
            return false;
    }
    return true;
}

/// True iff every item's menu equals the baseline snapshot, bailing at the
/// first divergence — the cheap stability probe for rounds that have no
/// recorded schedule (and therefore no use for the full changed-id list).
bool all_menus_match_baseline(const mckp_incremental_scratch& scratch,
                              const std::vector<mckp_item>& items) {
    for (std::size_t i = 0; i < items.size(); ++i)
        if (!menu_matches_baseline(scratch, i, items[i])) return false;
    return true;
}

/// Snapshot the current menus as the diff baseline (grow-only buffers).
void snapshot_baseline(const std::vector<mckp_item>& items,
                       mckp_incremental_scratch& scratch) {
    scratch.base_sizes.clear();
    scratch.base_utilities.clear();
    scratch.base_offset.clear();
    scratch.base_offset.push_back(0);
    for (const mckp_item& item : items) {
        scratch.base_sizes.insert(scratch.base_sizes.end(), item.sizes.begin(),
                                  item.sizes.end());
        scratch.base_utilities.insert(scratch.base_utilities.end(),
                                      item.utilities.begin(), item.utilities.end());
        scratch.base_offset.push_back(static_cast<std::uint32_t>(scratch.base_sizes.size()));
    }
}

/// Cold solve that additionally records the canonical upgrade schedule and
/// snapshots the menus as the new baseline. Exposure (the pop sequence)
/// runs the heap to exhaustion regardless of budget; application follows
/// the policy, so the solution matches the plain cold solver exactly.
void incremental_record(const std::vector<mckp_item>& items, double budget,
                        const mckp_options& options, mckp_incremental_scratch& scratch) {
    const std::size_t n = items.size();
    mckp_solution& solution = scratch.cold.solution;
    reset_incremental_solution(solution, n);
    scratch.schedule.clear();
    scratch.dead.assign(n, 0);
    scratch.cursor.assign(n, 0);
    scratch.is_changed.assign(n, 0);
    scratch.changed.clear();
    bool applying = true;

    indexed_heap<mckp_grad_key, mckp_grad_less>& heap = scratch.cold.heap;
    heap.reserve_ids(n);
    std::vector<std::pair<std::size_t, mckp_grad_key>>& initial = scratch.cold.initial;
    initial.clear();
    initial.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double g = gradient(items[i], 0);
        if (g > 0) initial.emplace_back(i, mckp_grad_key{g, static_cast<std::uint32_t>(i)});
    }
    heap.build(initial);

    while (!heap.empty()) {
        const std::size_t i = heap.top_id();
        const level_t j = scratch.cursor[i];
        const double size_gain = level_size(items[i], j + 1) - level_size(items[i], j);
        const double utility_gain =
            level_utility(items[i], j + 1) - level_utility(items[i], j);
        scratch.schedule.push_back({static_cast<std::uint32_t>(i), j + 1, size_gain,
                                    utility_gain, heap.top_priority().gradient});
        // Application mirrors the plain solver: a live step either fits or
        // stops/kills per policy; once stopped (or for a dead item) further
        // steps are recorded but never fit-checked, exactly as the plain
        // solver never evaluates them.
        if (options.skip_infeasible ? scratch.dead[i] == 0 : applying) {
            if (solution.total_size + size_gain > budget) {
                solution.budget_exhausted = true;
                const double leftover = budget - solution.total_size;
                solution.fractional_bound = std::max(
                    solution.fractional_bound,
                    solution.total_utility + utility_gain * (leftover / size_gain));
                if (options.skip_infeasible)
                    scratch.dead[i] = 1;
                else
                    applying = false;
            } else {
                solution.levels[i] = j + 1;
                solution.total_size += size_gain;
                solution.total_utility += utility_gain;
                ++solution.upgrades;
            }
        }
        scratch.cursor[i] = j + 1;
        const double next = gradient(items[i], j + 1);
        if (next > 0) {
            heap.update(i, mckp_grad_key{next, static_cast<std::uint32_t>(i)});
        } else {
            heap.pop();
        }
    }
    solution.fractional_bound =
        std::max(solution.fractional_bound, solution.total_utility);

    snapshot_baseline(items, scratch);
}

/// Menus match the baseline but budget/policy changed: a linear scan of the
/// cached schedule, applying per policy — no heap work at all.
void incremental_replay(std::size_t n, double budget, const mckp_options& options,
                        mckp_incremental_scratch& scratch) {
    mckp_solution& solution = scratch.cold.solution;
    reset_incremental_solution(solution, n);
    if (options.skip_infeasible) scratch.dead.assign(n, 0);
    for (const mckp_incremental_scratch::step& s : scratch.schedule) {
        if (options.skip_infeasible && scratch.dead[s.item] != 0) continue;
        if (solution.total_size + s.size_gain > budget) {
            solution.budget_exhausted = true;
            const double leftover = budget - solution.total_size;
            solution.fractional_bound = std::max(
                solution.fractional_bound,
                solution.total_utility + s.utility_gain * (leftover / s.size_gain));
            if (!options.skip_infeasible) break;
            scratch.dead[s.item] = 1;
            continue;
        }
        solution.levels[s.item] = s.to_level;
        solution.total_size += s.size_gain;
        solution.total_utility += s.utility_gain;
        ++solution.upgrades;
    }
    solution.fractional_bound =
        std::max(solution.fractional_bound, solution.total_utility);
}

/// A small set of items diverged from the baseline: merge the cached
/// schedule (stale steps of changed items masked out) with a side heap over
/// the changed items' fresh chains, always taking the greater key — the
/// bounded repair. By the subset-restriction property this reproduces the
/// cold pop sequence over the current menus.
void incremental_repair(const std::vector<mckp_item>& items, double budget,
                        const mckp_options& options, mckp_incremental_scratch& scratch) {
    const std::size_t n = items.size();
    mckp_solution& solution = scratch.cold.solution;
    reset_incremental_solution(solution, n);
    scratch.dead.assign(n, 0);

    indexed_heap<mckp_grad_key, mckp_grad_less>& side = scratch.side_heap;
    side.reserve_ids(n);
    scratch.side_initial.clear();
    for (const std::uint32_t id : scratch.changed) {
        scratch.cursor[id] = 0;
        const double g = gradient(items[id], 0);
        if (g > 0) scratch.side_initial.emplace_back(id, mckp_grad_key{g, id});
    }
    side.build(scratch.side_initial);

    const std::vector<mckp_incremental_scratch::step>& sched = scratch.schedule;
    std::size_t p = 0;
    for (;;) {
        // The cached stream's head: the next step of a still-relevant item.
        while (p < sched.size() &&
               (scratch.is_changed[sched[p].item] != 0 ||
                (options.skip_infeasible && scratch.dead[sched[p].item] != 0)))
            ++p;
        const bool have_cached = p < sched.size();
        const bool have_side = !side.empty();
        if (!have_cached && !have_side) break;
        bool take_side = have_side;
        if (have_cached && have_side) {
            const mckp_grad_key cached_key{sched[p].gradient, sched[p].item};
            take_side = mckp_grad_less{}(cached_key, side.top_priority());
        }

        std::uint32_t i;
        level_t to;
        double size_gain;
        double utility_gain;
        if (take_side) {
            i = static_cast<std::uint32_t>(side.top_id());
            const level_t j = scratch.cursor[i];
            to = j + 1;
            size_gain = level_size(items[i], to) - level_size(items[i], j);
            utility_gain = level_utility(items[i], to) - level_utility(items[i], j);
        } else {
            i = sched[p].item;
            to = sched[p].to_level;
            size_gain = sched[p].size_gain;
            utility_gain = sched[p].utility_gain;
        }

        if (solution.total_size + size_gain > budget) {
            solution.budget_exhausted = true;
            const double leftover = budget - solution.total_size;
            solution.fractional_bound = std::max(
                solution.fractional_bound,
                solution.total_utility + utility_gain * (leftover / size_gain));
            if (!options.skip_infeasible) break;
            // skip_infeasible: the item dies at its first misfit.
            if (take_side) {
                side.pop();
            } else {
                scratch.dead[i] = 1;
                ++p;
            }
            continue;
        }
        solution.levels[i] = to;
        solution.total_size += size_gain;
        solution.total_utility += utility_gain;
        ++solution.upgrades;
        if (take_side) {
            scratch.cursor[i] = to;
            const double next = gradient(items[i], to);
            if (next > 0) {
                side.update(i, mckp_grad_key{next, i});
            } else {
                side.pop();
            }
        } else {
            ++p;
        }
    }
    solution.fractional_bound =
        std::max(solution.fractional_bound, solution.total_utility);
}

} // namespace

const mckp_solution& select_presentations_incremental(
    const std::vector<mckp_item>& items, double budget, const mckp_options& options,
    mckp_incremental_scratch& scratch) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::mckp_solve);
    RICHNOTE_REQUIRE(budget >= 0, "budget must be non-negative");
    RICHNOTE_ASSERT_VALID(validate_items(items));
    ++scratch.counters.rounds;

    const std::size_t n = items.size();
    const bool structural = scratch.base_offset.size() != n + 1;
    bool menus_match_baseline = false;
    bool heavy_churn = false;
    if (!structural && scratch.has_schedule) {
        // A schedule exists, so a repair is on the table: collect the full
        // changed-id set it would need.
        for (const std::uint32_t id : scratch.changed) scratch.is_changed[id] = 0;
        scratch.changed.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (!menu_matches_baseline(scratch, i, items[i])) {
                scratch.changed.push_back(static_cast<std::uint32_t>(i));
                scratch.is_changed[i] = 1;
            }
        }
        menus_match_baseline = scratch.changed.empty();
        heavy_churn = static_cast<double>(scratch.changed.size()) >
                      scratch.repair_threshold * static_cast<double>(n);
    } else if (!structural) {
        // No schedule: only the stability bit matters, so probe with the
        // early-exit compare.
        menus_match_baseline = all_menus_match_baseline(scratch, items);
    }

    const bool same_params =
        scratch.has_solution && budget == scratch.last_budget &&
        options.skip_infeasible == scratch.last_options.skip_infeasible;

    const bool churny =
        structural || heavy_churn || (!scratch.has_schedule && !menus_match_baseline);
    if (churny) {
        // Churny round. Recording the schedule means running the greedy to
        // heap exhaustion — noticeably dearer than the budget-stopped plain
        // solve — and a stream that churns every round would pay that over
        // and over for nothing. So: plain cold solve, snapshot the menus,
        // and let the NEXT round record if the instance proves stable
        // (warmup hysteresis, see mckp_incremental_scratch). The snapshot
        // itself backs off exponentially across consecutive churny rounds
        // (1, 2, 4, 8, then every 16): a stream whose menus move every
        // round — e.g. utility aging re-prices the whole queue each tick —
        // pays the O(levels) baseline copy on a vanishing fraction of
        // rounds, at the price of detecting a return to stability at most
        // one backoff window late.
        cold_solve_1d(items, budget, options, scratch.cold);
        if (scratch.snapshot_backoff == 0) {
            snapshot_baseline(items, scratch);
            for (const std::uint32_t id : scratch.changed) scratch.is_changed[id] = 0;
            scratch.changed.clear();
            scratch.churn_streak = std::min<std::uint32_t>(scratch.churn_streak + 1, 5);
            scratch.snapshot_backoff = 1u << (scratch.churn_streak - 1);
            // This solution solved exactly the menus just snapshotted.
            scratch.last_was_baseline = true;
        } else {
            --scratch.snapshot_backoff;
            // The baseline was left stale on purpose; the stored solution
            // does not correspond to it.
            scratch.last_was_baseline = false;
        }
        scratch.has_schedule = false;
        ++scratch.counters.cold;
    } else if (menus_match_baseline && same_params && scratch.last_was_baseline) {
        // Identical instance and parameters: the stored solution IS the
        // answer. Nothing is touched (and no schedule is ever needed).
        ++scratch.counters.reused;
    } else if (menus_match_baseline && !scratch.has_schedule) {
        // Stable instance, changed parameters, no schedule yet: this is the
        // round the recording pass pays for itself — record and serve.
        incremental_record(items, budget, options, scratch);
        scratch.has_schedule = true;
        ++scratch.counters.cold;
        scratch.last_was_baseline = true;
    } else if (menus_match_baseline) {
        incremental_replay(n, budget, options, scratch);
        ++scratch.counters.replayed;
        scratch.last_was_baseline = true;
    } else {
        incremental_repair(items, budget, options, scratch);
        ++scratch.counters.repaired;
        scratch.last_was_baseline = false;
    }
    if (!churny) {
        scratch.churn_streak = 0;
        scratch.snapshot_backoff = 0;
    }
    scratch.last_budget = budget;
    scratch.last_options = options;
    scratch.has_solution = true;

#ifndef NDEBUG
    {
        // Debug builds cross-check every round against a from-scratch cold
        // solve (this allocates; release builds skip it).
        const mckp_solution fresh = select_presentations(items, budget, options);
        const mckp_solution& got = scratch.cold.solution;
        RICHNOTE_CHECK(got.levels == fresh.levels && got.total_size == fresh.total_size &&
                           got.total_utility == fresh.total_utility &&
                           got.upgrades == fresh.upgrades &&
                           got.budget_exhausted == fresh.budget_exhausted &&
                           got.fractional_bound == fresh.fractional_bound,
                       "incremental MCKP diverged from the cold solve");
    }
#endif
    return scratch.cold.solution;
}

namespace {

void validate_items_2d(const std::vector<mckp_item_2d>& items) {
    for (const mckp_item_2d& item : items) {
        RICHNOTE_REQUIRE(item.sizes.size() == item.utilities.size() &&
                             item.sizes.size() == item.energies.size(),
                         "2d mckp item field lengths mismatch");
        for (std::size_t j = 0; j < item.sizes.size(); ++j) {
            RICHNOTE_REQUIRE(item.sizes[j] > 0, "mckp sizes must be positive");
            RICHNOTE_REQUIRE(item.energies[j] >= 0, "mckp energies must be non-negative");
            if (j > 0) {
                RICHNOTE_REQUIRE(item.sizes[j] > item.sizes[j - 1],
                                 "mckp sizes must strictly increase");
                RICHNOTE_REQUIRE(item.energies[j] >= item.energies[j - 1],
                                 "mckp energies must be non-decreasing");
            }
        }
    }
}

double level_size_2d(const mckp_item_2d& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.sizes[j - 1];
}

double level_energy_2d(const mckp_item_2d& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.energies[j - 1];
}

double level_utility_2d(const mckp_item_2d& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.utilities[j - 1];
}

} // namespace

mckp_solution select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                      double data_budget, double energy_budget,
                                      const mckp_options& options) {
    validate_items_2d(items);
    mckp_scratch scratch;
    return select_presentations_2d(items, data_budget, energy_budget, options, scratch);
}

const mckp_solution& select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                             double data_budget, double energy_budget,
                                             const mckp_options& options,
                                             mckp_scratch& scratch) {
    RICHNOTE_REQUIRE(data_budget >= 0 && energy_budget >= 0,
                     "budgets must be non-negative");
    // Hot path: structural validation is debug-only here (see the 1-D
    // overload above for the rationale).
    RICHNOTE_ASSERT_VALID(validate_items_2d(items));

    mckp_solution& solution = scratch.solution;
    solution.levels.assign(items.size(), 0);
    solution.total_size = 0.0;
    solution.total_utility = 0.0;
    solution.upgrades = 0;
    solution.budget_exhausted = false;
    solution.fractional_bound = 0.0;
    if (items.empty()) return solution;

    // Normalized combined weight of an upgrade; guards against a zero
    // budget (in which case any positive demand on that resource is
    // infinite weight, i.e. the upgrade is never attractive).
    auto combined_weight = [&](double size_gain, double energy_gain) {
        double weight = 0.0;
        if (size_gain > 0) {
            if (data_budget <= 0) return std::numeric_limits<double>::infinity();
            weight += size_gain / data_budget;
        }
        if (energy_gain > 0) {
            if (energy_budget <= 0) return std::numeric_limits<double>::infinity();
            weight += energy_gain / energy_budget;
        }
        return weight;
    };

    auto gradient_2d = [&](const mckp_item_2d& item, level_t j) {
        if (j >= item.level_count()) return -std::numeric_limits<double>::infinity();
        const double utility_gain = level_utility_2d(item, j + 1) - level_utility_2d(item, j);
        if (utility_gain <= 0) return -std::numeric_limits<double>::infinity();
        const double weight = combined_weight(
            level_size_2d(item, j + 1) - level_size_2d(item, j),
            level_energy_2d(item, j + 1) - level_energy_2d(item, j));
        if (std::isinf(weight)) return -std::numeric_limits<double>::infinity();
        if (weight == 0.0) return std::numeric_limits<double>::max();
        return utility_gain / weight;
    };

    indexed_heap<mckp_grad_key, mckp_grad_less>& heap = scratch.heap;
    heap.reserve_ids(items.size());
    std::vector<std::pair<std::size_t, mckp_grad_key>>& initial = scratch.initial;
    initial.clear();
    initial.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const double g = gradient_2d(items[i], 0);
        if (g > 0) initial.emplace_back(i, mckp_grad_key{g, static_cast<std::uint32_t>(i)});
    }
    heap.build(initial);

    double total_energy = 0.0;
    while (!heap.empty()) {
        const std::size_t i = heap.top_id();
        const level_t current = solution.levels[i];
        const double size_gain =
            level_size_2d(items[i], current + 1) - level_size_2d(items[i], current);
        const double energy_gain =
            level_energy_2d(items[i], current + 1) - level_energy_2d(items[i], current);
        if (solution.total_size + size_gain > data_budget ||
            total_energy + energy_gain > energy_budget) {
            solution.budget_exhausted = true;
            if (!options.skip_infeasible) break;
            heap.pop();
            continue;
        }
        solution.levels[i] = current + 1;
        solution.total_size += size_gain;
        total_energy += energy_gain;
        solution.total_utility +=
            level_utility_2d(items[i], current + 1) - level_utility_2d(items[i], current);
        ++solution.upgrades;
        const double next = gradient_2d(items[i], current + 1);
        if (next > 0) {
            heap.update(i, mckp_grad_key{next, static_cast<std::uint32_t>(i)});
        } else {
            heap.pop();
        }
    }
    solution.fractional_bound = solution.total_utility; // not tracked for 2d
    return solution;
}

mckp_solution mckp_exact_2d(const std::vector<mckp_item_2d>& items, double data_budget,
                            double energy_budget, double size_resolution,
                            double energy_resolution) {
    RICHNOTE_REQUIRE(data_budget >= 0 && energy_budget >= 0,
                     "budgets must be non-negative");
    RICHNOTE_REQUIRE(size_resolution > 0 && energy_resolution > 0,
                     "resolutions must be positive");
    validate_items_2d(items);

    const auto cap_b = static_cast<std::size_t>(data_budget / size_resolution);
    const auto cap_e = static_cast<std::size_t>(energy_budget / energy_resolution);
    constexpr double neg_inf = -std::numeric_limits<double>::infinity();
    const std::size_t width = cap_e + 1;

    // dp[b * width + e]: best utility with at most b size units and e
    // energy units; per-item choice table for reconstruction.
    std::vector<double> dp((cap_b + 1) * width, 0.0);
    std::vector<std::vector<std::uint32_t>> choice(
        items.size(), std::vector<std::uint32_t>((cap_b + 1) * width, 0));

    for (std::size_t i = 0; i < items.size(); ++i) {
        std::vector<double> next((cap_b + 1) * width, neg_inf);
        for (std::size_t b = 0; b <= cap_b; ++b) {
            for (std::size_t e = 0; e <= cap_e; ++e) {
                const std::size_t cell = b * width + e;
                next[cell] = dp[cell];
                choice[i][cell] = 0;
                for (std::size_t j = 0; j < items[i].level_count(); ++j) {
                    const auto ub = static_cast<std::size_t>(
                        std::ceil(items[i].sizes[j] / size_resolution));
                    const auto ue = static_cast<std::size_t>(
                        std::ceil(items[i].energies[j] / energy_resolution));
                    if (ub > b || ue > e) continue;
                    const double candidate =
                        dp[(b - ub) * width + (e - ue)] + items[i].utilities[j];
                    if (candidate > next[cell]) {
                        next[cell] = candidate;
                        choice[i][cell] = static_cast<std::uint32_t>(j + 1);
                    }
                }
            }
        }
        dp = std::move(next);
    }

    std::size_t best_b = 0;
    std::size_t best_e = 0;
    for (std::size_t b = 0; b <= cap_b; ++b)
        for (std::size_t e = 0; e <= cap_e; ++e)
            if (dp[b * width + e] > dp[best_b * width + best_e]) {
                best_b = b;
                best_e = e;
            }

    mckp_solution solution;
    solution.levels.assign(items.size(), 0);
    std::size_t b = best_b;
    std::size_t e = best_e;
    for (std::size_t i = items.size(); i-- > 0;) {
        const level_t j = choice[i][b * width + e];
        solution.levels[i] = j;
        if (j > 0) {
            b -= static_cast<std::size_t>(
                std::ceil(items[i].sizes[j - 1] / size_resolution));
            e -= static_cast<std::size_t>(
                std::ceil(items[i].energies[j - 1] / energy_resolution));
            solution.total_size += items[i].sizes[j - 1];
            solution.total_utility += items[i].utilities[j - 1];
            ++solution.upgrades;
        }
    }
    solution.fractional_bound = solution.total_utility;
    return solution;
}

mckp_solution mckp_exact(const std::vector<mckp_item>& items, double budget,
                         double resolution) {
    RICHNOTE_REQUIRE(budget >= 0, "budget must be non-negative");
    RICHNOTE_REQUIRE(resolution > 0, "resolution must be positive");
    validate_items(items);

    const auto capacity = static_cast<std::size_t>(budget / resolution);
    constexpr double neg_inf = -std::numeric_limits<double>::infinity();

    // dp[c] = best utility using at most c resolution units; choice tracking
    // per item for reconstruction.
    std::vector<double> dp(capacity + 1, 0.0);
    std::vector<std::vector<std::uint32_t>> choice(
        items.size(), std::vector<std::uint32_t>(capacity + 1, 0));

    for (std::size_t i = 0; i < items.size(); ++i) {
        std::vector<double> next(capacity + 1, neg_inf);
        for (std::size_t c = 0; c <= capacity; ++c) {
            // Level 0 is always available.
            next[c] = dp[c];
            choice[i][c] = 0;
            for (std::size_t j = 0; j < items[i].level_count(); ++j) {
                const auto units =
                    static_cast<std::size_t>(std::ceil(items[i].sizes[j] / resolution));
                if (units > c) continue;
                const double candidate = dp[c - units] + items[i].utilities[j];
                if (candidate > next[c]) {
                    next[c] = candidate;
                    choice[i][c] = static_cast<std::uint32_t>(j + 1);
                }
            }
        }
        dp = std::move(next);
    }

    mckp_solution solution;
    solution.levels.assign(items.size(), 0);
    std::size_t c = capacity;
    for (std::size_t c2 = 0; c2 <= capacity; ++c2)
        if (dp[c2] > dp[c]) c = c2;
    for (std::size_t i = items.size(); i-- > 0;) {
        const level_t j = choice[i][c];
        solution.levels[i] = j;
        if (j > 0) {
            const auto units =
                static_cast<std::size_t>(std::ceil(items[i].sizes[j - 1] / resolution));
            c -= units;
            solution.total_size += items[i].sizes[j - 1];
            solution.total_utility += items[i].utilities[j - 1];
            ++solution.upgrades;
        }
    }
    solution.fractional_bound = solution.total_utility;
    return solution;
}

} // namespace richnote::core

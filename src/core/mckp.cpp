#include "core/mckp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/indexed_heap.hpp"
#include "obs/profile.hpp"

namespace richnote::core {

namespace {

void validate_items(const std::vector<mckp_item>& items) {
    for (const mckp_item& item : items) {
        RICHNOTE_REQUIRE(item.sizes.size() == item.utilities.size(),
                         "mckp item sizes/utilities length mismatch");
        for (std::size_t j = 0; j < item.sizes.size(); ++j) {
            RICHNOTE_REQUIRE(item.sizes[j] > 0, "mckp sizes must be positive");
            if (j > 0)
                RICHNOTE_REQUIRE(item.sizes[j] > item.sizes[j - 1],
                                 "mckp sizes must strictly increase");
        }
    }
}

double level_size(const mckp_item& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.sizes[j - 1];
}

double level_utility(const mckp_item& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.utilities[j - 1];
}

/// Gradient of upgrading item from level j to j+1; -inf when already max.
double gradient(const mckp_item& item, level_t j) noexcept {
    if (j >= item.level_count()) return -std::numeric_limits<double>::infinity();
    const double size_gain = level_size(item, j + 1) - level_size(item, j);
    const double utility_gain = level_utility(item, j + 1) - level_utility(item, j);
    return utility_gain / size_gain;
}

} // namespace

mckp_item make_mckp_item(const presentation_set& presentations, double content_utility) {
    mckp_item item;
    item.sizes.reserve(presentations.level_count());
    item.utilities.reserve(presentations.level_count());
    for (level_t j = 1; j <= presentations.level_count(); ++j) {
        item.sizes.push_back(presentations.size(j));
        item.utilities.push_back(content_utility * presentations.utility(j));
    }
    return item;
}

mckp_solution select_presentations(const std::vector<mckp_item>& items, double budget,
                                   const mckp_options& options) {
    validate_items(items);
    mckp_scratch scratch;
    return select_presentations(items, budget, options, scratch);
}

const mckp_solution& select_presentations(const std::vector<mckp_item>& items,
                                          double budget, const mckp_options& options,
                                          mckp_scratch& scratch) {
    RICHNOTE_PROFILE_SCOPE(obs::profile_slot::mckp_solve);
    RICHNOTE_REQUIRE(budget >= 0, "budget must be non-negative");
    // The scratch overload is the per-round hot path; its callers (the
    // schedulers) build instances from already-validated presentation sets,
    // so the O(n*k) structural walk is a debug assertion here. The value-
    // returning overload validates unconditionally for API users.
    RICHNOTE_ASSERT_VALID(validate_items(items));

    mckp_solution& solution = scratch.solution;
    solution.levels.assign(items.size(), 0);
    solution.total_size = 0.0;
    solution.total_utility = 0.0;
    solution.upgrades = 0;
    solution.budget_exhausted = false;
    solution.fractional_bound = 0.0;
    if (items.empty()) return solution;

    // O(n) heap build with each item's initial (level 0 -> 1) gradient.
    // Upgrades with non-positive utility gain are never worth taking (they
    // can only lower the objective), so such items are left out.
    indexed_heap<double>& heap = scratch.heap;
    heap.reserve_ids(items.size());
    std::vector<std::pair<std::size_t, double>>& initial = scratch.initial;
    initial.clear();
    initial.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const double g = gradient(items[i], 0);
        if (g > 0) initial.emplace_back(i, g);
    }
    heap.build(initial);

    while (!heap.empty()) {
        const std::size_t i = heap.top_id();
        const level_t current = solution.levels[i];
        const double size_gain = level_size(items[i], current + 1) - level_size(items[i], current);
        if (solution.total_size + size_gain > budget) {
            solution.budget_exhausted = true;
            // Fractional relaxation would take the prorated remainder of
            // exactly this upgrade (it has the best gradient among the
            // rest); record the bound before deciding how to continue.
            const double leftover = budget - solution.total_size;
            const double utility_gain =
                level_utility(items[i], current + 1) - level_utility(items[i], current);
            solution.fractional_bound = std::max(
                solution.fractional_bound,
                solution.total_utility + utility_gain * (leftover / size_gain));
            if (!options.skip_infeasible) break; // Algorithm 1: done <- true
            heap.pop();                          // extension: try other items
            continue;
        }
        // Take the upgrade.
        solution.levels[i] = current + 1;
        solution.total_size += size_gain;
        solution.total_utility +=
            level_utility(items[i], current + 1) - level_utility(items[i], current);
        ++solution.upgrades;
        const double next = gradient(items[i], current + 1);
        if (next > 0) {
            heap.update(i, next);
        } else {
            heap.pop();
        }
    }

    solution.fractional_bound = std::max(solution.fractional_bound, solution.total_utility);
    return solution;
}

namespace {

void validate_items_2d(const std::vector<mckp_item_2d>& items) {
    for (const mckp_item_2d& item : items) {
        RICHNOTE_REQUIRE(item.sizes.size() == item.utilities.size() &&
                             item.sizes.size() == item.energies.size(),
                         "2d mckp item field lengths mismatch");
        for (std::size_t j = 0; j < item.sizes.size(); ++j) {
            RICHNOTE_REQUIRE(item.sizes[j] > 0, "mckp sizes must be positive");
            RICHNOTE_REQUIRE(item.energies[j] >= 0, "mckp energies must be non-negative");
            if (j > 0) {
                RICHNOTE_REQUIRE(item.sizes[j] > item.sizes[j - 1],
                                 "mckp sizes must strictly increase");
                RICHNOTE_REQUIRE(item.energies[j] >= item.energies[j - 1],
                                 "mckp energies must be non-decreasing");
            }
        }
    }
}

double level_size_2d(const mckp_item_2d& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.sizes[j - 1];
}

double level_energy_2d(const mckp_item_2d& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.energies[j - 1];
}

double level_utility_2d(const mckp_item_2d& item, level_t j) noexcept {
    return j == 0 ? 0.0 : item.utilities[j - 1];
}

} // namespace

mckp_solution select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                      double data_budget, double energy_budget,
                                      const mckp_options& options) {
    validate_items_2d(items);
    mckp_scratch scratch;
    return select_presentations_2d(items, data_budget, energy_budget, options, scratch);
}

const mckp_solution& select_presentations_2d(const std::vector<mckp_item_2d>& items,
                                             double data_budget, double energy_budget,
                                             const mckp_options& options,
                                             mckp_scratch& scratch) {
    RICHNOTE_REQUIRE(data_budget >= 0 && energy_budget >= 0,
                     "budgets must be non-negative");
    // Hot path: structural validation is debug-only here (see the 1-D
    // overload above for the rationale).
    RICHNOTE_ASSERT_VALID(validate_items_2d(items));

    mckp_solution& solution = scratch.solution;
    solution.levels.assign(items.size(), 0);
    solution.total_size = 0.0;
    solution.total_utility = 0.0;
    solution.upgrades = 0;
    solution.budget_exhausted = false;
    solution.fractional_bound = 0.0;
    if (items.empty()) return solution;

    // Normalized combined weight of an upgrade; guards against a zero
    // budget (in which case any positive demand on that resource is
    // infinite weight, i.e. the upgrade is never attractive).
    auto combined_weight = [&](double size_gain, double energy_gain) {
        double weight = 0.0;
        if (size_gain > 0) {
            if (data_budget <= 0) return std::numeric_limits<double>::infinity();
            weight += size_gain / data_budget;
        }
        if (energy_gain > 0) {
            if (energy_budget <= 0) return std::numeric_limits<double>::infinity();
            weight += energy_gain / energy_budget;
        }
        return weight;
    };

    auto gradient_2d = [&](const mckp_item_2d& item, level_t j) {
        if (j >= item.level_count()) return -std::numeric_limits<double>::infinity();
        const double utility_gain = level_utility_2d(item, j + 1) - level_utility_2d(item, j);
        if (utility_gain <= 0) return -std::numeric_limits<double>::infinity();
        const double weight = combined_weight(
            level_size_2d(item, j + 1) - level_size_2d(item, j),
            level_energy_2d(item, j + 1) - level_energy_2d(item, j));
        if (std::isinf(weight)) return -std::numeric_limits<double>::infinity();
        if (weight == 0.0) return std::numeric_limits<double>::max();
        return utility_gain / weight;
    };

    indexed_heap<double>& heap = scratch.heap;
    heap.reserve_ids(items.size());
    std::vector<std::pair<std::size_t, double>>& initial = scratch.initial;
    initial.clear();
    initial.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const double g = gradient_2d(items[i], 0);
        if (g > 0) initial.emplace_back(i, g);
    }
    heap.build(initial);

    double total_energy = 0.0;
    while (!heap.empty()) {
        const std::size_t i = heap.top_id();
        const level_t current = solution.levels[i];
        const double size_gain =
            level_size_2d(items[i], current + 1) - level_size_2d(items[i], current);
        const double energy_gain =
            level_energy_2d(items[i], current + 1) - level_energy_2d(items[i], current);
        if (solution.total_size + size_gain > data_budget ||
            total_energy + energy_gain > energy_budget) {
            solution.budget_exhausted = true;
            if (!options.skip_infeasible) break;
            heap.pop();
            continue;
        }
        solution.levels[i] = current + 1;
        solution.total_size += size_gain;
        total_energy += energy_gain;
        solution.total_utility +=
            level_utility_2d(items[i], current + 1) - level_utility_2d(items[i], current);
        ++solution.upgrades;
        const double next = gradient_2d(items[i], current + 1);
        if (next > 0) {
            heap.update(i, next);
        } else {
            heap.pop();
        }
    }
    solution.fractional_bound = solution.total_utility; // not tracked for 2d
    return solution;
}

mckp_solution mckp_exact_2d(const std::vector<mckp_item_2d>& items, double data_budget,
                            double energy_budget, double size_resolution,
                            double energy_resolution) {
    RICHNOTE_REQUIRE(data_budget >= 0 && energy_budget >= 0,
                     "budgets must be non-negative");
    RICHNOTE_REQUIRE(size_resolution > 0 && energy_resolution > 0,
                     "resolutions must be positive");
    validate_items_2d(items);

    const auto cap_b = static_cast<std::size_t>(data_budget / size_resolution);
    const auto cap_e = static_cast<std::size_t>(energy_budget / energy_resolution);
    constexpr double neg_inf = -std::numeric_limits<double>::infinity();
    const std::size_t width = cap_e + 1;

    // dp[b * width + e]: best utility with at most b size units and e
    // energy units; per-item choice table for reconstruction.
    std::vector<double> dp((cap_b + 1) * width, 0.0);
    std::vector<std::vector<std::uint32_t>> choice(
        items.size(), std::vector<std::uint32_t>((cap_b + 1) * width, 0));

    for (std::size_t i = 0; i < items.size(); ++i) {
        std::vector<double> next((cap_b + 1) * width, neg_inf);
        for (std::size_t b = 0; b <= cap_b; ++b) {
            for (std::size_t e = 0; e <= cap_e; ++e) {
                const std::size_t cell = b * width + e;
                next[cell] = dp[cell];
                choice[i][cell] = 0;
                for (std::size_t j = 0; j < items[i].level_count(); ++j) {
                    const auto ub = static_cast<std::size_t>(
                        std::ceil(items[i].sizes[j] / size_resolution));
                    const auto ue = static_cast<std::size_t>(
                        std::ceil(items[i].energies[j] / energy_resolution));
                    if (ub > b || ue > e) continue;
                    const double candidate =
                        dp[(b - ub) * width + (e - ue)] + items[i].utilities[j];
                    if (candidate > next[cell]) {
                        next[cell] = candidate;
                        choice[i][cell] = static_cast<std::uint32_t>(j + 1);
                    }
                }
            }
        }
        dp = std::move(next);
    }

    std::size_t best_b = 0;
    std::size_t best_e = 0;
    for (std::size_t b = 0; b <= cap_b; ++b)
        for (std::size_t e = 0; e <= cap_e; ++e)
            if (dp[b * width + e] > dp[best_b * width + best_e]) {
                best_b = b;
                best_e = e;
            }

    mckp_solution solution;
    solution.levels.assign(items.size(), 0);
    std::size_t b = best_b;
    std::size_t e = best_e;
    for (std::size_t i = items.size(); i-- > 0;) {
        const level_t j = choice[i][b * width + e];
        solution.levels[i] = j;
        if (j > 0) {
            b -= static_cast<std::size_t>(
                std::ceil(items[i].sizes[j - 1] / size_resolution));
            e -= static_cast<std::size_t>(
                std::ceil(items[i].energies[j - 1] / energy_resolution));
            solution.total_size += items[i].sizes[j - 1];
            solution.total_utility += items[i].utilities[j - 1];
            ++solution.upgrades;
        }
    }
    solution.fractional_bound = solution.total_utility;
    return solution;
}

mckp_solution mckp_exact(const std::vector<mckp_item>& items, double budget,
                         double resolution) {
    RICHNOTE_REQUIRE(budget >= 0, "budget must be non-negative");
    RICHNOTE_REQUIRE(resolution > 0, "resolution must be positive");
    validate_items(items);

    const auto capacity = static_cast<std::size_t>(budget / resolution);
    constexpr double neg_inf = -std::numeric_limits<double>::infinity();

    // dp[c] = best utility using at most c resolution units; choice tracking
    // per item for reconstruction.
    std::vector<double> dp(capacity + 1, 0.0);
    std::vector<std::vector<std::uint32_t>> choice(
        items.size(), std::vector<std::uint32_t>(capacity + 1, 0));

    for (std::size_t i = 0; i < items.size(); ++i) {
        std::vector<double> next(capacity + 1, neg_inf);
        for (std::size_t c = 0; c <= capacity; ++c) {
            // Level 0 is always available.
            next[c] = dp[c];
            choice[i][c] = 0;
            for (std::size_t j = 0; j < items[i].level_count(); ++j) {
                const auto units =
                    static_cast<std::size_t>(std::ceil(items[i].sizes[j] / resolution));
                if (units > c) continue;
                const double candidate = dp[c - units] + items[i].utilities[j];
                if (candidate > next[c]) {
                    next[c] = candidate;
                    choice[i][c] = static_cast<std::uint32_t>(j + 1);
                }
            }
        }
        dp = std::move(next);
    }

    mckp_solution solution;
    solution.levels.assign(items.size(), 0);
    std::size_t c = capacity;
    for (std::size_t c2 = 0; c2 <= capacity; ++c2)
        if (dp[c2] > dp[c]) c = c2;
    for (std::size_t i = items.size(); i-- > 0;) {
        const level_t j = choice[i][c];
        solution.levels[i] = j;
        if (j > 0) {
            const auto units =
                static_cast<std::size_t>(std::ceil(items[i].sizes[j - 1] / resolution));
            c -= units;
            solution.total_size += items[i].sizes[j - 1];
            solution.total_utility += items[i].utilities[j - 1];
            ++solution.upgrades;
        }
    }
    solution.fractional_bound = solution.total_utility;
    return solution;
}

} // namespace richnote::core

// NDJSON wire codec for notification ingest (DESIGN.md §11).
//
// `richnote serve` admits notifications over HTTP as newline-delimited
// flat JSON objects — one notification per line, the same flat-object
// dialect the decision-trace plane already speaks (obs/trace_report's
// parser is reused verbatim). A line carries the notification identity,
// routing and feature fields plus the synthetic ground-truth engagement
// labels, so a recorded workload can be replayed over the wire and produce
// BIT-IDENTICAL metrics to the in-process batch loop: numbers are printed
// with %.17g (obs/json_util), which round-trips every finite double.
//
//   {"id":17,"user":3,"type":"friend_feed","track":204,"created_at":3600,
//    "social_tie":0.43,"track_pop":81,"album_pop":70,"artist_pop":64,
//    "weekend":false,"daytime":true,"attended":true,"clicked":false,
//    "clicked_at":0}
//
// parse_wire_line is strict about structure (malformed JSON, missing or
// wrongly-typed required fields are errors with a reason) and lenient
// about extras (unknown keys are ignored, label fields default to
// false/0), so a foreign producer only needs the routing + feature core.
#pragma once

#include <string>
#include <string_view>

#include "trace/notification.hpp"

namespace richnote::core {

/// Renders one notification as a single NDJSON line (no trailing newline).
std::string format_wire_line(const trace::notification& n);

/// Parses one NDJSON line into `out`. Returns true on success; on failure
/// returns false and, when `error` is non-null, stores a short reason
/// ("bad json", "missing field: user", ...). `out` is unspecified on
/// failure. Range validation against a concrete user fleet / catalog is
/// the admission side's job, not the parser's.
bool parse_wire_line(std::string_view line, trace::notification& out,
                     std::string* error = nullptr);

} // namespace richnote::core

// Feature-importance table backing §V-A's feature-space narrative:
// "intuitively, a notification from a friend or favorite artist has a
// higher utility to the user", plus track/album/artist popularity and the
// timestamp features. Permutation importance on the trained content-
// utility forest shows which features actually carry the click signal in
// the (synthetic) trace.
//
// Usage: table_feature_importance [users=200] [seed=1] [trees=30] [csv=...]
#include <iostream>

#include "bench_common.hpp"
#include "core/utility.hpp"
#include "ml/metrics.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv);

    const trace::workload world(opts.setup.workload, opts.setup.seed);
    const ml::dataset data = core::make_training_set(world.notifications());
    const auto [train, test] = data.train_test_split(0.3, opts.setup.seed);
    std::cerr << "[setup] " << train.size() << " training rows, " << test.size()
              << " held-out rows\n";

    ml::random_forest forest;
    ml::forest_params params;
    params.tree_count = opts.setup.forest.tree_count;
    forest.fit(train, params, opts.setup.seed ^ 0x77ULL);

    const auto importance = ml::permutation_importance(test, forest, opts.setup.seed, 5);
    const double held_out_accuracy =
        ml::evaluate(test, [&](std::span<const double> row) { return forest.predict(row); })
            .accuracy();

    bench::figure_output out({"feature", "accuracy drop when permuted"});
    const auto& names = trace::notification_features::names();
    for (std::size_t f = 0; f < names.size(); ++f) {
        out.add_row({names[f], format_double(importance[f], 4)});
    }
    out.emit("Sec. V-A companion: permutation feature importance (held-out accuracy " +
                 format_double(held_out_accuracy, 3) + ")",
             opts.csv_path);
    std::cout << "expected: social_tie and track/artist popularity dominate, matching "
                 "the paper's\nfeature intuition; weekday/daytime contribute weakly.\n";
    bench::write_run_manifest(opts, "table_feature_importance");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Ablation: cellular coverage.
//
// §V-C assumes users are "connected to the broker sporadically through a
// cellular connection"; the §V-D3 Markov model pins the connected fraction
// at 50%. This ablation sweeps the stationary coverage from 10% to 90% at
// a fixed budget, showing how RichNote degrades under poor connectivity
// compared with UTIL: delivery ratio and delay should track coverage for
// both, with RichNote holding its delivery-ratio lead because any
// connected round suffices to flush metadata presentations.
//
// Usage: ablation_connectivity [users=200] [seed=1] [trees=30] [budget=10] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"coverage", "scheduler", "delivery_ratio", "delay(min)",
                              "total_utility"});
    for (double coverage : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        for (auto kind : {core::scheduler_kind::richnote, core::scheduler_kind::util}) {
            core::experiment_params params;
            params.kind = kind;
            params.fixed_level = 3;
            params.weekly_budget_mb = budget;
            params.cellular_coverage = coverage;
            params.seed = opts.run_seed;
            const auto r = core::run_experiment(*setup, params);
            out.add_row({format_double(coverage, 2), r.scheduler_name,
                         format_double(r.delivery_ratio, 3),
                         format_double(r.mean_delay_min, 1),
                         format_double(r.total_utility, 1)});
        }
    }
    out.emit("Ablation: stationary cellular coverage sweep (budget " +
                 format_double(budget, 0) + " MB; paper fixes 0.50)",
             opts.csv_path);
    std::cout << "expected: delays shrink and delivery grows with coverage for both "
                 "schedulers;\nRichNote keeps near-100% delivery down to sparse "
                 "connectivity.\n";
    bench::write_run_manifest(opts, "ablation_connectivity");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Perf harness for the per-round hot path (tracked trajectory: BENCH_perf.json).
//
// Two phases:
//  1. End-to-end round loop: run_experiment over a generated workload at
//     users= x rounds= (horizon = rounds * 1 h) and report rounds/sec and
//     user-rounds/sec of the whole pipeline (admissions, planning, delivery,
//     metrics).
//  2. Steady-state scheduler kernel: one richnote_scheduler with a loaded
//     queue planning round after round with nothing delivered — the regime a
//     backlogged user sits in. Reports p50/p99 plan latency, planned
//     items/sec, heap allocations per round measured by the instrumented
//     global operator new below (must be zero once the scratch arenas are
//     warm), and the incremental-MCKP path counters (reuse / replay /
//     repair / cold) so the trajectory shows WHICH re-solve path the kernel
//     actually sat in. The detected ISA + chosen forest kernel is reported
//     as the `uarch` field for cross-machine comparisons.
//
// Output is machine-readable JSON on stdout (or json=PATH); scripts/bench.sh
// folds it into BENCH_perf.json at the repo root. Pass
// baseline_rounds_per_sec= to record a speedup against a prior measurement.
//
// Usage: perf_round_loop [users=2000] [rounds=500] [seed=1] [trees=20]
//                        [threads=1] [budget=20] [queue=64] [plan_iters=2000]
//                        [baseline_rounds_per_sec=0] [json=PATH]
//                        [profile=off] [profile_sample_every=16]
//
// profile=on enables the runtime sampling profiler for the timed phases, so
// `perf_round_loop profile=off` vs `profile=on` measures the profiler's own
// overhead (the numbers quoted in DESIGN.md §10). The JSON reports which
// mode ran under params.profile.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/experiment.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "energy/model.hpp"
#include "ml/simd_dispatch.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/run_manifest.hpp"

// ---------------------------------------------------------------------------
// Instrumented allocator hook: every path through global operator new bumps
// one relaxed atomic, so a code region's allocation count is the difference
// of two snapshots. Frees are not counted — the claim under test is "the
// steady-state round ALLOCATES nothing", which is what makes the loop both
// fast and fragmentation-free.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(alignment, (size + alignment - 1) / alignment * alignment))
        return p;
    throw std::bad_alloc{};
}

std::uint64_t allocations() noexcept {
    return g_alloc_count.load(std::memory_order_relaxed);
}
} // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
    return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
    return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------------
namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

double pct(std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
    return values[rank];
}

} // namespace

int main(int argc, char** argv) try {
    using namespace richnote;

    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"users", "rounds", "seed", "trees", "threads", "budget", "queue",
                     "plan_iters", "baseline_rounds_per_sec", "json", "manifest",
                     "metrics", "profile", "profile_sample_every"});
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 2000));
    const auto rounds = static_cast<std::uint64_t>(cfg.get_int("rounds", 500));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto trees = static_cast<std::size_t>(cfg.get_int("trees", 20));
    const auto threads = static_cast<std::size_t>(cfg.get_int("threads", 1));
    const double budget_mb = cfg.get_double("budget", 20.0);
    const auto queue_depth = static_cast<std::size_t>(cfg.get_int("queue", 64));
    const auto plan_iters = static_cast<std::size_t>(cfg.get_int("plan_iters", 2000));
    const double baseline = cfg.get_double("baseline_rounds_per_sec", 0.0);
    const bool profiling = cfg.get_bool("profile", false);
    if (profiling) {
        obs::profile_config pc;
        pc.sample_every =
            static_cast<std::uint32_t>(cfg.get_int("profile_sample_every", 16));
        obs::profile_configure(pc);
        obs::profile_reset();
        obs::profile_set_enabled(true);
        std::cerr << "[perf] sampling profiler ON (1 in " << pc.sample_every
                  << " scope entries timed)\n";
    }

    // Phase 1: the end-to-end experiment round loop. Setup (workload
    // generation + forest training + U_c precomputation) is NOT timed; the
    // paper's replay loop is.
    core::experiment_setup::options setup_opts;
    setup_opts.workload.user_count = users;
    setup_opts.workload.horizon =
        static_cast<richnote::sim::sim_time>(rounds) * richnote::sim::default_round;
    setup_opts.forest.tree_count = trees;
    setup_opts.seed = seed;
    std::cerr << "[perf] generating workload: " << users << " users, " << rounds
              << " rounds...\n";
    const core::experiment_setup setup(setup_opts);

    core::experiment_params params;
    params.kind = core::scheduler_kind::richnote;
    params.weekly_budget_mb = budget_mb;
    params.worker_threads = threads;
    params.seed = seed;

    std::cerr << "[perf] timing run_experiment...\n";
    const auto run_start = clock_type::now();
    const core::experiment_result result = core::run_experiment(setup, params);
    const double run_wall = seconds_since(run_start);
    const double rounds_per_sec = static_cast<double>(result.rounds_run) / run_wall;
    const double user_rounds_per_sec =
        rounds_per_sec * static_cast<double>(users);

    // Phase 2: the steady-state scheduler kernel. A loaded queue is planned
    // over and over with a budget too small to matter and nothing delivered,
    // so every iteration exercises exactly the per-round planning path
    // (aging, rho estimation, MCKP greedy, plan materialization + sort).
    const core::audio_preview_generator generator({});
    const energy::energy_model energy;
    core::richnote_scheduler sched({}, energy);
    for (std::size_t i = 0; i < queue_depth; ++i) {
        core::sched_item item;
        item.note.id = i;
        item.note.recipient = 0;
        item.content_utility = 0.1 + 0.8 * static_cast<double>(i % 17) / 16.0;
        item.presentations = generator.generate(30.0 + static_cast<double>(i % 7) * 30.0);
        item.arrived_at = 0.0;
        sched.enqueue(std::move(item));
    }
    core::round_context ctx;
    ctx.now = 0.0;
    ctx.data_budget_bytes = 500'000.0;
    ctx.network = richnote::sim::net_state::cell;
    ctx.metered = true;
    ctx.link_capacity_bytes = 1e9;
    ctx.energy_replenishment = 3000.0;

    // Warm the scratch arenas (first calls may size buffers).
    std::size_t planned_items = 0;
    for (int i = 0; i < 16; ++i) planned_items += sched.plan(ctx).size();

    std::vector<double> latencies_us;
    latencies_us.reserve(plan_iters);
    planned_items = 0;
    const std::uint64_t allocs_before = allocations();
    const auto kernel_start = clock_type::now();
    for (std::size_t i = 0; i < plan_iters; ++i) {
        const auto t0 = clock_type::now();
        planned_items += sched.plan(ctx).size();
        latencies_us.push_back(seconds_since(t0) * 1e6);
    }
    const double kernel_wall = seconds_since(kernel_start);
    // The latency vector itself grows inside the timed region only if the
    // reserve above was insufficient; it is, by construction, not.
    const std::uint64_t kernel_allocs = allocations() - allocs_before;
    const double allocs_per_round =
        static_cast<double>(kernel_allocs) / static_cast<double>(plan_iters);
    const core::mckp_incremental_scratch::stats& mckp = sched.mckp_stats();
    const std::string uarch = std::string(ml::simd::arch_name()) + "/" +
                              ml::simd::isa_name(ml::simd::active_isa());

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << "  \"bench\": \"perf_round_loop\",\n"
         << "  \"schema\": \"richnote-bench-v1\",\n"
         << "  \"params\": {\"users\": " << users << ", \"rounds\": " << rounds
         << ", \"seed\": " << seed << ", \"trees\": " << trees
         << ", \"worker_threads\": " << threads << ", \"weekly_budget_mb\": " << budget_mb
         << ", \"profile\": " << (profiling ? "true" : "false")
         << ", \"uarch\": \"" << uarch << "\"},\n"
         << "  \"round_loop\": {\"rounds_run\": " << result.rounds_run
         << ", \"wall_sec\": " << run_wall << ", \"rounds_per_sec\": " << rounds_per_sec
         << ", \"user_rounds_per_sec\": " << user_rounds_per_sec
         << ", \"total_utility\": " << result.total_utility << "},\n"
         << "  \"baseline\": {\"rounds_per_sec\": " << baseline << ", \"speedup\": "
         << (baseline > 0.0 ? rounds_per_sec / baseline : 0.0) << "},\n"
         << "  \"steady_state\": {\"queue_items\": " << queue_depth
         << ", \"plan_rounds\": " << plan_iters
         << ", \"allocs_per_round\": " << allocs_per_round
         << ", \"p50_round_us\": " << pct(latencies_us, 0.50)
         << ", \"p99_round_us\": " << pct(latencies_us, 0.99)
         << ", \"planned_items_per_sec\": "
         << (kernel_wall > 0 ? static_cast<double>(planned_items) / kernel_wall : 0.0)
         << ", \"mckp_rounds\": " << mckp.rounds
         << ", \"mckp_reused\": " << mckp.reused
         << ", \"mckp_replayed\": " << mckp.replayed
         << ", \"mckp_repaired\": " << mckp.repaired
         << ", \"mckp_cold\": " << mckp.cold
         << "}\n"
         << "}\n";

    if (cfg.has("json")) {
        const std::string path = cfg.get_string("json", "");
        std::ofstream out(path);
        out << json.str();
        std::cerr << "[perf] wrote " << path << '\n';
    } else {
        std::cout << json.str();
    }

    if (profiling) obs::profile_set_enabled(false);

    if (cfg.has("metrics")) {
        // Export the run's aggregates plus the kernel's plan-latency
        // distribution (and, when profile=on, the sampled hot-path totals)
        // through the obs registry under the canonical names.
        obs::metrics_registry registry;
        auto& latency_hist = registry.make_histogram(
            "richnote.sched.plan_latency_us",
            {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
        for (double us : latencies_us) latency_hist.observe(us);
        registry.gauge_set("richnote.bench.rounds_per_sec", rounds_per_sec);
        registry.gauge_set("richnote.bench.allocs_per_round", allocs_per_round);
        obs::profile_export(registry);
        const std::string path = cfg.get_string("metrics", "");
        std::ofstream out(path);
        registry.write_json(out);
        std::cerr << "[perf] wrote metrics to " << path << '\n';
    }

    if (cfg.has("manifest")) {
        obs::run_manifest manifest("perf_round_loop");
        manifest.set_seed(seed);
        manifest.add_config("users", static_cast<std::uint64_t>(users));
        manifest.add_config("rounds", rounds);
        manifest.add_config("trees", static_cast<std::uint64_t>(trees));
        manifest.add_config("threads", static_cast<std::uint64_t>(threads));
        manifest.add_config("weekly_budget_mb", budget_mb);
        manifest.add_config("queue", static_cast<std::uint64_t>(queue_depth));
        manifest.add_config("plan_iters", static_cast<std::uint64_t>(plan_iters));
        manifest.add_config("uarch", uarch);
        manifest.add_timing("round_loop_wall_sec", run_wall);
        manifest.add_timing("rounds_per_sec", rounds_per_sec);
        manifest.add_timing("user_rounds_per_sec", user_rounds_per_sec);
        manifest.add_timing("allocs_per_round", allocs_per_round);
        manifest.add_timing("p50_round_us", pct(latencies_us, 0.50));
        manifest.add_timing("p99_round_us", pct(latencies_us, 0.99));
        manifest.write_file(cfg.get_string("manifest", ""));
        std::cerr << "[perf] wrote manifest to " << cfg.get_string("manifest", "") << '\n';
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

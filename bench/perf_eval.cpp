// Perf harness for the Monte-Carlo evaluation plane (tracked trajectory:
// BENCH_perf.json "eval" section).
//
// Measures replicas/sec through eval::run_evaluation: a fixed scenario pack
// is resolved, the shared world is built (not timed), and every (arm, seed)
// replica is executed across the evaluator's wave-parallel worker pool with
// early stopping disabled so the workload is exactly arms x seeds replicas
// regardless of how the arms happen to separate. That makes the number a
// pure throughput measure of the fan-out machinery — scheduling, replica
// runs, sequential fold — and scripts/bench.sh --gate can floor it.
//
// Usage: perf_eval [scenario=flash_crowd] [users=200] [trees=10] [seed=1]
//                  [seeds=16] [threads=4] [wave=4] [json=PATH] [manifest=PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "eval/evaluator.hpp"
#include "eval/scenario.hpp"
#include "obs/run_manifest.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    using clock_type = std::chrono::steady_clock;

    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"scenario", "users", "trees", "seed", "seeds", "threads", "wave",
                     "json", "manifest"});
    const std::string scenario = cfg.get_string("scenario", "flash_crowd");
    eval::scenario_request req;
    req.users = static_cast<std::size_t>(cfg.get_int("users", 200));
    req.trees = static_cast<std::size_t>(cfg.get_int("trees", 10));
    req.setup_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto seeds = static_cast<std::size_t>(cfg.get_int("seeds", 16));
    const auto threads = static_cast<std::size_t>(cfg.get_int("threads", 4));
    const auto wave = static_cast<std::size_t>(cfg.get_int("wave", 4));

    const eval::scenario_pack pack = eval::make_scenario(scenario, req);
    std::cerr << "[perf] building world: " << req.users << " users, " << req.trees
              << " trees (" << scenario << ")...\n";
    const core::experiment_setup setup(pack.setup);

    eval::eval_params ep;
    ep.arms = pack.arms;
    ep.seeds = seeds;
    ep.base_seed = 1000;
    ep.early_stopping = false; // fixed workload: always arms x seeds replicas
    ep.worker_threads = threads;
    ep.seeds_per_wave = wave;

    const std::size_t replicas = ep.arms.size() * seeds;
    std::cerr << "[perf] timing " << replicas << " replicas (" << ep.arms.size()
              << " arms x " << seeds << " seeds) on " << threads << " threads...\n";
    const auto start = clock_type::now();
    const eval::eval_result result = eval::run_evaluation(setup, ep);
    const double wall_sec =
        std::chrono::duration<double>(clock_type::now() - start).count();
    const double replicas_per_sec =
        wall_sec > 0.0 ? static_cast<double>(replicas) / wall_sec : 0.0;

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << "  \"bench\": \"perf_eval\",\n"
         << "  \"schema\": \"richnote-bench-v1\",\n"
         << "  \"params\": {\"scenario\": \"" << scenario << "\", \"users\": "
         << req.users << ", \"trees\": " << req.trees << ", \"seeds\": " << seeds
         << ", \"arms\": " << ep.arms.size() << ", \"worker_threads\": " << threads
         << ", \"seeds_per_wave\": " << wave << ", \"seed\": " << req.setup_seed
         << "},\n"
         << "  \"eval\": {\"replicas\": " << result.replicas_executed
         << ", \"wall_sec\": " << wall_sec
         << ", \"replicas_per_sec\": " << replicas_per_sec << ", \"leader\": \""
         << result.arms[result.leader].name << "\"}\n"
         << "}\n";

    if (cfg.has("json")) {
        const std::string path = cfg.get_string("json", "");
        std::ofstream out(path);
        out << json.str();
        std::cerr << "[perf] wrote " << path << '\n';
    } else {
        std::cout << json.str();
    }

    if (cfg.has("manifest")) {
        obs::run_manifest manifest("perf_eval");
        manifest.set_seed(req.setup_seed);
        manifest.add_config("scenario", scenario);
        manifest.add_config("users", static_cast<std::uint64_t>(req.users));
        manifest.add_config("trees", static_cast<std::uint64_t>(req.trees));
        manifest.add_config("seeds", static_cast<std::uint64_t>(seeds));
        manifest.add_config("threads", static_cast<std::uint64_t>(threads));
        manifest.add_config("seed_set_hash", eval::hex64(result.seed_set_hash));
        manifest.add_timing("wall_sec", wall_sec);
        manifest.add_timing("replicas_per_sec", replicas_per_sec);
        manifest.write_file(cfg.get_string("manifest", ""));
        std::cerr << "[perf] wrote manifest to " << cfg.get_string("manifest", "")
                  << '\n';
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

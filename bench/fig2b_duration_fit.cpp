// Fig. 2(b): duration-utility model selection from the stop-duration survey.
//
// The paper asked 80 users to stop a track "at the point when ... the
// duration was barely enough for a good notification", translated the CDF
// of stop durations into util(d), and fit two families:
//   logarithmic  util(d) = a + b log(1+d)         (Eq. 8: a=-0.397, b=0.352)
//   polynomial   util(d) = a (1 - d/D)^b          (Eq. 9: a=0.253, b=2.087, D=40)
// finding the logarithmic fit better. This harness reruns that pipeline on
// the simulated survey and reports both fits with their goodness-of-fit.
//
// Usage: fig2b_duration_fit [seed=1] [respondents=80] [csv=...]
#include <cmath>
#include <iostream>

#include "common/bootstrap.hpp"
#include "common/config.hpp"
#include "common/regression.hpp"
#include "common/table.hpp"
#include "trace/survey.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"seed", "respondents", "csv", "users"}); // users accepted (and ignored) so sweep scripts can pass it uniformly
    trace::survey_params params;
    params.respondents = static_cast<std::size_t>(cfg.get_int("respondents", 80));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    const trace::survey survey(params, seed);

    // Dense duration grid over the surveyed preview range.
    std::vector<double> grid;
    for (double d = 2.0; d <= 40.0; d += 2.0) grid.push_back(d);
    const auto util = survey.duration_utility(grid);

    const auto log_fit = fit_log_law(grid, util);
    // The polynomial family needs strictly positive utilities; shift zeros.
    std::vector<double> positive_util = util;
    for (auto& u : positive_util) u = std::max(u, 1e-3);
    const auto poly_fit = fit_power_law(grid, positive_util, 120.0, 400);

    bench::figure_output cdf({"duration (s)", "survey util(d)", "log fit", "poly fit"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        cdf.add_row({format_double(grid[i], 0), format_double(util[i], 3),
                     format_double(log_fit.intercept +
                                       log_fit.slope * std::log(1.0 + grid[i]),
                                   3),
                     format_double(poly_fit.evaluate(grid[i]), 3)});
    }
    std::optional<std::string> csv;
    if (cfg.has("csv")) csv = cfg.get_string("csv", "");
    cdf.emit("Fig. 2(b): stop-duration CDF and the two candidate fits", csv);

    bench::figure_output fits({"model", "parameters", "RMSE", "R^2"});
    fits.add_row({"logarithmic (ours)",
                  "a=" + format_double(log_fit.intercept, 3) +
                      " b=" + format_double(log_fit.slope, 3),
                  format_double(log_fit.rmse, 4), format_double(log_fit.r_squared, 4)});
    fits.add_row({"polynomial (ours)",
                  "a=" + format_double(poly_fit.scale, 3) +
                      " b=" + format_double(poly_fit.exponent, 3) +
                      " D=" + format_double(poly_fit.horizon, 1),
                  format_double(poly_fit.rmse, 4), format_double(poly_fit.r_squared, 4)});
    fits.add_row({"logarithmic (paper Eq. 8)", "a=-0.397 b=0.352", "-", "-"});
    fits.add_row({"polynomial (paper Eq. 9)", "a=0.253 b=2.087 D=40", "-", "-"});
    fits.emit("Fig. 2(b): model selection", std::nullopt);

    std::cout << (log_fit.rmse <= poly_fit.rmse
                      ? "logarithmic fit wins (matches the paper's choice)\n"
                      : "polynomial fit wins (paper chose logarithmic)\n");

    // How much does the survey's limited scale (80 respondents) matter?
    // Bootstrap the respondents and refit Eq. 8 (§V-B closes by noting a
    // larger survey "can give better results" — these intervals say how
    // much better to expect).
    const auto& stops = survey.stop_durations();
    auto refit = [&](const std::vector<std::size_t>& index, bool slope) {
        std::vector<double> resampled;
        resampled.reserve(index.size());
        for (std::size_t i : index) resampled.push_back(stops[i]);
        std::sort(resampled.begin(), resampled.end());
        std::vector<double> util_cdf;
        util_cdf.reserve(grid.size());
        for (double d : grid) {
            const auto below =
                std::upper_bound(resampled.begin(), resampled.end(), d) -
                resampled.begin();
            util_cdf.push_back(static_cast<double>(below) /
                               static_cast<double>(resampled.size()));
        }
        const auto fit = fit_log_law(grid, util_cdf);
        return slope ? fit.slope : fit.intercept;
    };
    const auto ci_b = bootstrap_ci(stops.size(), 400, 0.95, seed ^ 0xb00ULL,
                                   [&](const auto& idx) { return refit(idx, true); });
    const auto ci_a = bootstrap_ci(stops.size(), 400, 0.95, seed ^ 0xa00ULL,
                                   [&](const auto& idx) { return refit(idx, false); });
    std::cout << "bootstrap 95% CI over respondents: a in ["
              << format_double(ci_a.lo, 3) << ", " << format_double(ci_a.hi, 3)
              << "], b in [" << format_double(ci_b.lo, 3) << ", "
              << format_double(ci_b.hi, 3) << "]  (paper: a=-0.397, b=0.352)\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

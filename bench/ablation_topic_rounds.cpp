// Ablation: per-topic round cadence (§II).
//
// Spotify's hybrid engine serves friend feeds in real time and album/
// playlist updates in batch; RichNote's round model is pitched as the
// middle ground, with round duration "proportional to the frequency of the
// feed". This ablation keeps friend feeds on the 1-hour cadence and admits
// the batch topics (album releases, playlist updates) only every k-th
// round, measuring what the slower cadence costs: batch items queue longer
// (higher mean delay), while utility and delivery are barely affected —
// the paper's argument for batching the infrequent topics.
//
// Usage: ablation_topic_rounds [users=200] [seed=1] [trees=30] [budget=10] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"batch cadence", "delay(min)", "delivery_ratio",
                              "total_utility", "recall"});
    for (std::uint32_t multiplier : {1u, 4u, 12u, 24u}) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.batch_topic_round_multiplier = multiplier;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);
        const std::string label =
            multiplier == 1 ? "every round (paper)" : "every " + std::to_string(multiplier) + "h";
        out.add_row({label, format_double(r.mean_delay_min, 1),
                     format_double(r.delivery_ratio, 3),
                     format_double(r.total_utility, 1), format_double(r.recall, 3)});
    }
    out.emit("Ablation: album/playlist admission cadence (budget " +
                 format_double(budget, 0) + " MB)",
             opts.csv_path);
    std::cout << "expected: mean delay grows with the batch cadence (batch topics wait "
                 "for their\nround) while delivery and utility stay ~flat — batching "
                 "the infrequent topics is cheap.\n";
    bench::write_run_manifest(opts, "ablation_topic_rounds");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

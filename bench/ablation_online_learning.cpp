// Ablation: offline-trained vs online-learned content utility.
//
// The paper trains its Random Forest offline on a full week of logs
// (§V-A), yet motivates RichNote with "efficient online analysis ... where
// arrival of new content is the norm". This ablation closes that gap: the
// online mode starts from a constant prior (no model at all), observes
// engagement feedback ONLY for notifications it actually delivered, and
// refits periodically during the week. Compared against the paper's
// offline oracle-of-the-logs model and a never-learning constant prior.
//
// Usage: ablation_online_learning [users=200] [seed=1] [trees=30] [budget=10]
//        [retrain_every=24] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget", "retrain_every"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto retrain_every =
        static_cast<std::size_t>(cfg.get_int("retrain_every", 24));
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"U_c model", "total_utility", "utility_clicked",
                              "recall", "precision"});

    auto run_with = [&](const char* label, bool online, std::size_t retrain,
                        double prior) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.online_learning = online;
        params.online.retrain_every = retrain;
        params.online.prior = prior;
        params.online.forest.tree_count = opts.setup.forest.tree_count;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);
        out.add_row({label, format_double(r.total_utility, 1),
                     format_double(r.utility_clicked, 1), format_double(r.recall, 3),
                     format_double(r.precision, 3)});
    };

    run_with("offline (paper: trained on full logs)", false, 0, 0.5);
    run_with("online (cold start, learns from deliveries)", true, retrain_every, 0.5);
    // Never retrains: a pure constant prior (retrain interval past the run).
    run_with("constant prior 0.5 (no learning)", true, 100000, 0.5);

    out.emit("Ablation: offline vs online content-utility learning (budget " +
                 format_double(budget, 0) + " MB, refit every " +
                 std::to_string(retrain_every) + " rounds)",
             opts.csv_path);
    std::cout << "reading: total_utility mixes each run's own U_c units; compare "
                 "utility_clicked\n(clicked items are the ground-truth-relevant ones) "
                 "and precision. Online should sit\nbetween the constant prior and the "
                 "offline model.\n";
    bench::write_run_manifest(opts, "ablation_online_learning");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

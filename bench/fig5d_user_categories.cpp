// Fig. 5(d): utility across user categories (§V-D4).
//
// Users are bucketed by the number of content items they receive; the
// figure reports mean per-user delivered utility per bucket with error
// bars. Expected shape (paper): "users with higher number of items benefit
// more".
//
// Usage: fig5d_user_categories [users=200] [seed=1] [trees=30] [budget=20] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 20.0);
    const auto setup = bench::build_setup(opts);

    const auto r = bench::run_cell(*setup, core::scheduler_kind::richnote, 3, budget, opts);

    bench::figure_output out(
        {"items_per_user", "users", "mean_utility", "stddev (error bar)"});
    for (const auto& row : r.user_categories) {
        out.add_row({row.label, std::to_string(row.users),
                     format_double(row.mean_utility, 2),
                     format_double(row.stddev_utility, 2)});
    }
    out.emit("Fig. 5(d): per-user utility by item-count category (budget " +
                 format_double(budget, 0) + " MB)",
             opts.csv_path);
    std::cout << "paper shape: mean utility increases across categories — heavier users "
                 "benefit more.\n";
    bench::write_run_manifest(opts, "fig5d_user_categories");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

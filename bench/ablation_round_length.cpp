// Ablation: round length (§II).
//
// "RichNote incorporates a round-based model ... and allows us to tune
// time duration of each round proportional to the frequency of the feed.
// For example, friend feeds can be delivered every few minutes whereas
// notifications related to artist and playlists can be delivered in every
// few hours." The paper fixes 1-hour rounds for its evaluation; this
// ablation sweeps the round duration from 10 minutes to 6 hours at a fixed
// weekly budget, showing the latency/efficiency trade the round knob
// controls (shorter rounds cut queuing delay but pay more radio sessions).
//
// Usage: ablation_round_length [users=200] [seed=1] [trees=30] [budget=10] [csv=...]
#include <iostream>

#include "bench_common.hpp"
#include "sim/time.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto setup = bench::build_setup(opts);

    struct sweep_point {
        const char* label;
        double round_sec;
    };
    const std::vector<sweep_point> rounds = {{"10min", 600.0},
                                             {"30min", 1800.0},
                                             {"1h (paper)", 3600.0},
                                             {"3h", 3.0 * 3600.0},
                                             {"6h", 6.0 * 3600.0}};

    bench::figure_output out({"round", "delay(min)", "delivery_ratio", "total_utility",
                              "energy(KJ)", "rounds_run"});
    for (const auto& point : rounds) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.round = point.round_sec;
        // Keep kappa per HOUR constant: scale the per-round allowance.
        const double scale = point.round_sec / 3600.0;
        params.lyapunov.kappa = 3000.0 * scale;
        params.lyapunov.initial_energy_credit = params.lyapunov.kappa;
        params.energy_policy.kappa_joules_per_round = params.lyapunov.kappa;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);
        out.add_row({point.label, format_double(r.mean_delay_min, 1),
                     format_double(r.delivery_ratio, 3),
                     format_double(r.total_utility, 1), format_double(r.energy_kj, 1),
                     std::to_string(r.rounds_run)});
    }
    out.emit("Ablation: round-length sweep (budget " + format_double(budget, 0) + " MB)",
             opts.csv_path);
    std::cout << "expected: delay scales with the round length (items wait for the next "
                 "boundary);\nenergy rises for short rounds (more radio sessions), "
                 "utility is stable.\n";
    bench::write_run_manifest(opts, "ablation_round_length");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Ablation: the Lyapunov energy virtual queue under a tight energy budget.
//
// With the paper's kappa (3 KJ/h) the IMC'09 radio constants leave the
// energy constraint slack; the Fig. 4(c) claim — RichNote "strives to
// control energy consumption and keep it below the specified threshold"
// while UTIL spikes — is clearest when kappa binds. This ablation shrinks
// kappa to a few joules per round and compares RichNote's total energy
// (which the P(t) virtual queue must cap near kappa * rounds) against the
// baselines, which ignore energy entirely.
//
// Usage: ablation_energy_cap [users=200] [seed=1] [trees=30] [budget=50]
//        [kappa=4] [csv=...]    (kappa in joules per round)
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget", "kappa"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 50.0);
    const double kappa = cfg.get_double("kappa", 4.0);
    const auto setup = bench::build_setup(opts);

    const double rounds = 169.0;
    const double users = static_cast<double>(setup->world().user_count());
    const double envelope_kj = kappa * rounds * users / 1000.0;

    bench::figure_output out({"method", "energy(KJ)", "within_envelope?",
                              "delivery_ratio", "total_utility"});
    // RichNote with the tight kappa.
    core::experiment_params params;
    params.kind = core::scheduler_kind::richnote;
    params.weekly_budget_mb = budget;
    params.lyapunov.kappa = kappa;
    params.lyapunov.initial_energy_credit = kappa;
    params.energy_policy.kappa_joules_per_round = kappa;
    params.seed = opts.run_seed;
    const auto rn = core::run_experiment(*setup, params);
    out.add_row({"RichNote(kappa=" + format_double(kappa, 0) + "J/rnd)",
                 format_double(rn.energy_kj, 1),
                 rn.energy_kj <= envelope_kj * 1.10 ? "yes" : "NO",
                 format_double(rn.delivery_ratio, 3),
                 format_double(rn.total_utility, 1)});

    for (auto kind : {core::scheduler_kind::fifo, core::scheduler_kind::util}) {
        const auto r = bench::run_cell(*setup, kind, 3, budget, opts);
        out.add_row({r.scheduler_name, format_double(r.energy_kj, 1),
                     r.energy_kj <= envelope_kj * 1.10 ? "yes" : "NO",
                     format_double(r.delivery_ratio, 3),
                     format_double(r.total_utility, 1)});
    }
    out.emit("Ablation: tight per-round energy budget (envelope " +
                 format_double(envelope_kj, 1) + " KJ for the population, budget " +
                 format_double(budget, 0) + " MB)",
             opts.csv_path);
    std::cout << "expected: RichNote's virtual energy queue keeps it inside the envelope; "
                 "the baselines\nignore energy and may exceed it (Fig. 4(c)'s shape, made "
                 "binding).\n";
    bench::write_run_manifest(opts, "ablation_energy_cap");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Shared plumbing for the figure-reproduction harnesses in bench/.
//
// Every harness accepts `key=value` arguments (users=..., seed=...,
// trees=..., threads=..., csv=out.csv) so the paper-scale experiment (10k
// users) can be
// approached on bigger machines while the default stays laptop-sized. One
// experiment_setup (workload + trained forest) is shared across all sweep
// points of a figure, like the paper replays one trace for every method.
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "obs/expo_server.hpp"
#include "obs/run_manifest.hpp"

namespace richnote::bench {

/// The §V-D1 sweep: weekly data budget from 1 MB to 100 MB.
inline const std::vector<double> default_budgets_mb = {1, 2, 5, 10, 20, 50, 100};

struct bench_options {
    core::experiment_setup::options setup;
    std::vector<double> budgets_mb = default_budgets_mb;
    std::optional<std::string> csv_path;
    std::uint64_t run_seed = 5;
    /// Worker threads for the per-user round loop (threads= key). Results
    /// are bit-identical for any value; 0 = hardware_concurrency.
    std::size_t worker_threads = 1;
    /// Run-manifest output path (manifest= key); empty = no manifest.
    std::optional<std::string> manifest_path;
    /// Live exposition server (expo_port= key; 0 = ephemeral). Shared so
    /// bench_options stays copyable; every run_cell publishes into it.
    std::shared_ptr<obs::expo_server> expo;
    /// Wall-clock start, so write_run_manifest records the harness runtime.
    std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();
};

/// Parses the common command-line keys; `extra_keys` are tool-specific.
inline bench_options parse_options(int argc, char** argv,
                                   std::vector<std::string> extra_keys = {}) {
    const config cfg = config::from_args(argc, argv);
    std::vector<std::string> allowed = {"users", "seed", "trees", "csv", "budgets",
                                        "threads", "manifest", "expo_port"};
    allowed.insert(allowed.end(), extra_keys.begin(), extra_keys.end());
    cfg.restrict_to(allowed);

    bench_options opts;
    opts.setup.workload.user_count = static_cast<std::size_t>(cfg.get_int("users", 200));
    opts.setup.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    opts.setup.forest.tree_count = static_cast<std::size_t>(cfg.get_int("trees", 30));
    opts.worker_threads = static_cast<std::size_t>(cfg.get_int("threads", 1));
    if (cfg.has("csv")) opts.csv_path = cfg.get_string("csv", "");
    if (cfg.has("manifest")) opts.manifest_path = cfg.get_string("manifest", "");
    if (cfg.has("expo_port")) {
        opts.expo = std::make_shared<obs::expo_server>(
            static_cast<std::uint16_t>(cfg.get_int("expo_port", 0)));
        std::cerr << "[expo] serving http://127.0.0.1:" << opts.expo->port()
                  << "/metrics during the run\n";
    }
    // budgets=1,5,20 style override; strict parse rejects items like "5x"
    // that the old std::stod loop silently truncated.
    opts.budgets_mb = cfg.get_double_list("budgets", default_budgets_mb);
    return opts;
}

/// Builds the shared setup and echoes trace statistics.
inline std::unique_ptr<core::experiment_setup> build_setup(const bench_options& opts) {
    std::cerr << "[setup] generating workload: " << opts.setup.workload.user_count
              << " users, 1 week, seed " << opts.setup.seed << " ...\n";
    auto setup = std::make_unique<core::experiment_setup>(opts.setup);
    const auto& trace = setup->world().notifications();
    std::cerr << "[setup] " << trace.total_count << " notifications ("
              << trace.attended_count << " attended, " << trace.clicked_count
              << " clicked); forest: " << opts.setup.forest.tree_count << " trees\n";
    return setup;
}

/// Runs one (scheduler, budget) cell of a figure.
inline core::experiment_result run_cell(const core::experiment_setup& setup,
                                        core::scheduler_kind kind, core::level_t level,
                                        double budget_mb, const bench_options& opts,
                                        bool wifi = false) {
    core::experiment_params params;
    params.kind = kind;
    params.fixed_level = level;
    params.weekly_budget_mb = budget_mb;
    params.wifi_enabled = wifi;
    params.seed = opts.run_seed;
    params.worker_threads = opts.worker_threads;
    params.progress = opts.expo.get();
    return core::run_experiment(setup, params);
}

/// Accumulates a figure's series and renders them as an aligned table on
/// stdout plus, when requested, a machine-readable CSV.
class figure_output {
public:
    explicit figure_output(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void emit(const std::string& title, const std::optional<std::string>& csv_path) const {
        std::cout << "\n== " << title << " ==\n";
        table t(headers_);
        for (const auto& row : rows_) t.add_row(row);
        std::cout << t;
        if (!csv_path) return;
        std::ofstream out(*csv_path);
        csv_writer writer(out, headers_);
        for (const auto& row : rows_) writer.write_row(row);
        std::cerr << "[csv] wrote " << rows_.size() << " rows to " << *csv_path << '\n';
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Writes the run manifest for a finished harness run (manifest= key): the
/// effective configuration, the seed pair and the wall time since
/// bench_options was parsed. No-op when the key was not given.
inline void write_run_manifest(const bench_options& opts, const std::string& tool,
                               std::size_t rows_written = 0) {
    if (!opts.manifest_path) return;
    obs::run_manifest manifest(tool);
    manifest.set_seed(opts.setup.seed);
    manifest.add_config("users", static_cast<std::uint64_t>(opts.setup.workload.user_count));
    manifest.add_config("trees", static_cast<std::uint64_t>(opts.setup.forest.tree_count));
    manifest.add_config("threads", static_cast<std::uint64_t>(opts.worker_threads));
    manifest.add_config("run_seed", opts.run_seed);
    std::string budgets;
    for (double b : opts.budgets_mb) {
        if (!budgets.empty()) budgets += ',';
        budgets += std::to_string(b);
    }
    manifest.add_config("budgets_mb", budgets);
    if (opts.csv_path) manifest.add_config("csv", *opts.csv_path);
    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - opts.started)
            .count();
    manifest.add_timing("wall_sec", wall_sec);
    manifest.add_timing("rows_written", static_cast<double>(rows_written));
    manifest.write_file(*opts.manifest_path);
    std::cerr << "[manifest] wrote " << *opts.manifest_path << '\n';
}

} // namespace richnote::bench

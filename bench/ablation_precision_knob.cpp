// Ablation: the precision/recall trade the paper points at in §V-D1 —
// "Note that it is possible to achieve higher precision using RichNote by
// only delivering notifications with higher utility value. However,
// RichNote makes use of all the available data budget to deliver more
// notifications even when they are not being clicked on by the users."
//
// This harness sweeps the min-content-utility admission threshold and
// reports the resulting precision/recall/utility frontier, quantifying the
// sentence the paper leaves unexplored.
//
// Usage: ablation_precision_knob [users=200] [seed=1] [trees=30] [budget=10] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"min_U_c", "precision", "recall", "delivery_ratio",
                              "total_utility", "avg_utility/delivery"});
    for (double threshold : {0.0, 0.2, 0.35, 0.5, 0.65, 0.8}) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.min_content_utility = threshold;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);
        out.add_row({format_double(threshold, 2), format_double(r.precision, 3),
                     format_double(r.recall, 3), format_double(r.delivery_ratio, 3),
                     format_double(r.total_utility, 1),
                     format_double(r.avg_utility, 3)});
    }
    out.emit("Ablation: precision/recall frontier via the admission threshold (budget " +
                 format_double(budget, 0) + " MB)",
             opts.csv_path);
    std::cout << "expected: precision rises and recall/delivery fall monotonically with "
                 "the threshold;\nper-delivery utility rises while total utility peaks "
                 "somewhere in between.\n";
    bench::write_run_manifest(opts, "ablation_precision_knob");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Perf harness for service mode (tracked trajectory: BENCH_perf.json).
//
// Measures the two throughput numbers `richnote serve` is sized by:
//
//  1. Service round loop: a fleet of users= brokers (defaults far above the
//     training trace's user count — brokers are synthesized per id, so a
//     model trained on train_users= serves millions) runs rounds= rounds on
//     the persistent worker pool, after the training trace has been
//     replayed over the wire so the low ids carry real queues. Reports
//     service_rounds_per_sec and user_rounds_per_sec — the headline
//     "simulated users per host" capacity claim.
//
//  2. Ingest plane: ingest_msgs= pre-rendered NDJSON lines are pushed
//     through parse + validation + the MPSC admission ring from a single
//     producer thread. Reports ingest_msgs_per_sec. The ring is sized to
//     hold the whole burst, so the number is the parse+enqueue cost, not a
//     backpressure artifact (any backpressure fails the run loudly).
//
// Fleet construction is timed separately (fleet_build_sec) because elastic
// resharding pays it again on every reshard.
//
// Output is machine-readable JSON on stdout (or json=PATH); scripts/bench.sh
// folds it into BENCH_perf.json as the "service" section and the gate
// regresses both throughput numbers.
//
// Usage: perf_service [train_users=200] [users=1000000] [rounds=10]
//                     [ingest_msgs=200000] [threads=1] [seed=1] [trees=10]
//                     [budget=20] [queue=524288] [json=PATH] [manifest=PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/experiment.hpp"
#include "core/service.hpp"
#include "core/wire.hpp"
#include "ml/simd_dispatch.hpp"
#include "obs/run_manifest.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

} // namespace

int main(int argc, char** argv) try {
    using namespace richnote;

    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"train_users", "users", "rounds", "ingest_msgs", "threads", "seed",
                     "trees", "budget", "queue", "json", "manifest"});
    const auto train_users = static_cast<std::size_t>(cfg.get_int("train_users", 200));
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 1'000'000));
    const auto rounds = static_cast<std::uint64_t>(cfg.get_int("rounds", 10));
    const auto ingest_msgs = static_cast<std::size_t>(cfg.get_int("ingest_msgs", 200'000));
    const auto threads = static_cast<std::size_t>(cfg.get_int("threads", 1));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto trees = static_cast<std::size_t>(cfg.get_int("trees", 10));
    const double budget_mb = cfg.get_double("budget", 20.0);
    const auto queue = static_cast<std::size_t>(cfg.get_int("queue", 1 << 19));

    // Setup (not timed): a small training workload; the fleet is then
    // synthesized at users= scale from the model it produced.
    core::experiment_setup::options setup_opts;
    setup_opts.workload.user_count = train_users;
    setup_opts.forest.tree_count = trees;
    setup_opts.seed = seed;
    std::cerr << "[perf] training setup: " << train_users << " users, " << trees
              << " trees...\n";
    const core::experiment_setup setup(setup_opts);
    const auto& trace = setup.world().notifications();
    std::cerr << "[perf] trace: " << trace.total_count << " notifications\n";

    core::service_params sp;
    sp.experiment.kind = core::scheduler_kind::richnote;
    sp.experiment.weekly_budget_mb = budget_mb;
    sp.experiment.seed = seed;
    sp.user_count = users;
    sp.worker_threads = threads;
    sp.queue_capacity = queue;

    std::cerr << "[perf] building fleet: " << users << " brokers...\n";
    const auto build_start = clock_type::now();
    core::notification_service svc(setup, sp);
    const double fleet_build_sec = seconds_since(build_start);
    std::cerr << "[perf] fleet built in " << fleet_build_sec << " s\n";

    // Phase 1: the round loop. Replay the training trace over the wire so
    // the first train_users brokers carry real scheduling queues, then time
    // rounds= service rounds over the whole fleet.
    for (const auto& stream : trace.per_user) {
        for (const auto& n : stream) {
            if (svc.ingest(n) != core::notification_service::ingest_status::accepted) {
                std::cerr << "error: warmup ingest rejected (queue= too small?)\n";
                return 1;
            }
        }
    }
    std::cerr << "[perf] timing " << rounds << " service rounds...\n";
    const auto rounds_start = clock_type::now();
    svc.run_rounds(rounds);
    const double rounds_wall = seconds_since(rounds_start);
    const double service_rounds_per_sec = static_cast<double>(rounds) / rounds_wall;
    const double user_rounds_per_sec =
        service_rounds_per_sec * static_cast<double>(users);

    // Phase 2: the ingest plane. Lines are pre-rendered so the timed loop
    // is parse + validate + enqueue, exactly what a wire producer costs the
    // service. The ring must absorb the whole burst: backpressure here
    // means the harness is mis-sized, not that the plane is slow.
    const std::size_t burst = std::min(ingest_msgs, queue);
    if (burst < ingest_msgs) {
        std::cerr << "[perf] ingest_msgs clamped to ring capacity " << burst << "\n";
    }
    std::vector<trace::notification> flat = trace.flatten();
    std::vector<std::string> lines;
    lines.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
        lines.push_back(core::format_wire_line(flat[i % flat.size()]));
    }
    std::cerr << "[perf] timing ingest of " << burst << " wire lines...\n";
    const auto before = svc.counters();
    const auto ingest_start = clock_type::now();
    for (const std::string& line : lines) svc.ingest_line(line);
    const double ingest_wall = seconds_since(ingest_start);
    const auto after = svc.counters();
    const std::uint64_t accepted = after.ingest_accepted - before.ingest_accepted;
    const std::uint64_t pushed_back =
        after.ingest_rejected_backpressure - before.ingest_rejected_backpressure;
    const std::uint64_t parse_errors =
        after.ingest_rejected_parse - before.ingest_rejected_parse;
    const double ingest_msgs_per_sec = static_cast<double>(burst) / ingest_wall;
    if (pushed_back != 0 || parse_errors != 0) {
        std::cerr << "error: ingest burst saw " << pushed_back << " backpressure / "
                  << parse_errors << " parse rejections\n";
        return 1;
    }
    svc.run_round(); // drain the burst so the final counters balance

    const std::string uarch = std::string(ml::simd::arch_name()) + "/" +
                              ml::simd::isa_name(ml::simd::active_isa());

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << "  \"bench\": \"perf_service\",\n"
         << "  \"schema\": \"richnote-bench-v1\",\n"
         << "  \"params\": {\"train_users\": " << train_users << ", \"users\": " << users
         << ", \"rounds\": " << rounds << ", \"ingest_msgs\": " << burst
         << ", \"worker_threads\": " << threads << ", \"seed\": " << seed
         << ", \"trees\": " << trees << ", \"weekly_budget_mb\": " << budget_mb
         << ", \"uarch\": \"" << uarch << "\"},\n"
         << "  \"fleet\": {\"build_sec\": " << fleet_build_sec
         << ", \"brokers_per_sec\": "
         << (fleet_build_sec > 0 ? static_cast<double>(users) / fleet_build_sec : 0.0)
         << "},\n"
         << "  \"service\": {\"rounds_run\": " << rounds
         << ", \"wall_sec\": " << rounds_wall
         << ", \"service_rounds_per_sec\": " << service_rounds_per_sec
         << ", \"user_rounds_per_sec\": " << user_rounds_per_sec
         << ", \"admitted\": " << after.admitted << "},\n"
         << "  \"ingest\": {\"messages\": " << burst
         << ", \"wall_sec\": " << ingest_wall
         << ", \"ingest_msgs_per_sec\": " << ingest_msgs_per_sec
         << ", \"accepted\": " << accepted << "}\n"
         << "}\n";

    if (cfg.has("json")) {
        const std::string path = cfg.get_string("json", "");
        std::ofstream out(path);
        out << json.str();
        std::cerr << "[perf] wrote " << path << '\n';
    } else {
        std::cout << json.str();
    }

    if (cfg.has("manifest")) {
        obs::run_manifest manifest("perf_service");
        manifest.set_seed(seed);
        manifest.add_config("train_users", static_cast<std::uint64_t>(train_users));
        manifest.add_config("users", static_cast<std::uint64_t>(users));
        manifest.add_config("rounds", rounds);
        manifest.add_config("ingest_msgs", static_cast<std::uint64_t>(burst));
        manifest.add_config("threads", static_cast<std::uint64_t>(threads));
        manifest.add_config("uarch", uarch);
        manifest.add_timing("fleet_build_sec", fleet_build_sec);
        manifest.add_timing("service_rounds_per_sec", service_rounds_per_sec);
        manifest.add_timing("user_rounds_per_sec", user_rounds_per_sec);
        manifest.add_timing("ingest_msgs_per_sec", ingest_msgs_per_sec);
        manifest.write_file(cfg.get_string("manifest", ""));
        std::cerr << "[perf] wrote manifest to " << cfg.get_string("manifest", "") << '\n';
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Ablation: MCKP heuristic quality and the content-utility signal.
//
// Part 1 — greedy vs exact: on random knapsack instances shaped like the
// scheduler's (six-level concave audio menus, varying content utility),
// compare Algorithm 1's greedy (paper-faithful stop-at-first-infeasible),
// the skip_infeasible extension, the fractional upper bound, and the exact
// DP. The §IV argument predicts a gap of at most one upgrade's utility.
//
// Part 2 — oracle vs learned vs constant content utility: rerun the full
// experiment with each utility signal to quantify how much of RichNote's
// win comes from the classifier (DESIGN.md ablation list).
//
// Usage: ablation_mckp [users=120] [seed=1] [trees=30] [budget=20]
//        [instances=200] [csv=...]
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/mckp.hpp"
#include "core/presentation.hpp"

namespace {

using namespace richnote;

void run_greedy_vs_exact(std::uint64_t seed, int instances) {
    const core::audio_preview_generator generator{
        core::audio_preview_generator::params{}};
    const auto levels = generator.generate(276.0);

    rng gen(seed);
    running_stats gap_pct, frac_gap_pct;
    int greedy_optimal = 0;
    for (int trial = 0; trial < instances; ++trial) {
        std::vector<core::mckp_item> items;
        const std::size_t n = 3 + gen.index(8);
        for (std::size_t i = 0; i < n; ++i)
            items.push_back(core::make_mckp_item(levels, gen.uniform(0.05, 1.0)));
        // Budgets around a few items' worth of previews; coarse sizes for
        // a tractable DP (resolution 10 KB).
        const double budget = gen.uniform(2e5, 3e6);
        core::mckp_options skip;
        skip.skip_infeasible = true;
        const auto greedy = core::select_presentations(items, budget, skip);
        const auto exact = core::mckp_exact(items, budget, 10'000.0);
        if (exact.total_utility <= 0) continue;
        const double gap =
            100.0 * (exact.total_utility - greedy.total_utility) / exact.total_utility;
        gap_pct.add(std::max(0.0, gap));
        frac_gap_pct.add(100.0 *
                         std::max(0.0, greedy.fractional_bound - greedy.total_utility) /
                         std::max(greedy.total_utility, 1e-9));
        if (gap <= 1e-9) ++greedy_optimal;
    }

    bench::figure_output out({"metric", "value"});
    out.add_row({"instances", std::to_string(gap_pct.count())});
    out.add_row({"greedy == DP-exact", std::to_string(greedy_optimal) + " / " +
                                           std::to_string(gap_pct.count())});
    out.add_row({"mean gap vs exact (%)", format_double(gap_pct.mean(), 3)});
    out.add_row({"max gap vs exact (%)", format_double(gap_pct.max(), 3)});
    out.add_row({"mean fractional-bound slack (%)", format_double(frac_gap_pct.mean(), 3)});
    out.emit("Ablation 1: greedy MCKP vs exact DP on audio-menu instances",
             std::nullopt);
}

void run_utility_signals(const bench::bench_options& opts, double budget) {
    bench::figure_output out(
        {"content-utility signal", "total_utility", "recall", "precision"});
    for (const bool oracle : {false, true}) {
        auto setup_opts = opts.setup;
        setup_opts.oracle_utility = oracle;
        const core::experiment_setup setup(setup_opts);
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(setup, params);
        out.add_row({oracle ? "oracle (latent click prob.)" : "learned random forest",
                     format_double(r.total_utility, 1), format_double(r.recall, 3),
                     format_double(r.precision, 3)});
    }
    out.emit("Ablation 2: learned vs oracle content utility (budget " +
                 format_double(budget, 0) + " MB)",
             std::nullopt);
}

} // namespace

int main(int argc, char** argv) try {
    auto opts = bench::parse_options(argc, argv, {"budget", "instances"});
    opts.setup.workload.user_count =
        std::min<std::size_t>(opts.setup.workload.user_count, 120); // two setups built
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 20.0);
    const int instances = static_cast<int>(cfg.get_int("instances", 200));

    run_greedy_vs_exact(opts.setup.seed, instances);
    run_utility_signals(opts, budget);
    bench::write_run_manifest(opts, "ablation_mckp");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Perf harness for content-utility inference (tracked trajectory:
// BENCH_perf.json).
//
// U_c precomputation and online retraining both score every notification
// through the forest; this harness measures that kernel three ways on one
// synthetic dataset:
//  - forest_item:  random_forest::predict_proba per row (tree objects,
//                  pointer-chasing node vectors) — the pre-flattening path;
//  - flat_item:    flat_forest::predict_proba per row (one SoA arena);
//  - flat_batch:   flat_forest batched predict over the whole matrix
//                  (cache-blocked, trees-outer / rows-inner) through the
//                  runtime-dispatched SIMD kernel — the
//                  cached_content_utility precompute path;
//  - flat_batch_mt: the same batch sharded across worker threads.
// Each scorer runs repeat= passes and reports its best items/sec (best-of-N
// rides out scheduler noise). The harness also times random_forest::fit
// sequentially and with fit_threads= threads, and verifies that every path
// — including the batch under BOTH dispatch targets (the active kernel and
// the forced-scalar fallback) — produces bit-identical probabilities before
// reporting anything. The detected ISA + chosen kernel is reported as the
// `uarch` field so trajectory comparisons can tell a cross-machine run from
// a regression.
//
// Output is machine-readable JSON on stdout (or json=PATH); scripts/bench.sh
// folds it into BENCH_perf.json at the repo root.
//
// Usage: perf_inference [rows=20000] [trees=50] [seed=1] [repeat=5]
//                       [fit_threads=0] [json=PATH]
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/flat_forest.hpp"
#include "ml/random_forest.hpp"
#include "ml/simd_dispatch.hpp"
#include "obs/run_manifest.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Click-trace-shaped synthetic data: six features, logistic label.
richnote::ml::dataset make_data(std::size_t rows, std::uint64_t seed) {
    richnote::ml::dataset d({"f0", "f1", "f2", "f3", "f4", "f5"});
    richnote::rng gen(seed);
    for (std::size_t i = 0; i < rows; ++i) {
        std::array<double, 6> x{};
        for (double& f : x) f = gen.uniform(-1, 1);
        const double z = 2.5 * x[0] - 1.5 * x[1] + x[2] - 0.5 * x[3] + gen.normal(0, 0.6);
        d.add_row(x, z > 0 ? 1 : 0);
    }
    return d;
}

/// Best wall-clock of `repeat` runs of `body` (checksum defeats DCE).
template <typename F>
double best_of(std::size_t repeat, F&& body) {
    double best = 1e300;
    for (std::size_t i = 0; i < repeat; ++i) {
        const auto start = clock_type::now();
        body();
        best = std::min(best, seconds_since(start));
    }
    return best;
}

} // namespace

int main(int argc, char** argv) try {
    using namespace richnote;

    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"rows", "trees", "seed", "repeat", "fit_threads", "json",
                     "manifest"});
    const auto rows = static_cast<std::size_t>(cfg.get_int("rows", 20000));
    const auto trees = static_cast<std::size_t>(cfg.get_int("trees", 50));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto repeat = static_cast<std::size_t>(cfg.get_int("repeat", 5));
    const auto fit_threads = static_cast<std::size_t>(cfg.get_int("fit_threads", 0));

    std::cerr << "[perf] generating " << rows << " rows, training " << trees
              << " trees...\n";
    const ml::dataset train = make_data(2000, seed);
    const ml::dataset probe = make_data(rows, seed + 1);

    ml::forest_params params;
    params.tree_count = trees;

    ml::random_forest forest;
    params.fit_threads = 1;
    const double fit_sequential_sec =
        best_of(repeat, [&] { forest.fit(train, params, seed); });

    ml::random_forest forest_parallel;
    params.fit_threads = fit_threads;
    const double fit_parallel_sec =
        best_of(repeat, [&] { forest_parallel.fit(train, params, seed); });

    const ml::flat_forest flat(forest);
    const std::string uarch =
        std::string(ml::simd::arch_name()) + "/" + ml::simd::isa_name(ml::simd::active_isa());

    // Correctness gate: all scoring paths must agree bit-for-bit — the
    // active dispatch target, the forced-scalar kernel, the threaded batch
    // — and the parallel fit must reproduce the sequential forest exactly.
    std::vector<double> reference(rows);
    for (std::size_t r = 0; r < rows; ++r)
        reference[r] = forest.predict_proba(probe.row(r));
    const std::vector<double> batched = flat.predict_proba(probe);
    const std::span<const double> matrix{probe.row(0).data(),
                                         rows * probe.feature_count()};
    std::vector<double> scalar_batched(rows);
    {
        ml::simd::scoped_isa_override force(ml::simd::isa::scalar);
        flat.predict_proba(matrix, rows, scalar_batched);
    }
    std::vector<double> threaded_batched(rows);
    flat.predict_proba(matrix, rows, threaded_batched, 0);
    for (std::size_t r = 0; r < rows; ++r) {
        RICHNOTE_CHECK(flat.predict_proba(probe.row(r)) == reference[r],
                       "flat single-row prediction diverged from the forest");
        RICHNOTE_CHECK(batched[r] == reference[r],
                       "flat batched prediction diverged from the forest");
        RICHNOTE_CHECK(scalar_batched[r] == reference[r],
                       "scalar-kernel batch diverged from the forest");
        RICHNOTE_CHECK(threaded_batched[r] == reference[r],
                       "threaded batch diverged from the forest");
        RICHNOTE_CHECK(forest_parallel.predict_proba(probe.row(r)) == reference[r],
                       "parallel fit diverged from the sequential forest");
    }

    std::cerr << "[perf] timing scorers (" << repeat << " passes each)...\n";
    double checksum = 0.0;
    const double forest_item_sec = best_of(repeat, [&] {
        double sum = 0.0;
        for (std::size_t r = 0; r < rows; ++r) sum += forest.predict_proba(probe.row(r));
        checksum = sum;
    });
    const double flat_item_sec = best_of(repeat, [&] {
        double sum = 0.0;
        for (std::size_t r = 0; r < rows; ++r) sum += flat.predict_proba(probe.row(r));
        checksum = sum;
    });
    std::vector<double> out(rows);
    const double flat_batch_sec = best_of(repeat, [&] {
        flat.predict_proba(matrix, rows, out);
        checksum = out[rows - 1];
    });
    const double flat_batch_mt_sec = best_of(repeat, [&] {
        flat.predict_proba(matrix, rows, out, fit_threads);
        checksum = out[rows - 1];
    });

    const double n = static_cast<double>(rows);
    const double forest_rate = n / forest_item_sec;
    const double flat_item_rate = n / flat_item_sec;
    const double flat_batch_rate = n / flat_batch_sec;
    const double flat_batch_mt_rate = n / flat_batch_mt_sec;

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << "  \"bench\": \"perf_inference\",\n"
         << "  \"schema\": \"richnote-bench-v1\",\n"
         << "  \"params\": {\"rows\": " << rows << ", \"trees\": " << trees
         << ", \"seed\": " << seed << ", \"repeat\": " << repeat
         << ", \"fit_threads\": " << fit_threads << "},\n"
         << "  \"scoring\": {\"forest_items_per_sec\": " << forest_rate
         << ", \"flat_items_per_sec\": " << flat_item_rate
         << ", \"flat_batch_items_per_sec\": " << flat_batch_rate
         << ", \"flat_batch_mt_items_per_sec\": " << flat_batch_mt_rate
         << ", \"flat_batch_speedup\": " << flat_batch_rate / forest_rate
         << ", \"uarch\": \"" << uarch << "\""
         << ", \"bit_identical\": true},\n"
         << "  \"fit\": {\"sequential_sec\": " << fit_sequential_sec
         << ", \"parallel_sec\": " << fit_parallel_sec
         << ", \"checksum\": " << checksum << "}\n"
         << "}\n";

    if (cfg.has("json")) {
        const std::string path = cfg.get_string("json", "");
        std::ofstream out_file(path);
        out_file << json.str();
        std::cerr << "[perf] wrote " << path << '\n';
    } else {
        std::cout << json.str();
    }

    if (cfg.has("manifest")) {
        richnote::obs::run_manifest manifest("perf_inference");
        manifest.set_seed(seed);
        manifest.add_config("rows", static_cast<std::uint64_t>(rows));
        manifest.add_config("trees", static_cast<std::uint64_t>(trees));
        manifest.add_config("repeat", static_cast<std::uint64_t>(repeat));
        manifest.add_config("fit_threads", static_cast<std::uint64_t>(fit_threads));
        manifest.add_config("uarch", uarch);
        manifest.add_timing("forest_items_per_sec", forest_rate);
        manifest.add_timing("flat_items_per_sec", flat_item_rate);
        manifest.add_timing("flat_batch_items_per_sec", flat_batch_rate);
        manifest.add_timing("flat_batch_mt_items_per_sec", flat_batch_mt_rate);
        manifest.add_timing("fit_sequential_sec", fit_sequential_sec);
        manifest.add_timing("fit_parallel_sec", fit_parallel_sec);
        manifest.write_file(cfg.get_string("manifest", ""));
        std::cerr << "[perf] wrote manifest to " << cfg.get_string("manifest", "") << '\n';
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Ablation: Lyapunov control (Algorithm 2) vs the direct §III-C
// formulation (Eq. 2 with a hard per-round energy budget).
//
// The paper formulates selection as a two-weight MCKP (Eq. 2a-2c) and then
// "for brevity moves the energy constraint to the objective" via the
// virtual queue P(t). This ablation keeps both designs and compares them
// across the budget sweep, at the paper's kappa (slack energy) and a tight
// kappa (binding energy), quantifying what the Lyapunov transformation
// buys: equal utility when energy is slack, graceful throttling instead of
// hard rationing when it binds.
//
// Usage: ablation_direct [users=200] [seed=1] [trees=30] [budgets=...] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv);
    const auto setup = bench::build_setup(opts);

    for (const double kappa : {3000.0, 12.0}) {
        bench::figure_output out({"budget(MB)", "scheduler", "total_utility",
                                  "delivery_ratio", "energy(KJ)", "delay(min)"});
        for (double budget : opts.budgets_mb) {
            for (auto kind :
                 {core::scheduler_kind::richnote, core::scheduler_kind::direct}) {
                core::experiment_params params;
                params.kind = kind;
                params.weekly_budget_mb = budget;
                params.lyapunov.kappa = kappa;
                params.lyapunov.initial_energy_credit = kappa;
                params.energy_policy.kappa_joules_per_round = kappa;
                params.seed = opts.run_seed;
                const auto r = core::run_experiment(*setup, params);
                out.add_row({format_double(budget, 0), r.scheduler_name,
                             format_double(r.total_utility, 1),
                             format_double(r.delivery_ratio, 3),
                             format_double(r.energy_kj, 1),
                             format_double(r.mean_delay_min, 1)});
            }
        }
        out.emit("Ablation: Lyapunov (RichNote) vs direct Eq. 2 scheduling (kappa " +
                     format_double(kappa, 0) + " J/round)",
                 kappa == 3000.0 ? opts.csv_path : std::nullopt);
    }
    bench::write_run_manifest(opts, "ablation_direct");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// §V-D5 "Lyapunov effects": sensitivity of RichNote to the control knob V.
//
// V trades utility against queue backlog: larger V weights V*U(i,j) more
// heavily relative to the drift terms. The paper reports RichNote
// "performs uniformly better in all these settings". This ablation sweeps
// V across four decades at a fixed budget and reports utility, delivery
// ratio, queuing delay and the mean final queue length — demonstrating the
// stability/utility trade-off the framework promises.
//
// Usage: ablation_lyapunov_v [users=200] [seed=1] [trees=30] [budget=10] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto setup = bench::build_setup(opts);

    // UTIL(L3) reference at the same budget.
    const auto util_ref = bench::run_cell(*setup, core::scheduler_kind::util, 3, budget, opts);

    // Two regimes: the paper's kappa (3 KJ/h — energy slack, so performance
    // should be V-insensitive, which is exactly the paper's finding) and a
    // tight kappa where the drift terms compete with V*U and the knob
    // genuinely trades utility against energy compliance.
    for (const double kappa : {3000.0, 12.0}) {
        bench::figure_output out({"V", "total_utility", "delivery_ratio", "delay(min)",
                                  "final_queue(items)", "energy(KJ)"});
        for (double v : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
            core::experiment_params params;
            params.kind = core::scheduler_kind::richnote;
            params.weekly_budget_mb = budget;
            params.lyapunov.v = v;
            params.lyapunov.kappa = kappa;
            params.lyapunov.initial_energy_credit = kappa;
            params.energy_policy.kappa_joules_per_round = kappa;
            params.seed = opts.run_seed;
            const auto r = core::run_experiment(*setup, params);
            out.add_row({format_double(v, 0), format_double(r.total_utility, 1),
                         format_double(r.delivery_ratio, 3),
                         format_double(r.mean_delay_min, 1),
                         format_double(r.final_queue_items, 1),
                         format_double(r.energy_kj, 1)});
        }
        out.add_row({"UTIL(L3) ref", format_double(util_ref.total_utility, 1),
                     format_double(util_ref.delivery_ratio, 3),
                     format_double(util_ref.mean_delay_min, 1),
                     format_double(util_ref.final_queue_items, 1),
                     format_double(util_ref.energy_kj, 1)});
        out.emit("Sec. V-D5 ablation: Lyapunov control knob V sweep (budget " +
                     format_double(budget, 0) + " MB, kappa " +
                     format_double(kappa, 0) + " J/round)",
                 kappa == 3000.0 ? opts.csv_path : std::nullopt);
    }
    std::cout
        << "finding (matches §V-D5): RichNote \"performs uniformly better in all these "
           "settings\" —\nthe sweep is flat across four decades of V. Structurally, "
           "delivering an item both\ndrains Q(t) and earns utility, so the drift and "
           "penalty terms rarely conflict; the\ndata-budget constraint and the energy "
           "gate, not the V mix, bind the decisions.\n";
    bench::write_run_manifest(opts, "ablation_lyapunov_v");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

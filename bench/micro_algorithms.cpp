// Micro-benchmarks (google-benchmark) for the hot algorithmic kernels:
// the MCKP greedy (paper §IV claims O(n + k log n)), the indexed heap, the
// discrete-event queue, and Random Forest scoring. These back the paper's
// complexity claim with measured scaling rather than reproducing a figure.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/indexed_heap.hpp"
#include "common/rng.hpp"
#include "core/mckp.hpp"
#include "core/presentation.hpp"
#include "ml/random_forest.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace richnote;

std::vector<core::mckp_item> make_instance(std::size_t n, std::uint64_t seed) {
    const core::audio_preview_generator generator{
        core::audio_preview_generator::params{}};
    const auto levels = generator.generate(276.0);
    rng gen(seed);
    std::vector<core::mckp_item> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        items.push_back(core::make_mckp_item(levels, gen.uniform(0.05, 1.0)));
    return items;
}

void bm_mckp_select(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto items = make_instance(n, 42);
    // Budget sized so roughly half of the total menu fits: the worst case
    // for upgrade count.
    const double budget = static_cast<double>(n) * 400'000.0;
    for (auto _ : state) {
        auto solution = core::select_presentations(items, budget);
        benchmark::DoNotOptimize(solution.total_utility);
    }
    state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(bm_mckp_select)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void bm_indexed_heap_push_pop(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng gen(7);
    std::vector<double> priorities(n);
    for (auto& p : priorities) p = gen.uniform();
    for (auto _ : state) {
        indexed_heap<double> heap(n);
        for (std::size_t i = 0; i < n; ++i) heap.push(i, priorities[i]);
        double acc = 0;
        while (!heap.empty()) acc += heap.top_priority(), heap.pop();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(bm_indexed_heap_push_pop)->Range(64, 16384);

void bm_event_queue_schedule_pop(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng gen(11);
    std::vector<double> times(n);
    for (auto& t : times) t = gen.uniform(0, 1e6);
    for (auto _ : state) {
        sim::event_queue q;
        for (double t : times) q.schedule(t, [] {});
        while (!q.empty()) q.pop();
    }
}
BENCHMARK(bm_event_queue_schedule_pop)->Range(64, 16384);

void bm_forest_predict(benchmark::State& state) {
    // A forest shaped like the content-utility model.
    ml::dataset data({"a", "b", "c", "d", "e", "f"});
    rng gen(3);
    for (int i = 0; i < 4000; ++i) {
        std::array<double, 6> row;
        for (auto& v : row) v = gen.uniform();
        data.add_row(row, row[0] + row[1] > 1.0 ? 1 : 0);
    }
    ml::random_forest forest;
    ml::forest_params params;
    params.tree_count = static_cast<std::size_t>(state.range(0));
    forest.fit(data, params, 1);

    std::array<double, 6> probe = {0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(forest.predict_proba(probe));
        probe[0] = probe[0] < 0.99 ? probe[0] + 0.001 : 0.0;
    }
}
BENCHMARK(bm_forest_predict)->Arg(10)->Arg(30)->Arg(100);

void bm_pareto_prune(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng gen(13);
    std::vector<core::presentation_candidate> candidates(n);
    for (auto& c : candidates) {
        c.size_bytes = gen.uniform(1, 1e6);
        c.utility = gen.uniform(0, 1);
    }
    for (auto _ : state) {
        auto copy = candidates;
        auto useful = core::pareto_prune(std::move(copy));
        benchmark::DoNotOptimize(useful.size());
    }
}
BENCHMARK(bm_pareto_prune)->Range(16, 4096);

} // namespace

BENCHMARK_MAIN();

// Ablation: calibrating the content-utility scores.
//
// The paper feeds the Random Forest's raw confidence into U_c(i) (§V-A).
// Forest vote fractions are typically squeezed toward 0.5; Platt scaling on
// held-out data restores probability semantics. This harness measures (a)
// the calibration quality itself — Brier score, log-loss, expected
// calibration error, and the reliability diagram — and (b) whether better
// calibration changes system-level outcomes (it mostly stretches the U_c
// range, sharpening upgrade choices at tight budgets).
//
// Usage: ablation_calibration [users=200] [seed=1] [trees=30] [budget=5] [csv=...]
#include <iostream>

#include "bench_common.hpp"
#include "core/utility.hpp"
#include "ml/calibration.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 5.0);

    // ---- (a) calibration quality on a held-out split ----
    const trace::workload world(opts.setup.workload, opts.setup.seed);
    const ml::dataset data = core::make_training_set(world.notifications());
    const auto [rest, test] = data.train_test_split(0.2, opts.setup.seed ^ 0x99ULL);
    const auto [train, held_out] = rest.train_test_split(0.3, opts.setup.seed ^ 0x77ULL);

    ml::random_forest forest;
    ml::forest_params fp;
    fp.tree_count = opts.setup.forest.tree_count;
    forest.fit(train, fp, opts.setup.seed);

    auto collect = [&](const ml::dataset& d, std::vector<double>& scores,
                       std::vector<int>& labels) {
        for (std::size_t r = 0; r < d.size(); ++r) {
            scores.push_back(forest.predict_proba(d.row(r)));
            labels.push_back(d.label(r));
        }
    };
    std::vector<double> cal_scores, test_scores;
    std::vector<int> cal_labels, test_labels;
    collect(held_out, cal_scores, cal_labels);
    collect(test, test_scores, test_labels);

    ml::platt_calibrator calibrator;
    calibrator.fit(cal_scores, cal_labels);
    std::vector<double> platt;
    for (double s : test_scores) platt.push_back(calibrator.calibrate(s));
    ml::isotonic_calibrator isotonic;
    isotonic.fit(cal_scores, cal_labels);
    std::vector<double> iso;
    for (double s : test_scores) iso.push_back(isotonic.calibrate(s));

    bench::figure_output quality({"scores", "Brier", "log-loss", "ECE"});
    auto quality_row = [&](const char* label, const std::vector<double>& p) {
        quality.add_row({label, format_double(ml::brier_score(p, test_labels), 4),
                         format_double(ml::log_loss(p, test_labels), 4),
                         format_double(ml::expected_calibration_error(p, test_labels), 4)});
    };
    quality_row("raw forest", test_scores);
    quality_row("Platt-calibrated", platt);
    quality_row("isotonic (PAV)", iso);
    quality.emit("Calibration quality on held-out notifications (Platt a=" +
                     format_double(calibrator.slope(), 2) + ", b=" +
                     format_double(calibrator.intercept(), 2) + "; isotonic knots=" +
                     std::to_string(isotonic.knot_count()) + ")",
                 std::nullopt);

    bench::figure_output diagram({"bin mean predicted", "empirical click rate", "n"});
    for (const auto& bin : ml::reliability_diagram(test_scores, test_labels, 8)) {
        diagram.add_row({format_double(bin.mean_predicted, 3),
                         format_double(bin.empirical_rate, 3),
                         std::to_string(bin.count)});
    }
    diagram.emit("Reliability diagram (raw forest scores)", std::nullopt);

    // ---- (b) system impact ----
    bench::figure_output system({"U_c signal", "total_utility", "recall", "precision"});
    for (const bool calibrate : {false, true}) {
        auto setup_opts = opts.setup;
        setup_opts.calibrate_utility = calibrate;
        const core::experiment_setup setup(setup_opts);
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(setup, params);
        system.add_row({calibrate ? "calibrated" : "raw (paper)",
                        format_double(r.total_utility, 1), format_double(r.recall, 3),
                        format_double(r.precision, 3)});
    }
    system.emit("System impact at budget " + format_double(budget, 0) + " MB",
                opts.csv_path);
    std::cout << "note: total_utility rows are measured in each run's own U_c units and "
                 "are not\ndirectly comparable; recall/precision are.\n";
    bench::write_run_manifest(opts, "ablation_calibration");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

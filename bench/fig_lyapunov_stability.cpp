// §V-D5 companion: direct trajectory evidence for the Lyapunov stability
// claims. The paper infers stability from aggregates ("more delivered data
// with more leftover bandwidth ... lower queuing delays"); this harness
// samples Q(t) and P(t) round by round for representative users and prints
// the trajectory statistics: RichNote's Q stays bounded while FIFO's grows
// with backlog at low budget, and P(t) oscillates around kappa.
//
// Usage: fig_lyapunov_stability [users=200] [seed=1] [trees=30] [budget=2]
//        [csv=trajectory.csv]
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 2.0);
    const auto setup = bench::build_setup(opts);

    // Watch the five heaviest users (their queues are the most stressed).
    std::vector<std::pair<std::size_t, std::uint32_t>> loads;
    for (std::uint32_t u = 0; u < setup->world().user_count(); ++u)
        loads.emplace_back(setup->world().notifications().per_user[u].size(), u);
    std::sort(loads.rbegin(), loads.rend());
    std::vector<std::uint32_t> watched;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, loads.size()); ++i)
        watched.push_back(loads[i].second);

    bench::figure_output out({"scheduler", "user", "items", "max Q(t)", "mean Q(t)",
                              "final Q(t)", "mean P(t) (J)"});
    for (auto kind : {core::scheduler_kind::richnote, core::scheduler_kind::fifo}) {
        core::experiment_params params;
        params.kind = kind;
        params.fixed_level = 3;
        params.weekly_budget_mb = budget;
        params.telemetry_users = watched;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);

        for (std::uint32_t u : watched) {
            const auto& series = r.trajectories->of(u);
            running_stats q_bytes, p_credit;
            for (const auto& s : series) {
                q_bytes.add(s.queue_bytes);
                p_credit.add(s.energy_credit);
            }
            out.add_row({r.scheduler_name, std::to_string(u),
                         std::to_string(setup->world().notifications().per_user[u].size()),
                         format_bytes(q_bytes.max()), format_bytes(q_bytes.mean()),
                         format_bytes(series.empty() ? 0.0 : series.back().queue_bytes),
                         format_double(p_credit.mean(), 1)});
        }

        if (opts.csv_path && kind == core::scheduler_kind::richnote) {
            std::ofstream csv(*opts.csv_path);
            r.trajectories->write_csv(csv);
            std::cerr << "[csv] wrote RichNote trajectories to " << *opts.csv_path
                      << '\n';
        }
    }
    out.emit("Sec. V-D5 companion: Q(t)/P(t) trajectories at a tight budget (" +
                 format_double(budget, 0) + " MB/week)",
             std::nullopt);
    std::cout << "expected: RichNote's Q(t) drains every connected round (bounded, "
                 "small mean and\nfinal values); FIFO's backlog persists for the whole "
                 "week at this budget. P(t)\noscillates near kappa = 3000 J.\n";
    bench::write_run_manifest(opts, "fig_lyapunov_stability");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Fig. 4(a)-(d): total delivered utility, utility among clicked items,
// download energy and queuing delay vs weekly data budget, for RichNote and
// the fixed-level baselines (§V-D1).
//
// Expected shape (paper): RichNote roughly doubles total utility at
// generous budgets, leads utility among clicked items, keeps energy steady
// under the kappa envelope (3 KJ/h/user) and has the lowest queuing delay.
//
// Usage: fig4_utility_energy [users=200] [seed=1] [trees=30] [budgets=...] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    using core::scheduler_kind;
    const auto opts = bench::parse_options(argc, argv);
    const auto setup = bench::build_setup(opts);

    struct method {
        scheduler_kind kind;
        core::level_t level;
    };
    const std::vector<method> methods = {{scheduler_kind::richnote, 3},
                                         {scheduler_kind::fifo, 3},
                                         {scheduler_kind::util, 3}};

    const double kappa_envelope_kj =
        3.0 * 24.0 * 7.0 * static_cast<double>(setup->world().user_count());

    bench::figure_output out({"budget(MB)", "method", "total_utility",
                              "utility_clicked", "energy(KJ)", "delay(min)"});
    for (double budget : opts.budgets_mb) {
        for (const auto& m : methods) {
            const auto r = bench::run_cell(*setup, m.kind, m.level, budget, opts);
            const std::string name =
                m.kind == scheduler_kind::richnote ? "RichNote" : r.scheduler_name;
            out.add_row({format_double(budget, 0), name,
                         format_double(r.total_utility, 1),
                         format_double(r.utility_clicked, 1),
                         format_double(r.energy_kj, 1),
                         format_double(r.mean_delay_min, 1)});
        }
    }
    out.emit("Fig. 4(a)-(d): utility, energy and queuing delay vs weekly budget",
             opts.csv_path);
    std::cout << "kappa envelope for this population (3 KJ/h x 168 h x users): "
              << format_double(kappa_envelope_kj, 0) << " KJ\n"
              << "paper shape: RichNote ~2x utility at generous budgets, steady energy "
                 "within the\nenvelope, lowest queuing delay.\n";
    bench::write_run_manifest(opts, "fig4_utility_energy");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// §V-C scalability companion: "while we run simulations using 10K users,
// our solution can potentially scale to a much larger user base using a
// backend parallel platform since our solution can work in rounds and
// independently for each user."
//
// The experiment runner implements exactly that: users are sharded across
// worker threads, each broker owns its randomness, and metrics are
// per-user. This harness (1) verifies bit-identical results across worker
// counts, (2) reports the per-shard load balance (items and bytes) the
// contiguous sharding produces, and (3) times the runs (informative only on
// multi-core machines).
//
// Usage: table_parallel_shards [users=200] [seed=1] [trees=30] [budget=10] [csv=...]
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto setup = bench::build_setup(opts);
    const std::size_t users = setup->world().user_count();

    // (1) + (3): identical results, measured wall time per worker count.
    bench::figure_output runs({"workers", "wall(ms)", "total_utility",
                               "delivered_MB", "identical_to_1_worker?"});
    double reference_utility = 0.0;
    double reference_mb = 0.0;
    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.worker_threads = workers;
        params.seed = opts.run_seed;
        const auto start = std::chrono::steady_clock::now();
        const auto r = core::run_experiment(*setup, params);
        const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        if (workers == 1) {
            reference_utility = r.total_utility;
            reference_mb = r.delivered_mb;
        }
        const bool identical =
            r.total_utility == reference_utility && r.delivered_mb == reference_mb;
        runs.add_row({std::to_string(workers), std::to_string(wall),
                      format_double(r.total_utility, 1),
                      format_double(r.delivered_mb, 1), identical ? "yes" : "NO"});
    }
    runs.emit("Sec. V-C parallelism: worker-count sweep (budget " +
                  format_double(budget, 0) + " MB)",
              opts.csv_path);

    // (2) Shard load balance for the contiguous partitioning at 4 workers.
    const std::size_t workers = 4;
    bench::figure_output shards({"shard", "users", "items", "full-menu bytes"});
    running_stats per_shard_items;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t lo = users * w / workers;
        const std::size_t hi = users * (w + 1) / workers;
        std::size_t items = 0;
        double bytes = 0.0;
        for (std::size_t u = lo; u < hi; ++u) {
            const auto& stream = setup->world().notifications().per_user[u];
            items += stream.size();
            bytes += static_cast<double>(stream.size()) * 2.1e6; // six-level menu
        }
        per_shard_items.add(static_cast<double>(items));
        shards.add_row({std::to_string(w), std::to_string(hi - lo),
                        std::to_string(items), format_bytes(bytes)});
    }
    shards.emit("Contiguous shard load balance (4 shards)", std::nullopt);
    std::cout << "item-load imbalance (max/mean): "
              << format_double(per_shard_items.max() /
                                   std::max(per_shard_items.mean(), 1.0),
                               3)
              << "  (independent per-user rounds keep any sharding correct; balance "
                 "only affects speed)\n";
    bench::write_run_manifest(opts, "table_parallel_shards");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

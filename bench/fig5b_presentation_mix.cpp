// Fig. 5(b): RichNote's presentation-level mix vs data budget (cellular
// only) — the stacked-bar chart of §V-D2.
//
// Expected shape (paper): at 3 MB only ~10% of notifications carry any
// media preview (the rest are metadata-only); as the budget grows the mix
// shifts to richer levels (at 20 MB nearly 20% are delivered with a 40 s
// preview).
//
// Usage: fig5b_presentation_mix [users=200] [seed=1] [trees=30] [budgets=...] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv);
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"budget(MB)", "undelivered", "meta", "+5s", "+10s", "+20s",
                              "+30s", "+40s", "media_share"});
    for (double budget : opts.budgets_mb) {
        const auto r =
            bench::run_cell(*setup, core::scheduler_kind::richnote, 3, budget, opts);
        std::vector<std::string> row = {format_double(budget, 0)};
        double media = 0.0;
        for (std::size_t level = 0; level < r.level_mix.size(); ++level) {
            row.push_back(format_double(r.level_mix[level], 3));
            if (level >= 2) media += r.level_mix[level];
        }
        row.push_back(format_double(media, 3));
        out.add_row(std::move(row));
    }
    out.emit("Fig. 5(b): presentation mix vs budget (cellular only; fractions of all "
             "arrived notifications)",
             opts.csv_path);
    std::cout << "paper shape: ~10% media share at 3 MB, rising with budget; 40s share "
                 "grows to dominate.\n";
    bench::write_run_manifest(opts, "fig5b_presentation_mix");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Ablation: deferring high-value items to WiFi.
//
// The paper's related work points at informed mobile prefetching ([14]) —
// choosing WHEN to move bytes based on connectivity economics. This
// extension withholds notifications with content utility above a threshold
// while the device is on a METERED link (up to a wait budget), hoping for
// an unmetered WiFi round where the rich presentation ships for free. The
// harness runs the §V-D3 WIFI/CELL/OFF model and reports what the policy
// buys: lower metered (cellular) consumption and richer presentations for
// the deferred items, at the cost of added delay.
//
// Usage: ablation_wifi_deferral [users=200] [seed=1] [trees=30] [budget=5] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 5.0);
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"policy", "metered_MB", "delivered_MB", "+40s_share",
                              "delay(min)", "total_utility"});
    struct sweep_point {
        const char* label;
        double threshold;
        double wait_hours;
    };
    const std::vector<sweep_point> policies = {
        {"no deferral (paper)", 0.0, 0.0},
        {"defer U_c>=0.5, wait<=6h", 0.5, 6.0},
        {"defer U_c>=0.5, wait<=24h", 0.5, 24.0},
        {"defer U_c>=0.3, wait<=12h", 0.3, 12.0},
    };
    for (const auto& p : policies) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.wifi_enabled = true; // §V-D3 network model
        params.wifi_deferral_min_utility = p.threshold;
        params.wifi_deferral_max_wait_sec = p.wait_hours * 3600.0;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);
        out.add_row({p.label, format_double(r.metered_mb, 1),
                     format_double(r.delivered_mb, 1),
                     format_double(r.level_mix.back(), 3),
                     format_double(r.mean_delay_min, 1),
                     format_double(r.total_utility, 1)});
    }
    out.emit("Ablation: WiFi deferral of high-value items (cellular budget " +
                 format_double(budget, 0) + " MB, WIFI/CELL/OFF model)",
             opts.csv_path);
    std::cout << "expected: deferral trades delay for lower metered consumption; "
                 "deferred items ride\nWiFi rounds and ship at richer levels.\n";
    bench::write_run_manifest(opts, "ablation_wifi_deferral");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

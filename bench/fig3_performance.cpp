// Fig. 3(a)-(d): delivery ratio, data delivered, recall and precision vs
// weekly data budget (1-100 MB) for RichNote and the FIFO/UTIL baselines
// fixed at metadata+5s (L2) and metadata+10s (L3), matching §V-D1: "we fix
// the presentation level of FIFO and UTIL to metadata with 5s and 10s
// previews".
//
// Expected shape (paper): RichNote delivers close to 100% at every budget
// and leads recall/precision; the baselines ramp up with budget.
//
// Usage: fig3_performance [users=200] [seed=1] [trees=30] [budgets=1,2,...] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    using core::scheduler_kind;
    const auto opts = bench::parse_options(argc, argv);
    const auto setup = bench::build_setup(opts);

    struct method {
        scheduler_kind kind;
        core::level_t level;
    };
    const std::vector<method> methods = {{scheduler_kind::richnote, 0},
                                         {scheduler_kind::fifo, 2},
                                         {scheduler_kind::fifo, 3},
                                         {scheduler_kind::util, 2},
                                         {scheduler_kind::util, 3}};

    bench::figure_output out({"budget(MB)", "method", "delivery_ratio", "delivered_MB",
                              "recall", "precision"});
    for (double budget : opts.budgets_mb) {
        for (const auto& m : methods) {
            const auto r = bench::run_cell(*setup, m.kind, m.level == 0 ? 3 : m.level,
                                           budget, opts);
            const std::string name =
                m.kind == scheduler_kind::richnote ? "RichNote" : r.scheduler_name;
            out.add_row({format_double(budget, 0), name,
                         format_double(r.delivery_ratio, 3),
                         format_double(r.delivered_mb, 1), format_double(r.recall, 3),
                         format_double(r.precision, 3)});
        }
    }
    out.emit("Fig. 3(a)-(d): performance metrics vs weekly data budget", opts.csv_path);
    std::cout << "paper shape: RichNote ~100% delivery at all budgets; baselines climb "
                 "with budget;\nRichNote leads recall and precision.\n";
    bench::write_run_manifest(opts, "fig3_performance");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Ablation: the §III-A "aging factor".
//
// The paper's feature-space discussion notes that content utility "may also
// depend on the recency of the content (aging factor)" but leaves it out of
// the evaluation. This ablation turns on exponential content-utility decay
// (half-life sweep) and measures its effect at a low budget, where items
// wait through OFF periods and budget droughts: with aging, the scheduler
// stops spending upgrades on stale items, shifting bytes to fresh ones.
// The "mean delivered age" column shows the mechanism directly.
//
// Usage: ablation_aging [users=200] [seed=1] [trees=30] [budget=5] [csv=...]
#include <iostream>

#include "bench_common.hpp"
#include "sim/time.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 5.0);
    const auto setup = bench::build_setup(opts);

    struct sweep_point {
        const char* label;
        double half_life_sec;
    };
    const std::vector<sweep_point> half_lives = {{"off (paper)", 0.0},
                                                 {"24h", 24.0 * 3600.0},
                                                 {"6h", 6.0 * 3600.0},
                                                 {"1h", 3600.0}};

    bench::figure_output out({"half_life", "total_utility", "delivery_ratio",
                              "delay(min)", "precision"});
    for (const auto& point : half_lives) {
        core::experiment_params params;
        params.kind = core::scheduler_kind::richnote;
        params.weekly_budget_mb = budget;
        params.utility_half_life_sec = point.half_life_sec;
        params.seed = opts.run_seed;
        const auto r = core::run_experiment(*setup, params);
        out.add_row({point.label, format_double(r.total_utility, 1),
                     format_double(r.delivery_ratio, 3),
                     format_double(r.mean_delay_min, 1),
                     format_double(r.precision, 3)});
    }
    out.emit("Ablation: content-utility aging (budget " + format_double(budget, 0) +
                 " MB)",
             opts.csv_path);
    std::cout << "note: reported utility is the scheduler's aged utility, so the rows "
                 "are not directly\ncomparable on total_utility; the interesting columns "
                 "are delay and precision (aging\nfavors fresh items, which are likelier "
                 "to still be clicked after delivery).\n";
    bench::write_run_manifest(opts, "ablation_aging");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Perf harness for lifecycle tracing overhead (BENCH_perf.json "lifecycle").
//
// The DESIGN.md §13 contract: the lifecycle_tracker (stage stamps,
// histograms, exemplar ring) may cost at most 2% of service round
// throughput when attached, and exactly nothing when it is not (every hook
// is one nullable-pointer branch). This harness measures three passes over
// identical fleets:
//
//  1. disabled: lifecycle == nullptr and trace == nullptr — the zero-cost
//     baseline (rounds_per_sec_disabled).
//
//  2. enabled: a lifecycle_tracker attached, no trace sink — the wall-clock
//     plane alone, which is what the ≤2% ceiling governs
//     (rounds_per_sec_enabled, overhead_pct).
//
//  3. traced: tracker AND a file-streaming trace_sink — the full
//     observability stack including the deterministic NDJSON plane
//     (lc_ingest/lc_admit + every §9 decision event). Reported as
//     rounds_per_sec_traced for sizing, NOT gated: the NDJSON plane's cost
//     is the §9 tracing opt-in, scaling with events written, not a
//     lifecycle regression.
//
// overhead_pct = (disabled - enabled) / disabled * 100. scripts/bench.sh
// folds the JSON into BENCH_perf.json as the "lifecycle" section; the gate
// fails when overhead_pct exceeds the 2% ceiling or rounds_per_sec_enabled
// falls below the reference floor.
//
// Passes 1 and 2 alternate reps= times (disabled, enabled, disabled, ...)
// and each mode keeps its BEST (minimum) wall time: interleaving cancels
// slow machine drift (thermal, co-tenant load) and the minimum discards
// scheduler-interference spikes, so the comparison converges on the code's
// intrinsic cost rather than the noise floor of a shared box. The disabled
// pass still runs first within every pair, biasing warm-cache effects
// against the claim.
//
// Usage: perf_lifecycle [train_users=200] [users=20000] [rounds=20]
//                       [threads=1] [seed=1] [trees=10] [budget=20]
//                       [queue=524288] [reps=3]
//                       [trace=perf_lifecycle.trace.ndjson]
//                       [keep_trace=0] [json=PATH] [manifest=PATH]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/service.hpp"
#include "ml/simd_dispatch.hpp"
#include "obs/lifecycle.hpp"
#include "obs/run_manifest.hpp"
#include "obs/trace_sink.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct pass_result {
    double wall_sec = 0.0;
    double rounds_per_sec = 0.0;
};

pass_result run_pass(const richnote::core::experiment_setup& setup,
                     richnote::core::service_params sp, std::uint64_t rounds,
                     const char* label) {
    using namespace richnote;
    core::notification_service svc(setup, sp);
    for (const auto& stream : setup.world().notifications().per_user) {
        for (const auto& n : stream) {
            if (svc.ingest(n) != core::notification_service::ingest_status::accepted) {
                throw richnote::precondition_error(
                    "warmup ingest rejected (queue= too small?)");
            }
        }
    }
    // Two untimed warm-up rounds absorb the one-shot ingest burst: the ring
    // drains (and the whole backlog admits) in the first round after
    // ingest, so timing from round 1 would charge the per-notification
    // ingest/admit cost — amortized over an item's whole life in a real
    // service — to the round loop. The ceiling governs steady-state rounds.
    svc.run_rounds(2);
    std::cerr << "[perf] timing " << rounds << " rounds (" << label << ")...\n";
    const auto start = clock_type::now();
    svc.run_rounds(rounds);
    pass_result r;
    r.wall_sec = seconds_since(start);
    r.rounds_per_sec = static_cast<double>(rounds) / r.wall_sec;
    return r;
}

} // namespace

int main(int argc, char** argv) try {
    using namespace richnote;

    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"train_users", "users", "rounds", "threads", "seed", "trees",
                     "budget", "queue", "reps", "trace", "keep_trace", "json",
                     "manifest"});
    const auto train_users = static_cast<std::size_t>(cfg.get_int("train_users", 200));
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 20'000));
    const auto rounds = static_cast<std::uint64_t>(cfg.get_int("rounds", 20));
    const auto threads = static_cast<std::size_t>(cfg.get_int("threads", 1));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto trees = static_cast<std::size_t>(cfg.get_int("trees", 10));
    const double budget_mb = cfg.get_double("budget", 20.0);
    const auto queue = static_cast<std::size_t>(cfg.get_int("queue", 1 << 19));
    const int reps = static_cast<int>(cfg.get_int("reps", 3));
    const std::string trace_path =
        cfg.get_string("trace", "perf_lifecycle.trace.ndjson");
    const bool keep_trace = cfg.get_bool("keep_trace", false);

    core::experiment_setup::options setup_opts;
    setup_opts.workload.user_count = train_users;
    setup_opts.forest.tree_count = trees;
    setup_opts.seed = seed;
    std::cerr << "[perf] training setup: " << train_users << " users, " << trees
              << " trees...\n";
    const core::experiment_setup setup(setup_opts);

    core::service_params sp;
    sp.experiment.kind = core::scheduler_kind::richnote;
    sp.experiment.weekly_budget_mb = budget_mb;
    sp.experiment.seed = seed;
    sp.user_count = users;
    sp.worker_threads = threads;
    sp.queue_capacity = queue;

    // Passes 1 and 2, interleaved reps= times: the zero-cost baseline vs
    // the tracker-only wall-clock plane the ≤2% ceiling governs. Each mode
    // keeps its best wall time (see the header comment).
    std::optional<obs::lifecycle_tracker> lifecycle;
    pass_result off;
    pass_result on;
    for (int rep = 0; rep < std::max(1, reps); ++rep) {
        // Alternate which mode goes first within the pair so any
        // directional drift (frequency scaling, heating) penalizes both
        // modes equally across reps instead of always taxing the second.
        for (int half = 0; half < 2; ++half) {
            const bool enabled = (half == 0) == (rep % 2 == 1);
            if (enabled) {
                lifecycle.emplace(); // fresh tracker: counts are one pass's
                sp.experiment.lifecycle = &*lifecycle;
                const pass_result r = run_pass(setup, sp, rounds, "lifecycle on");
                if (on.wall_sec == 0.0 || r.wall_sec < on.wall_sec) on = r;
            } else {
                sp.experiment.lifecycle = nullptr;
                const pass_result r = run_pass(setup, sp, rounds, "lifecycle off");
                if (off.wall_sec == 0.0 || r.wall_sec < off.wall_sec) off = r;
            }
        }
    }

    // Pass 3: tracker + streaming NDJSON sink, the full stack a production
    // `richnote serve trace=...` run pays. Informational only.
    obs::lifecycle_tracker traced_lifecycle;
    obs::trace_sink sink(users);
    sink.attach_file(trace_path);
    sp.experiment.lifecycle = &traced_lifecycle;
    sp.experiment.trace = &sink;
    const pass_result traced = run_pass(setup, sp, rounds, "lifecycle + trace");
    sink.finalize();
    if (!keep_trace) std::remove(trace_path.c_str());

    const double overhead_pct =
        off.rounds_per_sec > 0.0
            ? (off.rounds_per_sec - on.rounds_per_sec) / off.rounds_per_sec * 100.0
            : 0.0;
    std::cerr << "[perf] lifecycle overhead: " << overhead_pct << "% ("
              << off.rounds_per_sec << " -> " << on.rounds_per_sec
              << " rounds/s; with NDJSON sink " << traced.rounds_per_sec
              << " rounds/s, " << sink.event_count() << " trace events; "
              << lifecycle->tracked() << " tracked, " << lifecycle->delivered()
              << " delivered)\n";

    const std::string uarch = std::string(ml::simd::arch_name()) + "/" +
                              ml::simd::isa_name(ml::simd::active_isa());

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << "  \"bench\": \"perf_lifecycle\",\n"
         << "  \"schema\": \"richnote-bench-v1\",\n"
         << "  \"params\": {\"train_users\": " << train_users
         << ", \"users\": " << users << ", \"rounds\": " << rounds
         << ", \"worker_threads\": " << threads << ", \"seed\": " << seed
         << ", \"trees\": " << trees << ", \"weekly_budget_mb\": " << budget_mb
         << ", \"uarch\": \"" << uarch << "\"},\n"
         << "  \"lifecycle\": {\"rounds_run\": " << rounds
         << ", \"wall_sec_disabled\": " << off.wall_sec
         << ", \"wall_sec_enabled\": " << on.wall_sec
         << ", \"wall_sec_traced\": " << traced.wall_sec
         << ", \"rounds_per_sec_disabled\": " << off.rounds_per_sec
         << ", \"rounds_per_sec_enabled\": " << on.rounds_per_sec
         << ", \"rounds_per_sec_traced\": " << traced.rounds_per_sec
         << ", \"overhead_pct\": " << overhead_pct
         << ", \"tracked\": " << lifecycle->tracked()
         << ", \"delivered\": " << lifecycle->delivered()
         << ", \"trace_events\": " << sink.event_count() << "}\n"
         << "}\n";

    if (cfg.has("json")) {
        const std::string path = cfg.get_string("json", "");
        std::ofstream out(path);
        out << json.str();
        std::cerr << "[perf] wrote " << path << '\n';
    } else {
        std::cout << json.str();
    }

    if (cfg.has("manifest")) {
        obs::run_manifest manifest("perf_lifecycle");
        manifest.set_seed(seed);
        manifest.add_config("train_users", static_cast<std::uint64_t>(train_users));
        manifest.add_config("users", static_cast<std::uint64_t>(users));
        manifest.add_config("rounds", rounds);
        manifest.add_config("threads", static_cast<std::uint64_t>(threads));
        manifest.add_config("uarch", uarch);
        manifest.add_timing("rounds_per_sec_disabled", off.rounds_per_sec);
        manifest.add_timing("rounds_per_sec_enabled", on.rounds_per_sec);
        manifest.add_timing("overhead_pct", overhead_pct);
        manifest.write_file(cfg.get_string("manifest", ""));
        std::cerr << "[perf] wrote manifest to " << cfg.get_string("manifest", "")
                  << '\n';
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Fault-tolerance companion figure: delivered utility and delivery ratio
// versus fault intensity for RichNote and the fixed-level baselines.
//
// Intensity x scales a reference chaos schedule — blackout windows, flaky
// partial transfers, duplicated and reordered arrivals, battery brownouts
// and broker crash-restarts all at once (faults::fault_plan_params::scaled).
// The fault schedule is a pure function of (fault seed, user, round), so
// every scheduler faces the *same* faults at each x, and a run is
// reproducible regardless of worker sharding. The resilient pipeline
// (byte-level resume, retry budget with backoff, idempotent admission,
// checkpointed crash recovery) is what keeps the curves from collapsing.
//
// Usage: fig_fault_tolerance [users=200] [seed=1] [trees=30] [budget=10]
//        [fault_seed=7] [csv=fault_tolerance.csv]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv, {"budget", "fault_seed"});
    const config cfg = config::from_args(argc, argv);
    const double budget = cfg.get_double("budget", 10.0);
    const auto fault_seed = static_cast<std::uint64_t>(cfg.get_int("fault_seed", 7));
    const auto setup = bench::build_setup(opts);

    // Reference schedule at intensity 1: every fault kind active.
    faults::fault_plan_params reference;
    reference.seed = fault_seed;
    reference.blackout_prob = 0.05;
    reference.partial_transfer_prob = 0.10;
    reference.duplicate_prob = 0.05;
    reference.reorder_prob = 0.05;
    reference.brownout_prob = 0.03;
    reference.crash_restart_prob = 0.02;

    const std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};

    bench::figure_output out({"scheduler", "intensity", "utility", "delivery ratio",
                              "retries", "dead-lettered", "dup suppressed",
                              "crash restarts", "resumed MB"});
    for (auto kind : {core::scheduler_kind::richnote, core::scheduler_kind::fifo,
                      core::scheduler_kind::util}) {
        for (const double x : intensities) {
            core::experiment_params params;
            params.kind = kind;
            params.fixed_level = 3;
            params.weekly_budget_mb = budget;
            params.seed = opts.run_seed;
            params.faults = reference.scaled(x);
            params.retry.max_attempts = 8;
            const auto r = core::run_experiment(*setup, params);

            out.add_row({r.scheduler_name, format_double(x, 2),
                         format_double(r.total_utility, 1),
                         format_double(r.delivery_ratio, 4),
                         std::to_string(r.faults.transfer_retries),
                         std::to_string(r.faults.dead_lettered),
                         std::to_string(r.faults.duplicates_suppressed),
                         std::to_string(r.faults.crash_restarts),
                         format_double(r.faults.resumed_bytes / 1e6, 2)});
        }
    }
    out.emit("Fault tolerance: utility vs injected fault intensity (" +
                 format_double(budget, 0) + " MB/week)",
             opts.csv_path);
    std::cout << "expected: utility degrades gracefully with intensity instead of "
                 "collapsing;\nresumed bytes grow with the partial-transfer rate, and "
                 "crash restarts leave the\ncurves smooth (checkpoint recovery is "
                 "lossless).\n";
    bench::write_run_manifest(opts, "fig_fault_tolerance");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Fig. 5(a): RichNote vs every fixed presentation level.
//
// The paper sweeps UTIL fixed at each of the six levels and shows that "no
// single fixed presentation method performs well with respect to the
// utility in all scenarios": short previews win at small budgets, the 20 s
// level wins between ~20 and ~50 MB, and the 30-40 s levels win beyond —
// while RichNote tracks or beats the best fixed level everywhere.
//
// Usage: fig5a_fixed_levels [users=200] [seed=1] [trees=30] [budgets=...] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    using core::scheduler_kind;
    const auto opts = bench::parse_options(argc, argv);
    const auto setup = bench::build_setup(opts);

    std::vector<std::string> headers = {"budget(MB)", "RichNote"};
    const std::vector<std::string> level_names = {"meta", "+5s", "+10s",
                                                  "+20s", "+30s", "+40s"};
    for (const auto& n : level_names) headers.push_back("UTIL(" + n + ")");

    bench::figure_output out(std::move(headers));
    for (double budget : opts.budgets_mb) {
        std::vector<std::string> row = {format_double(budget, 0)};
        const auto rn = bench::run_cell(*setup, scheduler_kind::richnote, 3, budget, opts);
        row.push_back(format_double(rn.total_utility, 1));
        double best_fixed = 0.0;
        for (core::level_t level = 1; level <= 6; ++level) {
            const auto r = bench::run_cell(*setup, scheduler_kind::util, level, budget, opts);
            best_fixed = std::max(best_fixed, r.total_utility);
            row.push_back(format_double(r.total_utility, 1));
        }
        out.add_row(std::move(row));
    }
    out.emit("Fig. 5(a): total utility — RichNote vs fixed presentation levels",
             opts.csv_path);
    std::cout << "paper shape: crossovers between fixed levels as the budget grows "
                 "(short previews win\nsmall budgets, long previews win large ones); "
                 "RichNote tracks the upper envelope.\n";
    bench::write_run_manifest(opts, "fig5a_fixed_levels");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

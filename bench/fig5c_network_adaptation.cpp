// Fig. 5(c): presentation mix when WIFI is available (§V-D3).
//
// The network follows the paper's WIFI/CELL/OFF Markov model (50%
// self-transition, equal transitions to cell or wifi when off). WiFi
// traffic is unmetered, so "when devices use wifi, they receive richer
// presentations than cellular only option ... because wifi allows more
// data to deliver". The harness prints the level mix side by side for the
// cellular-only and with-wifi models at each budget.
//
// Usage: fig5c_network_adaptation [users=200] [seed=1] [trees=30] [budgets=...] [csv=...]
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const auto opts = bench::parse_options(argc, argv);
    const auto setup = bench::build_setup(opts);

    bench::figure_output out({"budget(MB)", "network", "media_share", "+40s_share",
                              "delivered_MB", "metered_MB"});
    for (double budget : opts.budgets_mb) {
        for (bool wifi : {false, true}) {
            const auto r = bench::run_cell(*setup, core::scheduler_kind::richnote, 3,
                                           budget, opts, wifi);
            double media = 0.0;
            for (std::size_t level = 2; level < r.level_mix.size(); ++level)
                media += r.level_mix[level];
            out.add_row({format_double(budget, 0), wifi ? "cell+wifi" : "cell-only",
                         format_double(media, 3), format_double(r.level_mix.back(), 3),
                         format_double(r.delivered_mb, 1),
                         format_double(r.metered_mb, 1)});
        }
    }
    out.emit("Fig. 5(c): presentation mix with and without WIFI availability",
             opts.csv_path);
    std::cout << "paper shape: with wifi, richer presentations at the same cellular "
                 "budget (unmetered\nbytes), so media and 40s shares rise.\n";
    bench::write_run_manifest(opts, "fig5c_network_adaptation");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

// Fig. 2(a): presentation utility as observed from the user survey —
// which of the 20 surveyed (sampling rate x duration) presentations are
// Pareto-"useful".
//
// The paper surveyed 4 rates x 5 durations, observed scores from 0.3 to
// 3.3, and found "only six useful presentations, which constituted a
// monotone rise in utility scores across their respective sizes". This
// harness runs the simulated survey, prints all 20 rated presentations and
// marks the Pareto-useful subset.
//
// Usage: fig2a_pareto [seed=1] [respondents=80] [csv=...]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/presentation.hpp"
#include "trace/survey.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"seed", "respondents", "csv", "users"}); // users accepted (and ignored) so sweep scripts can pass it uniformly
    trace::survey_params params;
    params.respondents = static_cast<std::size_t>(cfg.get_int("respondents", 80));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    const trace::survey survey(params, seed);

    // Pareto-prune the surveyed presentations by (size, mean score).
    std::vector<core::presentation_candidate> candidates;
    for (const auto& r : survey.ratings()) {
        core::presentation_candidate c;
        c.label = format_double(r.sample_rate_khz, 0) + "kHz/" +
                  format_double(r.duration_sec, 0) + "s";
        c.size_bytes = r.size_bytes;
        c.utility = r.mean_score;
        c.preview_sec = r.duration_sec;
        candidates.push_back(std::move(c));
    }
    const auto useful = core::pareto_prune(candidates);

    auto is_useful = [&](const std::string& label) {
        for (const auto& u : useful)
            if (u.label == label) return true;
        return false;
    };

    bench::figure_output out({"presentation", "size", "mean score (0-5)", "useful?"});
    for (const auto& c : candidates) {
        out.add_row({c.label, format_bytes(c.size_bytes), format_double(c.utility, 2),
                     is_useful(c.label) ? "yes" : "dominated"});
    }
    std::optional<std::string> csv;
    if (cfg.has("csv")) csv = cfg.get_string("csv", "");
    out.emit("Fig. 2(a): surveyed presentations and the Pareto-useful subset", csv);

    std::cout << "useful presentations: " << useful.size() << " of "
              << candidates.size() << "  (paper: 6 of 20)\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

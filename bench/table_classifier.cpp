// §V-A table: content-utility classifier quality.
//
// The paper trains a Weka Random Forest on click-vs-hover labels with
// five-fold cross-validation and reports precision 0.700 and accuracy
// 0.689. This harness reproduces the pipeline on the synthetic trace:
// generate the workload, build the attended-only training set, run 5-fold
// CV, and print per-fold plus mean precision/accuracy/recall, with the
// paper's numbers alongside.
//
// Usage: table_classifier [users=200] [seed=1] [trees=30] [folds=5] [csv=...]
#include <iostream>

#include "bench_common.hpp"
#include "core/utility.hpp"
#include "ml/metrics.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    auto opts = bench::parse_options(argc, argv, {"folds"});
    const config cfg = config::from_args(argc, argv);
    const auto folds = static_cast<std::size_t>(cfg.get_int("folds", 5));

    auto setup_opts = opts.setup;
    const trace::workload world(setup_opts.workload, setup_opts.seed);
    const ml::dataset data = core::make_training_set(world.notifications());
    std::cerr << "[setup] training set: " << data.size() << " attended notifications, "
              << format_double(100.0 * data.positive_fraction(), 1) << "% clicked\n";

    ml::forest_params params;
    params.tree_count = setup_opts.forest.tree_count;
    const auto cv = ml::cross_validate_forest(data, params, folds, setup_opts.seed);

    bench::figure_output out({"fold", "accuracy", "precision", "recall"});
    for (std::size_t f = 0; f < cv.folds.size(); ++f) {
        out.add_row({std::to_string(f + 1), format_double(cv.folds[f].accuracy(), 3),
                     format_double(cv.folds[f].precision(), 3),
                     format_double(cv.folds[f].recall(), 3)});
    }
    out.add_row({"mean", format_double(cv.mean_accuracy(), 3),
                 format_double(cv.mean_precision(), 3),
                 format_double(cv.mean_recall(), 3)});
    out.add_row({"paper", "0.689", "0.700", "-"});
    out.emit("Table (Sec. V-A): Random Forest click-vs-hover classifier, " +
                 std::to_string(folds) + "-fold CV",
             opts.csv_path);

    // AUC as an additional sanity check that the learned ranking carries
    // real signal (not part of the paper's table).
    ml::random_forest forest;
    forest.fit(data, params, setup_opts.seed ^ 0x5a5a5a5aULL);
    const double auc = ml::auc(
        data, [&](std::span<const double> row) { return forest.predict_proba(row); });
    std::cout << "training-set AUC: " << format_double(auc, 3) << '\n';
    bench::write_run_manifest(opts, "table_classifier");
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

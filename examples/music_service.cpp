// End-to-end walkthrough of the full RichNote pipeline on the Spotify-like
// use case — the long-form companion to quickstart.cpp. It exercises every
// phase the paper describes, narrating as it goes:
//
//   1. survey-driven presentation utility (§V-B): run the simulated stop-
//      duration survey, fit the logarithmic duration-utility law, and
//      build the audio presentation generator from the FITTED coefficients
//      (instead of the paper's published Eq. 8 constants);
//   2. trace-driven content utility (§V-A): generate the workload, train
//      the Random Forest on click-vs-hover labels, cross-validate;
//   3. selection & scheduling (§IV): run RichNote against FIFO/UTIL over a
//      budget sweep and report the §V-C metrics.
//
// Usage: music_service [users=150] [seed=1] [trees=30]
#include <iostream>

#include "common/config.hpp"
#include "common/regression.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "ml/metrics.hpp"
#include "trace/survey.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"users", "seed", "trees"});
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 150));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto trees = static_cast<std::size_t>(cfg.get_int("trees", 30));

    // ---- Phase 1: presentation utility from the survey (§V-B) ----------
    std::cout << "Phase 1 — presentation utility from the simulated survey\n";
    trace::survey_params survey_params;
    const trace::survey survey(survey_params, seed);
    const std::vector<double> durations = {5, 10, 20, 30, 40};
    const auto cdf = survey.duration_utility(durations);
    const auto fit = fit_log_law(durations, cdf);
    std::cout << "  fitted util(d) = " << format_double(fit.intercept, 3) << " + "
              << format_double(fit.slope, 3) << " * log(1+d)   (paper Eq. 8: -0.397 + "
                 "0.352 log(1+d); R^2 = "
              << format_double(fit.r_squared, 3) << ")\n";

    core::audio_preview_generator::params gen_params;
    gen_params.duration_log_a = fit.intercept;
    gen_params.duration_log_b = fit.slope;
    const core::audio_preview_generator generator(gen_params);
    table levels({"level", "label", "size", "U_p"});
    const auto sample_levels = generator.generate(276.0);
    for (core::level_t j = 1; j <= sample_levels.level_count(); ++j) {
        levels.add_row({std::to_string(j), sample_levels.at(j).label,
                        format_bytes(sample_levels.size(j)),
                        format_double(sample_levels.utility(j), 3)});
    }
    std::cout << levels << '\n';

    // ---- Phase 2: content utility from the trace (§V-A) ----------------
    std::cout << "Phase 2 — content utility from the labeled trace\n";
    core::experiment_setup::options opts;
    opts.workload.user_count = users;
    opts.forest.tree_count = trees;
    opts.seed = seed;
    const core::experiment_setup setup(opts);
    const auto& trace = setup.world().notifications();
    std::cout << "  " << trace.total_count << " notifications, " << trace.attended_count
              << " attended (training rows), " << trace.clicked_count << " clicked\n";

    ml::dataset data = core::make_training_set(trace);
    if (data.size() > 8000) {
        // Cap the CV cost on big traces with a shuffled subsample.
        data = data.train_test_split(1.0 - 8000.0 / static_cast<double>(data.size()),
                                     seed)
                   .first;
    }
    ml::forest_params fp;
    fp.tree_count = trees;
    const auto cv = ml::cross_validate_forest(data, fp, 5, seed);
    std::cout << "  5-fold CV: accuracy " << format_double(cv.mean_accuracy(), 3)
              << ", precision " << format_double(cv.mean_precision(), 3)
              << "  (paper: 0.689 / 0.700)\n\n";

    // ---- Phase 3: scheduling (§IV + §V-D) -------------------------------
    std::cout << "Phase 3 — round-based scheduling across a budget sweep\n";
    table results({"budget(MB)", "scheduler", "delivery%", "utility", "delay(min)"});
    for (double budget : {2.0, 10.0, 50.0}) {
        for (auto kind : {core::scheduler_kind::richnote, core::scheduler_kind::fifo,
                          core::scheduler_kind::util}) {
            core::experiment_params params;
            params.kind = kind;
            params.fixed_level = 3;
            params.weekly_budget_mb = budget;
            params.presentation = gen_params; // survey-fitted utility law
            params.seed = seed;
            const auto r = core::run_experiment(setup, params);
            results.add_row({format_double(budget, 0), r.scheduler_name,
                             format_double(100.0 * r.delivery_ratio, 1),
                             format_double(r.total_utility, 1),
                             format_double(r.mean_delay_min, 1)});
        }
    }
    std::cout << results;
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

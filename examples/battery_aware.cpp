// Energy-aware scheduling: watching the Lyapunov virtual energy queue work.
//
// This example pins everything except energy: one user, always-on cellular,
// generous data budget, steady arrivals — and a *tight* per-round energy
// allowance kappa. It traces Q(t), P(t) and per-round energy spending for
// RichNote, then reruns the same tape with kappa relaxed, showing how the
// (P(t) - kappa) * rho(i, j) term and the delivery gate throttle radio
// usage when energy is scarce (the mechanism behind Fig. 4(c)).
//
// Usage: battery_aware [seed=1] [rounds=48] [kappa=6]   (kappa in J/round)
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "energy/model.hpp"

namespace {

using namespace richnote;

struct run_summary {
    double delivered = 0;
    double energy = 0;
    double utility = 0;
};

run_summary run(double kappa, int rounds, std::uint64_t seed, bool narrate) {
    const core::audio_preview_generator generator{
        core::audio_preview_generator::params{}};
    const energy::energy_model energy;

    core::richnote_scheduler::params params;
    params.lyapunov.kappa = kappa;
    params.lyapunov.initial_energy_credit = kappa;
    core::richnote_scheduler scheduler(params, energy);

    rng gen(seed);
    std::uint64_t next_id = 0;
    run_summary summary;
    table trace({"round", "P(t) J", "Q(t) KB", "delivered", "round energy J"});

    for (int round = 0; round < rounds; ++round) {
        // Two arrivals per round, random utility.
        for (int k = 0; k < 2; ++k) {
            core::sched_item item;
            item.note.id = next_id++;
            item.note.recipient = 0;
            item.note.created_at = round * sim::hours;
            item.content_utility = gen.uniform(0.2, 1.0);
            item.presentations = generator.generate(276.0);
            item.arrived_at = item.note.created_at;
            scheduler.enqueue(std::move(item));
        }

        core::round_context ctx;
        ctx.now = round * sim::hours;
        ctx.data_budget_bytes = 2e6; // generous: energy is the binding budget
        ctx.network = sim::net_state::cell;
        ctx.metered = true;
        ctx.link_capacity_bytes = 1e9;
        ctx.energy_replenishment = kappa; // e(t) = kappa while battery is fine

        int delivered_this_round = 0;
        double energy_this_round = 0;
        for (const auto& d : scheduler.plan(ctx)) {
            if (!scheduler.allow_delivery(d.rho_joules)) break;
            scheduler.on_delivered(d.item_id, d.rho_joules);
            ++delivered_this_round;
            energy_this_round += d.rho_joules;
            summary.utility += d.utility;
        }
        summary.delivered += delivered_this_round;
        summary.energy += energy_this_round;
        if (narrate && (round < 8 || round % 12 == 0)) {
            trace.add_row({std::to_string(round),
                           format_double(scheduler.controller().energy_credit(), 1),
                           format_double(scheduler.controller().queue_backlog() / 1000, 0),
                           std::to_string(delivered_this_round),
                           format_double(energy_this_round, 1)});
        }
    }
    if (narrate) std::cout << trace;
    return summary;
}

} // namespace

int main(int argc, char** argv) try {
    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"seed", "rounds", "kappa"});
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const auto rounds = static_cast<int>(cfg.get_int("rounds", 48));
    const double tight_kappa = cfg.get_double("kappa", 6.0);

    std::cout << "Tight energy budget (kappa = " << tight_kappa << " J/round):\n";
    const auto tight = run(tight_kappa, rounds, seed, /*narrate=*/true);

    std::cout << "\nRelaxed energy budget (kappa = 3000 J/round):\n";
    const auto relaxed = run(3000.0, rounds, seed, /*narrate=*/false);

    table compare({"kappa (J/round)", "delivered", "total energy (J)", "utility"});
    compare.add_row({format_double(tight_kappa, 0), format_double(tight.delivered, 0),
                     format_double(tight.energy, 1), format_double(tight.utility, 1)});
    compare.add_row({"3000", format_double(relaxed.delivered, 0),
                     format_double(relaxed.energy, 1), format_double(relaxed.utility, 1)});
    std::cout << '\n' << compare;

    const double envelope = tight_kappa * rounds;
    std::cout << "\ntight-run energy " << format_double(tight.energy, 1)
              << " J vs kappa envelope " << format_double(envelope, 1)
              << " J — the delivery gate fires only between items, so each round may\n"
                 "overshoot by at most one item's rho, but the virtual queue still cut "
              << format_double(100.0 * (1.0 - tight.energy / relaxed.energy), 0)
              << "% of the unconstrained spending.\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

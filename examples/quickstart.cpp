// Quickstart: generate a small synthetic Spotify-like workload, train the
// content-utility model, and compare RichNote against the FIFO and UTIL
// baselines at one weekly data budget.
//
// Usage: quickstart [users=100] [budget_mb=10] [seed=1]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;

    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"users", "budget_mb", "seed"});

    core::experiment_setup::options opts;
    opts.workload.user_count = static_cast<std::size_t>(cfg.get_int("users", 100));
    opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    opts.forest.tree_count = 20;

    std::cout << "Generating workload (" << opts.workload.user_count
              << " users, one week) and training the content-utility forest...\n";
    core::experiment_setup setup(opts);
    const auto& trace = setup.world().notifications();
    std::cout << "  " << trace.total_count << " notifications, " << trace.attended_count
              << " attended, " << trace.clicked_count << " clicked\n\n";

    core::experiment_params params;
    params.weekly_budget_mb = cfg.get_double("budget_mb", 10.0);
    params.seed = opts.seed;

    table results({"scheduler", "delivery%", "recall", "precision", "utility",
                   "energy(KJ)", "delay(min)"});
    for (auto kind : {core::scheduler_kind::richnote, core::scheduler_kind::fifo,
                      core::scheduler_kind::util}) {
        params.kind = kind;
        params.fixed_level = 3; // baselines: metadata + 10 s preview
        const core::experiment_result r = core::run_experiment(setup, params);
        results.add_row({r.scheduler_name, format_double(100.0 * r.delivery_ratio, 1),
                         format_double(r.recall, 3), format_double(r.precision, 3),
                         format_double(r.total_utility, 1), format_double(r.energy_kj, 1),
                         format_double(r.mean_delay_min, 1)});
    }
    std::cout << "Weekly budget: " << params.weekly_budget_mb << " MB\n" << results;
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

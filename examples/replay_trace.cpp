// Replaying an EXTERNAL notification trace — the workflow for anyone with
// their own logs (the paper's own input was a de-identified production
// trace, not a generator).
//
// The example round-trips through the library's file formats end to end:
//   1. export a workload to trace.csv (standing in for "your logs");
//   2. load it back with trace::load_trace — from here on, nothing below
//      touches the generator;
//   3. train the content-utility forest on the loaded trace and persist it
//      with random_forest::save_file;
//   4. synthesize + save + reload per-user battery-status traces (§V-C's
//      battery input);
//   5. drive a RichNote broker for one user directly from the loaded
//      artifacts and print what got delivered.
//
// Usage: replay_trace [users=40] [seed=1] [budget_kb_per_round=150]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/broker.hpp"
#include "core/utility.hpp"
#include "ml/metrics.hpp"
#include "sim/battery_trace.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) try {
    using namespace richnote;
    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"users", "seed", "budget_kb_per_round"});
    const auto users = static_cast<std::size_t>(cfg.get_int("users", 40));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const double theta = cfg.get_double("budget_kb_per_round", 150.0) * 1000.0;

    const std::string trace_path = "/tmp/richnote_replay_trace.csv";
    const std::string model_path = "/tmp/richnote_replay_model.forest";
    const std::string battery_path = "/tmp/richnote_replay_battery.csv";

    // 1. Stand-in for external logs. Keep the catalog: an external
    // deployment knows its own content durations.
    trace::workload_params wp;
    wp.user_count = users;
    const trace::workload world(wp, seed);
    trace::save_trace(trace_path, world.notifications());
    std::cout << "exported " << world.notifications().total_count << " notifications to "
              << trace_path << '\n';

    // 2. Reload — the replay side of the pipeline starts here.
    const auto replayed = trace::load_trace(trace_path, users);

    // 3. Train + persist + reload the utility model.
    {
        const ml::dataset data = core::make_training_set(replayed);
        ml::random_forest forest;
        ml::forest_params params;
        params.tree_count = 20;
        forest.fit(data, params, seed);
        forest.save_file(model_path);
    }
    auto forest = std::make_shared<ml::random_forest>();
    forest->load_file(model_path);
    const core::forest_content_utility utility(forest);
    std::cout << "trained, saved and reloaded the content-utility model ("
              << forest->tree_count() << " trees)\n";

    // 4. Battery-status trace round trip (§V-C input).
    {
        rng gen(seed ^ 0xbeefULL);
        sim::battery_trace::synthesize(sim::battery_params{}, sim::weeks, sim::hours, gen)
            .save(battery_path);
    }
    auto battery =
        std::make_unique<sim::traced_battery>(sim::battery_trace::load(battery_path));
    std::cout << "replaying battery status from " << battery_path << " ("
              << battery->trace().size() << " samples)\n\n";

    // 5. Drive the busiest user's week through a broker.
    trace::user_id busiest = 0;
    for (trace::user_id u = 1; u < users; ++u) {
        if (replayed.per_user[u].size() > replayed.per_user[busiest].size()) busiest = u;
    }

    const core::audio_preview_generator generator{core::audio_preview_generator::params{}};
    const energy::energy_model energy;
    core::metrics_recorder metrics(users, 6);
    core::broker_params bp;
    bp.budget_per_round_bytes = theta;
    core::broker broker(busiest, bp,
                        std::make_unique<core::richnote_scheduler>(
                            core::richnote_scheduler::params{}, energy),
                        generator, utility, energy,
                        sim::markov_network_model::cellular_only(),
                        std::move(battery), world.catalog(), metrics, seed);

    const auto& stream = replayed.per_user[busiest];
    std::size_t cursor = 0;
    for (int round = 0; round <= 168; ++round) {
        const double now = round * sim::hours;
        while (cursor < stream.size() && stream[cursor].created_at <= now) {
            broker.admit(stream[cursor]);
            ++cursor;
        }
        broker.run_round(now);
    }

    const auto& m = metrics.user(busiest);
    table summary({"metric", "value"});
    summary.add_row({"items in trace", std::to_string(stream.size())});
    summary.add_row({"delivered", std::to_string(m.delivered)});
    summary.add_row({"delivery ratio", format_double(m.delivery_ratio(), 3)});
    summary.add_row({"bytes delivered", format_bytes(m.bytes_delivered)});
    summary.add_row({"utility", format_double(m.utility_delivered, 2)});
    summary.add_row({"energy (J)", format_double(m.energy_joules, 1)});
    std::cout << "busiest user (" << busiest << ") replay:\n" << summary;

    std::remove(trace_path.c_str());
    std::remove(model_path.c_str());
    std::remove(battery_path.c_str());
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

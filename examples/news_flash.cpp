// RichNote beyond audio: a breaking-news service with image/video
// presentations.
//
// §III-B: "Different generators may exist for different content types,
// which are developed by the content providers." This example implements a
// custom presentation_generator for news items (headline -> thumbnail ->
// photo -> video clip), a custom content-utility model (editorial priority
// x topic affinity), and drives the RichNote scheduler directly through
// its public interface — no Spotify-specific machinery involved. It shows
// the library is a general notification-scheduling toolkit, not a
// single-workload harness.
//
// Usage: news_flash [seed=1] [budget_kb_per_round=300] [rounds=24]
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "energy/model.hpp"

namespace {

using namespace richnote;

/// News presentations: four fixed levels with diminishing returns.
class news_generator final : public core::presentation_generator {
public:
    core::presentation_set generate(double /*full_duration_sec*/) const override {
        std::vector<core::presentation> levels;
        levels.push_back({"headline", 300.0, 0.15, 0.0});
        levels.push_back({"headline+thumb", 15'000.0, 0.45, 0.0});
        levels.push_back({"headline+photo", 120'000.0, 0.75, 0.0});
        levels.push_back({"headline+clip", 900'000.0, 1.0, 10.0});
        return core::presentation_set(std::move(levels));
    }
};

struct news_item {
    const char* slug;
    double editorial_priority; ///< how big the story is, [0,1]
    double topic_affinity;     ///< how much this user cares, [0,1]
};

} // namespace

int main(int argc, char** argv) try {
    const config cfg = config::from_args(argc, argv);
    cfg.restrict_to({"seed", "budget_kb_per_round", "rounds"});
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    const double theta = cfg.get_double("budget_kb_per_round", 300.0) * 1000.0;
    const auto rounds = static_cast<int>(cfg.get_int("rounds", 24));

    const news_generator generator;
    const energy::energy_model energy;

    core::richnote_scheduler::params params;
    core::richnote_scheduler scheduler(params, energy);

    // A day of breaking news for one reader.
    const std::vector<news_item> stories = {
        {"earthquake-recap", 0.9, 0.3},   {"local-team-wins", 0.5, 0.9},
        {"market-dip", 0.6, 0.2},         {"transit-strike", 0.7, 0.8},
        {"celebrity-gossip", 0.3, 0.1},   {"weather-warning", 0.8, 0.7},
        {"tech-keynote", 0.4, 0.95},      {"city-council", 0.2, 0.4},
    };

    rng gen(seed);
    std::vector<news_item> pending = stories;
    std::uint64_t next_id = 0;
    double budget = 0.0;

    table log({"round", "delivered", "level", "size", "U(i,j)"});
    double total_utility = 0.0;
    for (int round = 0; round < rounds; ++round) {
        // A couple of new stories arrive at random rounds.
        while (!pending.empty() && gen.bernoulli(0.35)) {
            const news_item story = pending.back();
            pending.pop_back();
            core::sched_item item;
            item.note.id = next_id++;
            item.note.recipient = 0;
            item.note.created_at = round * sim::hours;
            item.content_utility = story.editorial_priority * story.topic_affinity;
            item.presentations = generator.generate(0.0);
            item.arrived_at = item.note.created_at;
            scheduler.enqueue(std::move(item));
        }

        budget += theta;
        core::round_context ctx;
        ctx.now = round * sim::hours;
        ctx.data_budget_bytes = budget;
        ctx.network = sim::net_state::cell;
        ctx.metered = true;
        ctx.link_capacity_bytes = 1e9;
        ctx.energy_replenishment = 3000.0;

        for (const auto& d : scheduler.plan(ctx)) {
            budget -= d.size_bytes;
            total_utility += d.utility;
            scheduler.on_delivered(d.item_id, d.rho_joules);
            log.add_row({std::to_string(round), std::to_string(d.item_id),
                         std::to_string(d.level), format_bytes(d.size_bytes),
                         format_double(d.utility, 3)});
        }
    }

    std::cout << "News-flash delivery log (budget " << format_bytes(theta)
              << "/round):\n"
              << log << "total utility: " << format_double(total_utility, 2)
              << ", still queued: " << scheduler.queue_size() << '\n';
    std::cout << "\nNote how big stories the reader cares about get the video clip\n"
                 "while low-affinity items ship as bare headlines.\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/music_service.dir/music_service.cpp.o"
  "CMakeFiles/music_service.dir/music_service.cpp.o.d"
  "music_service"
  "music_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for music_service.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/news_flash.dir/news_flash.cpp.o"
  "CMakeFiles/news_flash.dir/news_flash.cpp.o.d"
  "news_flash"
  "news_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/battery_aware.dir/battery_aware.cpp.o"
  "CMakeFiles/battery_aware.dir/battery_aware.cpp.o.d"
  "battery_aware"
  "battery_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

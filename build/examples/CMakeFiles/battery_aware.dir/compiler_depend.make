# Empty compiler generated dependencies file for battery_aware.
# This may be replaced when dependencies are built.

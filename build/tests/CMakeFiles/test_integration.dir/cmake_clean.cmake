file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/core/test_experiment.cpp.o"
  "CMakeFiles/test_integration.dir/core/test_experiment.cpp.o.d"
  "CMakeFiles/test_integration.dir/core/test_experiment_properties.cpp.o"
  "CMakeFiles/test_integration.dir/core/test_experiment_properties.cpp.o.d"
  "CMakeFiles/test_integration.dir/core/test_online_learning.cpp.o"
  "CMakeFiles/test_integration.dir/core/test_online_learning.cpp.o.d"
  "CMakeFiles/test_integration.dir/core/test_telemetry.cpp.o"
  "CMakeFiles/test_integration.dir/core/test_telemetry.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

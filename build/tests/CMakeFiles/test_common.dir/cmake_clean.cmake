file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_bootstrap.cpp.o"
  "CMakeFiles/test_common.dir/common/test_bootstrap.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_indexed_heap.cpp.o"
  "CMakeFiles/test_common.dir/common/test_indexed_heap.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_regression.cpp.o"
  "CMakeFiles/test_common.dir/common/test_regression.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_table_csv_config.cpp.o"
  "CMakeFiles/test_common.dir/common/test_table_csv_config.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_zipf.cpp.o"
  "CMakeFiles/test_common.dir/common/test_zipf.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_broker.cpp" "tests/CMakeFiles/test_core.dir/core/test_broker.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_broker.cpp.o.d"
  "/root/repo/tests/core/test_failure_injection.cpp" "tests/CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o.d"
  "/root/repo/tests/core/test_lyapunov.cpp" "tests/CMakeFiles/test_core.dir/core/test_lyapunov.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_lyapunov.cpp.o.d"
  "/root/repo/tests/core/test_mckp.cpp" "tests/CMakeFiles/test_core.dir/core/test_mckp.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mckp.cpp.o.d"
  "/root/repo/tests/core/test_mckp_2d.cpp" "tests/CMakeFiles/test_core.dir/core/test_mckp_2d.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mckp_2d.cpp.o.d"
  "/root/repo/tests/core/test_mckp_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_mckp_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mckp_properties.cpp.o.d"
  "/root/repo/tests/core/test_metrics_recorder.cpp" "tests/CMakeFiles/test_core.dir/core/test_metrics_recorder.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metrics_recorder.cpp.o.d"
  "/root/repo/tests/core/test_presentation.cpp" "tests/CMakeFiles/test_core.dir/core/test_presentation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_presentation.cpp.o.d"
  "/root/repo/tests/core/test_scheduler.cpp" "tests/CMakeFiles/test_core.dir/core/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_scheduler_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_scheduler_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scheduler_properties.cpp.o.d"
  "/root/repo/tests/core/test_utility.cpp" "tests/CMakeFiles/test_core.dir/core/test_utility.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_utility.cpp.o.d"
  "/root/repo/tests/core/test_video_generator.cpp" "tests/CMakeFiles/test_core.dir/core/test_video_generator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_video_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/richnote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/richnote_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/richnote_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/richnote_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/richnote_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/richnote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/richnote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_broker.cpp.o"
  "CMakeFiles/test_core.dir/core/test_broker.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lyapunov.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lyapunov.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mckp.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mckp.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mckp_2d.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mckp_2d.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mckp_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mckp_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_metrics_recorder.cpp.o"
  "CMakeFiles/test_core.dir/core/test_metrics_recorder.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_presentation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_presentation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scheduler.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scheduler.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scheduler_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scheduler_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_utility.cpp.o"
  "CMakeFiles/test_core.dir/core/test_utility.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_video_generator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_video_generator.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

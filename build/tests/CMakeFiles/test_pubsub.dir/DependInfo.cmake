
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pubsub/test_engine.cpp" "tests/CMakeFiles/test_pubsub.dir/pubsub/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_pubsub.dir/pubsub/test_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/richnote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/richnote_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/richnote_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/richnote_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/richnote_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/richnote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/richnote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

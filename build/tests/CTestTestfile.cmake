# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_pubsub[1]_include.cmake")
add_test(cli_help "/root/repo/build/tools/richnote" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;79;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_unknown_subcommand "/root/repo/build/tools/richnote" "frobnicate")
set_tests_properties(cli_unknown_subcommand PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;80;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_pipeline "/usr/bin/cmake" "-DRICHNOTE=/root/repo/build/tools/richnote" "-DWORK_DIR=/root/repo/build/tests/cli_pipeline" "-P" "/root/repo/tests/cli_pipeline_test.cmake")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for richnote.
# This may be replaced when dependencies are built.

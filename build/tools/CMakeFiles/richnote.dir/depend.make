# Empty dependencies file for richnote.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/richnote.dir/richnote_cli.cpp.o"
  "CMakeFiles/richnote.dir/richnote_cli.cpp.o.d"
  "richnote"
  "richnote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/richnote_common.dir/config.cpp.o"
  "CMakeFiles/richnote_common.dir/config.cpp.o.d"
  "CMakeFiles/richnote_common.dir/csv.cpp.o"
  "CMakeFiles/richnote_common.dir/csv.cpp.o.d"
  "CMakeFiles/richnote_common.dir/histogram.cpp.o"
  "CMakeFiles/richnote_common.dir/histogram.cpp.o.d"
  "CMakeFiles/richnote_common.dir/regression.cpp.o"
  "CMakeFiles/richnote_common.dir/regression.cpp.o.d"
  "CMakeFiles/richnote_common.dir/rng.cpp.o"
  "CMakeFiles/richnote_common.dir/rng.cpp.o.d"
  "CMakeFiles/richnote_common.dir/stats.cpp.o"
  "CMakeFiles/richnote_common.dir/stats.cpp.o.d"
  "CMakeFiles/richnote_common.dir/table.cpp.o"
  "CMakeFiles/richnote_common.dir/table.cpp.o.d"
  "CMakeFiles/richnote_common.dir/zipf.cpp.o"
  "CMakeFiles/richnote_common.dir/zipf.cpp.o.d"
  "librichnote_common.a"
  "librichnote_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for richnote_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librichnote_common.a"
)

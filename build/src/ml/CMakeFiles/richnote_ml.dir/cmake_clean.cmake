file(REMOVE_RECURSE
  "CMakeFiles/richnote_ml.dir/calibration.cpp.o"
  "CMakeFiles/richnote_ml.dir/calibration.cpp.o.d"
  "CMakeFiles/richnote_ml.dir/dataset.cpp.o"
  "CMakeFiles/richnote_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/richnote_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/richnote_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/richnote_ml.dir/metrics.cpp.o"
  "CMakeFiles/richnote_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/richnote_ml.dir/random_forest.cpp.o"
  "CMakeFiles/richnote_ml.dir/random_forest.cpp.o.d"
  "librichnote_ml.a"
  "librichnote_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

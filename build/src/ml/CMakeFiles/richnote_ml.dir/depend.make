# Empty dependencies file for richnote_ml.
# This may be replaced when dependencies are built.

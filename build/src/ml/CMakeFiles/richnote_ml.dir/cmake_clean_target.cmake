file(REMOVE_RECURSE
  "librichnote_ml.a"
)

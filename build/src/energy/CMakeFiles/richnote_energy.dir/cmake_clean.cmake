file(REMOVE_RECURSE
  "CMakeFiles/richnote_energy.dir/model.cpp.o"
  "CMakeFiles/richnote_energy.dir/model.cpp.o.d"
  "librichnote_energy.a"
  "librichnote_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

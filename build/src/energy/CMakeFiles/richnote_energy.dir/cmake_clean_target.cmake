file(REMOVE_RECURSE
  "librichnote_energy.a"
)

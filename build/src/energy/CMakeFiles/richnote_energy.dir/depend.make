# Empty dependencies file for richnote_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librichnote_pubsub.a"
)

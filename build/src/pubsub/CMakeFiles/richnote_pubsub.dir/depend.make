# Empty dependencies file for richnote_pubsub.
# This may be replaced when dependencies are built.

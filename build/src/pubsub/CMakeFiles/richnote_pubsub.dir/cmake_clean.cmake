file(REMOVE_RECURSE
  "CMakeFiles/richnote_pubsub.dir/engine.cpp.o"
  "CMakeFiles/richnote_pubsub.dir/engine.cpp.o.d"
  "librichnote_pubsub.a"
  "librichnote_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

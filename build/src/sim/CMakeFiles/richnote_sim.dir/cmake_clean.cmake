file(REMOVE_RECURSE
  "CMakeFiles/richnote_sim.dir/battery.cpp.o"
  "CMakeFiles/richnote_sim.dir/battery.cpp.o.d"
  "CMakeFiles/richnote_sim.dir/battery_trace.cpp.o"
  "CMakeFiles/richnote_sim.dir/battery_trace.cpp.o.d"
  "CMakeFiles/richnote_sim.dir/event_queue.cpp.o"
  "CMakeFiles/richnote_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/richnote_sim.dir/network.cpp.o"
  "CMakeFiles/richnote_sim.dir/network.cpp.o.d"
  "CMakeFiles/richnote_sim.dir/simulator.cpp.o"
  "CMakeFiles/richnote_sim.dir/simulator.cpp.o.d"
  "librichnote_sim.a"
  "librichnote_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librichnote_sim.a"
)

# Empty compiler generated dependencies file for richnote_sim.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/catalog.cpp" "src/trace/CMakeFiles/richnote_trace.dir/catalog.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/catalog.cpp.o.d"
  "/root/repo/src/trace/click_model.cpp" "src/trace/CMakeFiles/richnote_trace.dir/click_model.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/click_model.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/richnote_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/notification.cpp" "src/trace/CMakeFiles/richnote_trace.dir/notification.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/notification.cpp.o.d"
  "/root/repo/src/trace/social_graph.cpp" "src/trace/CMakeFiles/richnote_trace.dir/social_graph.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/social_graph.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/richnote_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/survey.cpp" "src/trace/CMakeFiles/richnote_trace.dir/survey.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/survey.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/richnote_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/richnote_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/richnote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/richnote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/richnote_pubsub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/richnote_trace.dir/catalog.cpp.o"
  "CMakeFiles/richnote_trace.dir/catalog.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/click_model.cpp.o"
  "CMakeFiles/richnote_trace.dir/click_model.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/generator.cpp.o"
  "CMakeFiles/richnote_trace.dir/generator.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/notification.cpp.o"
  "CMakeFiles/richnote_trace.dir/notification.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/social_graph.cpp.o"
  "CMakeFiles/richnote_trace.dir/social_graph.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/stats.cpp.o"
  "CMakeFiles/richnote_trace.dir/stats.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/survey.cpp.o"
  "CMakeFiles/richnote_trace.dir/survey.cpp.o.d"
  "CMakeFiles/richnote_trace.dir/trace_io.cpp.o"
  "CMakeFiles/richnote_trace.dir/trace_io.cpp.o.d"
  "librichnote_trace.a"
  "librichnote_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for richnote_trace.
# This may be replaced when dependencies are built.

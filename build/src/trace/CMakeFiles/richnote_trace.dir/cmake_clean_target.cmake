file(REMOVE_RECURSE
  "librichnote_trace.a"
)
